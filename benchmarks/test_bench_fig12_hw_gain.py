"""Figure 12: RF2401 hardware experiment -- gain.

Paper: 55 devices (28 calibration / 27 validation), 100 kHz LO offset,
1 MHz digitizer, 5 ms capture; RMS error 0.16 dB.  The stimulus was
optimized on a behavioral model because no netlist was available --
reproduced exactly.  Times one hardware-configuration signature capture.
"""

from conftest import scatter_table

from repro.experiments.hardware import (
    PAPER_RMS_ERR,
    rf2401_device,
    run_hardware_experiment,
)
from repro.loadboard.signature_path import SignatureTestBoard, hardware_config

import numpy as np


def test_bench_fig12_hardware_gain(benchmark, report):
    result = run_hardware_experiment()
    x, y = result.scatter("gain_db")

    with report("Figure 12 -- RF2401 gain: signature prediction vs direct measurement") as p:
        scatter_table(p, "direct measurement (dB)", x, "predicted (dB)", y)
        p("")
        p(f"RMS err = {result.rms_errors['gain_db']:.4f} dB  "
          f"(paper: {PAPER_RMS_ERR['gain_db']:.2f} dB)")
        p(f"std(err) = {result.std_errors['gain_db']:.4f} dB,  "
          f"R^2 = {result.r2['gain_db']:.4f}")
        p(f"capture time: {result.capture_seconds * 1e3:.1f} ms "
          "(paper: 'only 5 milliseconds of data capture')")

    board = SignatureTestBoard(hardware_config())
    device = rf2401_device({"gain_db": 15.0, "nf_db": 4.0, "iip3_dbm": -8.0})
    rng = np.random.default_rng(0)
    benchmark(board.signature, device, result.stimulus, rng)
