"""Figure 13: RF2401 hardware experiment -- IIP3.

Paper: RMS error 0.13 dB over the 27 validation devices.  Also checks
the qualitative claim that hardware errors exceed the clean-simulation
errors (socket repeatability, measured training targets, 28-device
calibration).  Times the two-tone IIP3 measurement that the conventional
flow would need instead.
"""

from conftest import scatter_table

from repro.experiments.hardware import (
    PAPER_RMS_ERR,
    rf2401_device,
    run_hardware_experiment,
)
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


def test_bench_fig13_hardware_iip3(benchmark, report):
    result = run_hardware_experiment()
    sim = run_simulation_experiment()
    x, y = result.scatter("iip3_dbm")

    with report("Figure 13 -- RF2401 IIP3: signature prediction vs direct measurement") as p:
        scatter_table(p, "direct measurement (dBm)", x, "predicted (dBm)", y)
        p("")
        p(f"RMS err = {result.rms_errors['iip3_dbm']:.4f} dBm  "
          f"(paper: {PAPER_RMS_ERR['iip3_dbm']:.2f} dBm)")
        p(f"std(err) = {result.std_errors['iip3_dbm']:.4f} dBm,  "
          f"R^2 = {result.r2['iip3_dbm']:.4f}")
        p("")
        p("hardware vs clean simulation (the paper's pattern -- bench errors larger):")
        p(f"  gain: hw {result.rms_errors['gain_db']:.3f} dB  "
          f"vs sim {sim.rms_errors['gain_db']:.3f} dB")
        p(f"  iip3: hw {result.rms_errors['iip3_dbm']:.3f} dBm "
          f"vs sim {sim.rms_errors['iip3_dbm']:.3f} dBm")

    # the conventional alternative: a two-tone spectrum-analyzer run
    sa = SpectrumAnalyzer(tone_power_dbm=-28.0, repeatability_db=0.0)
    device = rf2401_device({"gain_db": 15.0, "nf_db": 4.0, "iip3_dbm": -8.0})
    benchmark(sa.measure_iip3_dbm, device)
