"""Ablation: the genetic algorithm's budget.

The paper runs "five iterations of a genetic algorithm".  This bench
sweeps the generation count (equal population, same seeds) and prints
the Equation-10 objective each budget reaches, showing whether five
generations was a shrewd choice or an accident of 2002-era CPU time.
"""

import numpy as np

from repro.circuits.lna import LNA900, lna_parameter_space
from repro.loadboard.signature_path import simulation_config
from repro.testgen.genetic import GAConfig
from repro.testgen.optimizer import SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding


def test_bench_ablation_ga_budget(benchmark, report):
    space = lna_parameter_space()
    budgets = (1, 3, 5, 10)
    rows = []
    for gens in budgets:
        optimizer = SignatureStimulusOptimizer(
            board_config=simulation_config(),
            device_factory=LNA900,
            space=space,
            encoding=StimulusEncoding(16, 5e-6, 0.4),
            ga_config=GAConfig(population_size=16, generations=gens),
            rel_step=0.03,
        )
        result = optimizer.optimize(np.random.default_rng(2002))
        ga = result.ga_result
        rows.append(
            (gens, ga.evaluations, ga.history[0][0], result.objective_value)
        )

    with report("Ablation -- GA budget (population 16, identical seeds)") as p:
        p(f"{'generations':>12s}  {'evaluations':>12s}  {'initial best F':>15s}  "
          f"{'final F':>10s}")
        for gens, evals, first, final in rows:
            p(f"{gens:12d}  {evals:12d}  {first:15.6f}  {final:10.6f}")
        p("")
        f1 = rows[0][3]
        f10 = rows[-1][3]
        p(f"total improvement over the whole sweep is "
          f"{100 * (f1 - f10) / f1:.1f}% of the initial objective: with the "
          "amplitude-laddered seed population the first generation already "
          "sits near the optimum, and the paper's five iterations refine "
          "rather than search -- the seed design, i.e. bracketing the DUT "
          "drive level, is where the real optimization happens")

    # timed kernel: one full GA generation's worth of fitness evaluations
    optimizer = SignatureStimulusOptimizer(
        board_config=simulation_config(),
        device_factory=LNA900,
        space=space,
        encoding=StimulusEncoding(16, 5e-6, 0.4),
        rel_step=0.03,
    )
    optimizer.performance_matrix()
    gene = np.full(16, 0.2)
    benchmark(optimizer.objective, gene)
