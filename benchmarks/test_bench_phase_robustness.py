"""Section 2.1 / Equations 4-5: phase robustness of the signature.

Regenerates the analysis behind Figures 2 and 3: the same-LO time-domain
signature scales as cos(phi) and nulls at quarter-wave path mismatches,
while the offset-LO FFT-magnitude signature is phase-invariant.  Times
one offset-LO capture (the configuration real boards use).
"""

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.experiments.phase_study import run_phase_study
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard


def test_bench_phase_robustness(benchmark, report):
    study = run_phase_study(n_phases=17)

    with report("Equations 4-5 -- path-phase sweep of the two signature styles") as p:
        p(f"{'phase (rad)':>12s}  {'same-LO rms (V)':>16s}  {'Eq.4 |cos|*rms0':>16s}  "
          f"{'same-LO drift':>14s}  {'FFT-mag drift':>14s}")
        for i, phi in enumerate(study.phases):
            p(
                f"{phi:12.3f}  {study.same_lo_rms[i]:16.6f}  "
                f"{study.eq4_prediction[i]:16.6f}  "
                f"{study.same_lo_distance[i]:13.1%}  "
                f"{study.offset_fftmag_distance[i]:13.1%}"
            )
        p("")
        p(study.summary())

    cfg = SignaturePathConfig(
        lo_offset_hz=100e3,
        lpf_cutoff_hz=450e3,
        digitizer_rate=1e6,
        digitizer_noise_vrms=0.0,
        digitizer_bits=None,
        capture_seconds=2e-3,
        include_device_noise=False,
    )
    board = SignatureTestBoard(cfg)
    device = BehavioralAmplifier(900e6, 16.0, 2.0, 3.0)
    rng = np.random.default_rng(0)
    stim = PiecewiseLinearStimulus(rng.uniform(-0.3, 0.3, 16), 2e-3, 0.4)
    benchmark(board.signature, device, stim)
