"""Figure 8: LNA gain predicted from the signature vs direct simulation.

Paper: 100 training + 25 validation instances, 1 mV signature noise,
std(err) = 0.06 dB.  Prints the scatter series and the error statistics;
times the production-side prediction (signature -> all specs).
"""

from conftest import scatter_table

from repro.experiments.lna_simulation import PAPER_STD_ERR, run_simulation_experiment


def test_bench_fig08_gain_prediction(benchmark, report):
    result = run_simulation_experiment()
    x, y = result.scatter("gain_db")

    with report("Figure 8 -- LNA gain: signature prediction vs direct simulation") as p:
        scatter_table(p, "direct simulation (dB)", x, "predicted (dB)", y)
        p("")
        p(f"std(err) = {result.std_errors['gain_db']:.4f} dB  "
          f"(paper: {PAPER_STD_ERR['gain_db']:.3f} dB)")
        p(f"RMS err  = {result.rms_errors['gain_db']:.4f} dB,  "
          f"R^2 = {result.r2['gain_db']:.4f}")
        p(f"model chosen by CV: {result.calibration.chosen['gain_db']}")

    benchmark(result.calibration.predict_matrix, result.val_signatures)
