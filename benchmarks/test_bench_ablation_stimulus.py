"""Ablation: GA-optimized stimulus vs unoptimized baselines.

Section 3.1's premise is that the stimulus must be *optimized* for a
robust signature-to-spec mapping.  This bench runs the full
calibrate-and-validate flow with the GA winner and with three naive
stimuli (full-range ramp, flat mid-scale drive, random PWL) and prints
the per-spec validation errors of each.
"""

from repro.experiments.lna_simulation import run_simulation_experiment


def test_bench_ablation_stimulus_optimization(benchmark, report):
    optimized = run_simulation_experiment()
    baselines = {
        kind: run_simulation_experiment(stimulus=kind)
        for kind in ("ramp", "flat", "random")
    }

    with report("Ablation -- stimulus optimization (validation std(err) per spec)") as p:
        p(f"{'stimulus':>12s}  {'gain (dB)':>10s}  {'NF (dB)':>10s}  {'IIP3 (dBm)':>11s}  {'mean':>8s}")
        rows = [("GA-optimized", optimized)] + list(baselines.items())
        for label, res in rows:
            e = res.std_errors
            mean = (e["gain_db"] + e["nf_db"] + e["iip3_dbm"]) / 3.0
            p(
                f"{label:>12s}  {e['gain_db']:10.4f}  {e['nf_db']:10.4f}  "
                f"{e['iip3_dbm']:11.4f}  {mean:8.4f}"
            )
        p("")
        worst_mean = max(
            (r.std_errors["gain_db"] + r.std_errors["nf_db"] + r.std_errors["iip3_dbm"]) / 3
            for r in baselines.values()
        )
        opt_mean = (
            optimized.std_errors["gain_db"]
            + optimized.std_errors["nf_db"]
            + optimized.std_errors["iip3_dbm"]
        ) / 3
        p(f"optimized stimulus improves mean error {worst_mean / opt_mean:.2f}x "
          "over the worst baseline")

    # timed kernel: rendering the GA stimulus (the AWG-side cost)
    benchmark(optimized.stimulus.to_waveform, 80e6)
