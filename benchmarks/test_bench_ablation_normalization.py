"""Ablation: Figure 5's signature normalization under tester variation.

The FASTest runtime normalizes signatures before applying the
calibration relationships.  This bench calibrates on tester A, then runs
production on tester B whose downconversion path gain differs by about
1 dB (mixer tolerance) -- with and without golden-device normalization.
Raw signatures inherit the full tester offset as spec error; normalized
signatures cancel it.
"""

import numpy as np
from dataclasses import replace

from repro.circuits.lna import LNA900, lna_parameter_space
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.regression.metrics import rmse
from repro.runtime.calibration import CalibrationSession
from repro.runtime.normalization import GoldenDeviceNormalizer


def test_bench_ablation_signature_normalization(benchmark, report):
    rng = np.random.default_rng(2718)
    experiment = run_simulation_experiment()
    stimulus = experiment.stimulus
    space = lna_parameter_space()

    cfg_a = simulation_config()
    cfg_b = replace(
        simulation_config(),
        mixer2=Mixer(0.45, MixerHarmonics.paper_model()),  # ~ -0.9 dB path
    )
    tester_a = SignatureTestBoard(cfg_a)
    tester_b = SignatureTestBoard(cfg_b)

    golden = LNA900()
    norm_a = GoldenDeviceNormalizer.from_board(tester_a, golden, stimulus, rng=rng)
    norm_b = GoldenDeviceNormalizer.from_board(tester_b, golden, stimulus, rng=rng)

    # calibration on tester A
    train = [LNA900(space.to_dict(p)) for p in space.sample(rng, 80)]
    train_specs = np.vstack([d.specs().as_vector() for d in train])
    raw_train = np.vstack([tester_a.signature(d, stimulus, rng=rng) for d in train])
    cal_raw = CalibrationSession().fit(raw_train, train_specs, rng=rng)
    cal_norm = CalibrationSession().fit(
        norm_a.normalize_batch(raw_train), train_specs, rng=rng
    )

    # production on tester B
    val = [LNA900(space.to_dict(p)) for p in space.sample(rng, 30)]
    val_specs = np.vstack([d.specs().as_vector() for d in val])
    raw_val = np.vstack([tester_b.signature(d, stimulus, rng=rng) for d in val])
    pred_raw = cal_raw.predict_matrix(raw_val)
    pred_norm = cal_norm.predict_matrix(norm_b.normalize_batch(raw_val))

    names = ("gain_db", "nf_db", "iip3_dbm")
    with report("Ablation -- golden-device normalization across testers "
                "(calibrate on A, produce on B, mixer gain -0.9 dB)") as p:
        p(f"{'spec':>10s}  {'raw signatures':>15s}  {'normalized':>12s}")
        for j, name in enumerate(names):
            e_raw = rmse(val_specs[:, j], pred_raw[:, j])
            e_norm = rmse(val_specs[:, j], pred_norm[:, j])
            p(f"{name:>10s}  {e_raw:15.4f}  {e_norm:12.4f}")
        p("")
        gain_raw = rmse(val_specs[:, 0], pred_raw[:, 0])
        gain_norm = rmse(val_specs[:, 0], pred_norm[:, 0])
        p(f"normalization reduces cross-tester gain error "
          f"{gain_raw / gain_norm:.1f}x -- Figure 5's normalization boxes "
          "are what make the calibration portable")
        assert gain_norm < 0.5 * gain_raw

    benchmark(norm_b.normalize_batch, raw_val)
