"""Ablation: signature measurement noise (the Equation-10 trade-off).

Equation 10 makes the prediction error the sum of a mapping residual and
a noise term ``sigma_m^2 ||a_i||^2``.  Sweeping the digitizer noise from
well below to well above the paper's 1 mV shows the noise term taking
over, and that gain/IIP3 (noise-limited) degrade while NF (residual-
limited) barely moves.
"""

from repro.experiments.lna_simulation import run_simulation_experiment


def test_bench_ablation_measurement_noise(benchmark, report):
    reference = run_simulation_experiment()
    levels = (0.0, 0.2e-3, 1e-3, 5e-3, 20e-3)
    results = {
        v: run_simulation_experiment(stimulus=reference.stimulus, noise_vrms=v)
        for v in levels
    }

    with report("Ablation -- digitizer noise level (validation std(err) per spec)") as p:
        p(f"{'noise (mV)':>11s}  {'gain (dB)':>10s}  {'NF (dB)':>10s}  {'IIP3 (dBm)':>11s}")
        for v in levels:
            e = results[v].std_errors
            p(f"{v * 1e3:11.2f}  {e['gain_db']:10.4f}  {e['nf_db']:10.4f}  "
              f"{e['iip3_dbm']:11.4f}")
        p("")
        clean = results[0.0].std_errors
        noisy = results[20e-3].std_errors
        p(f"20 mV noise degrades gain error {noisy['gain_db'] / max(clean['gain_db'], 1e-9):.1f}x; "
          f"NF error moves only {noisy['nf_db'] / max(clean['nf_db'], 1e-9):.2f}x "
          "(it is mapping-residual limited, Equation 10's first term)")

    # timed kernel: the FFT-magnitude signature extraction itself
    from repro.dsp.spectral import fft_magnitude_signature
    from repro.dsp.waveform import Waveform
    import numpy as np

    record = Waveform(np.random.default_rng(0).normal(size=5000), 1e6)
    benchmark(fft_magnitude_signature, record)
