"""Normalized-ratio regression gates (``make bench-check``).

Re-runs the gated benchmarks and compares each *normalized* ratio --
a fresh-machine time divided by a same-machine reference time, which
cancels machine speed -- against the committed results JSON:

* ``test_bench_capture_hotpath``:
  ``compiled_seconds / per_device_seconds`` guards the fused whole-lot
  capture program, and ``batched_seconds / per_device_seconds`` the
  uncompiled reference batching it is built on
  (``capture_hotpath.json``).
* ``test_bench_streaming_throughput``: ``streamed_seconds /
  offline_seconds`` guards the streaming service's overhead over the
  offline ``ProductionTestFlow`` (``streaming_throughput.json``).
* ``test_bench_multisite_capture``: ``multisite_seconds /
  serial_per_site_seconds`` guards the quad-site capture's overhead
  over independent per-site runs (``multisite_capture.json``).

Each benchmark file runs once and then every ratio keyed on its
results JSON is checked.  A gate fails if the fresh ratio is more than
``TOLERANCE`` worse than the committed one, so a change that quietly
erodes the compilation win -- or bloats the streaming layer -- cannot
land on a faster runner unnoticed.
"""

import json
import os
import subprocess
import sys

__all__ = []

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
#: fresh normalized ratio may be at most 20% worse than the baseline
TOLERANCE = 0.20

#: (benchmark file, repo-relative results JSON, [(label, ratio key), ...])
GATES = [
    (
        "test_bench_capture_hotpath.py",
        os.path.join("benchmarks", "results", "capture_hotpath.json"),
        [
            ("compiled/per-device", "compiled_over_per_device_ratio"),
            ("batched/per-device", "batched_over_per_device_ratio"),
        ],
    ),
    (
        "test_bench_streaming_throughput.py",
        os.path.join("benchmarks", "results", "streaming_throughput.json"),
        [("streamed/offline", "streamed_over_offline_ratio")],
    ),
    (
        "test_bench_multisite_capture.py",
        os.path.join("benchmarks", "results", "multisite_capture.json"),
        [("multisite/serial", "multisite_over_serial_ratio")],
    ),
]


def _committed_baseline(results_rel):
    """The committed results JSON (pre-rerun snapshot).

    Prefers ``git show HEAD:...`` so a stale working tree cannot mask a
    regression; falls back to the on-disk file outside a git checkout.
    """
    try:
        blob = subprocess.run(
            ["git", "show", "HEAD:" + results_rel.replace(os.sep, "/")],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(blob), "HEAD:" + results_rel
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        path = os.path.join(REPO, results_rel)
        with open(path) as fh:
            return json.load(fh), results_rel


def _check_bench(bench_file, results_rel, ratios):
    baseline, source = _committed_baseline(results_rel)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    rerun = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            os.path.join(HERE, bench_file),
            "--benchmark-only",
            "-q",
        ],
        cwd=REPO,
        env=env,
    )
    if rerun.returncode != 0:
        print(f"bench-check: {bench_file} benchmark run failed", file=sys.stderr)
        return rerun.returncode

    with open(os.path.join(REPO, results_rel)) as fh:
        fresh = json.load(fh)

    status = 0
    for label, ratio_key in ratios:
        if ratio_key not in baseline:
            # a freshly introduced gate has no committed baseline yet;
            # it starts gating on the next commit of the results JSON
            print(
                f"bench-check: {label} has no committed baseline "
                f"({ratio_key} missing from {source}); fresh ratio "
                f"{fresh[ratio_key]:.4f} recorded, not gated"
            )
            continue
        base_ratio = baseline[ratio_key]
        fresh_ratio = fresh[ratio_key]
        limit = base_ratio * (1.0 + TOLERANCE)
        print(
            f"bench-check: {label} ratio "
            f"{fresh_ratio:.4f} vs baseline {base_ratio:.4f} ({source}), "
            f"limit {limit:.4f} (+{TOLERANCE:.0%})"
        )
        if fresh_ratio > limit:
            print(
                f"bench-check: FAIL -- {label} regressed "
                f"{fresh_ratio / base_ratio - 1.0:+.1%} vs the committed "
                f"baseline",
                file=sys.stderr,
            )
            status = 1
    return status


def _main():
    status = 0
    for bench_file, results_rel, ratios in GATES:
        status = _check_bench(bench_file, results_rel, ratios) or status
    print("bench-check: OK" if status == 0 else "bench-check: FAILED")
    return status


if __name__ == "__main__":
    sys.exit(_main())
