"""Normalized-ratio regression gates (``make bench-check``).

Re-runs the gated benchmarks and compares each *normalized* ratio --
a fresh-machine time divided by a same-machine reference time, which
cancels machine speed -- against the committed results JSON:

* ``test_bench_capture_hotpath``: ``batched_seconds / per_device_seconds``
  guards the vectorized capture engine (``capture_hotpath.json``).
* ``test_bench_streaming_throughput``: ``streamed_seconds /
  offline_seconds`` guards the streaming service's overhead over the
  offline ``ProductionTestFlow`` (``streaming_throughput.json``).

A gate fails if the fresh ratio is more than ``TOLERANCE`` worse than
the committed one, so a change that quietly erodes the vectorization
win -- or bloats the streaming layer -- cannot land on a faster runner
unnoticed.
"""

import json
import os
import subprocess
import sys

__all__ = []

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
#: fresh normalized ratio may be at most 20% worse than the baseline
TOLERANCE = 0.20

#: (label, benchmark file, repo-relative results JSON, normalized-ratio key)
GATES = [
    (
        "batched/per-device",
        "test_bench_capture_hotpath.py",
        os.path.join("benchmarks", "results", "capture_hotpath.json"),
        "batched_over_per_device_ratio",
    ),
    (
        "streamed/offline",
        "test_bench_streaming_throughput.py",
        os.path.join("benchmarks", "results", "streaming_throughput.json"),
        "streamed_over_offline_ratio",
    ),
]


def _committed_baseline(results_rel):
    """The committed results JSON (pre-rerun snapshot).

    Prefers ``git show HEAD:...`` so a stale working tree cannot mask a
    regression; falls back to the on-disk file outside a git checkout.
    """
    try:
        blob = subprocess.run(
            ["git", "show", "HEAD:" + results_rel.replace(os.sep, "/")],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(blob), "HEAD:" + results_rel
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        path = os.path.join(REPO, results_rel)
        with open(path) as fh:
            return json.load(fh), results_rel


def _check_gate(label, bench_file, results_rel, ratio_key):
    baseline, source = _committed_baseline(results_rel)
    base_ratio = baseline[ratio_key]

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    rerun = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            os.path.join(HERE, bench_file),
            "--benchmark-only",
            "-q",
        ],
        cwd=REPO,
        env=env,
    )
    if rerun.returncode != 0:
        print(f"bench-check: {label} benchmark run failed", file=sys.stderr)
        return rerun.returncode

    with open(os.path.join(REPO, results_rel)) as fh:
        fresh = json.load(fh)
    fresh_ratio = fresh[ratio_key]
    limit = base_ratio * (1.0 + TOLERANCE)

    print(
        f"bench-check: {label} ratio "
        f"{fresh_ratio:.4f} vs baseline {base_ratio:.4f} ({source}), "
        f"limit {limit:.4f} (+{TOLERANCE:.0%})"
    )
    if fresh_ratio > limit:
        print(
            f"bench-check: FAIL -- {label} regressed "
            f"{fresh_ratio / base_ratio - 1.0:+.1%} vs the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def _main():
    status = 0
    for label, bench_file, results_rel, ratio_key in GATES:
        status = _check_gate(label, bench_file, results_rel, ratio_key) or status
    print("bench-check: OK" if status == 0 else "bench-check: FAILED")
    return status


if __name__ == "__main__":
    sys.exit(_main())
