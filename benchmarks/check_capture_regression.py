"""Regression gate for the batched capture engine (``make bench-check``).

Re-runs ``test_bench_capture_hotpath`` and compares the *normalized*
batched capture time -- ``batched_seconds / per_device_seconds``, which
cancels machine speed -- against the committed
``benchmarks/results/capture_hotpath.json``.  Fails if the fresh ratio
is more than ``TOLERANCE`` worse than the committed one, so a change
that quietly erodes the vectorization win cannot land on a faster
runner unnoticed.
"""

import json
import os
import subprocess
import sys

__all__ = []

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
RESULTS = os.path.join(HERE, "results", "capture_hotpath.json")
RESULTS_REL = os.path.relpath(RESULTS, REPO)
BENCH = os.path.join(HERE, "test_bench_capture_hotpath.py")
#: fresh normalized ratio may be at most 20% worse than the baseline
TOLERANCE = 0.20


def _committed_baseline():
    """The committed results JSON (pre-rerun snapshot).

    Prefers ``git show HEAD:...`` so a stale working tree cannot mask a
    regression; falls back to the on-disk file outside a git checkout.
    """
    try:
        blob = subprocess.run(
            ["git", "show", "HEAD:" + RESULTS_REL.replace(os.sep, "/")],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(blob), "HEAD:" + RESULTS_REL
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        with open(RESULTS) as fh:
            return json.load(fh), RESULTS_REL


def _main():
    baseline, source = _committed_baseline()
    base_ratio = baseline["batched_over_per_device_ratio"]

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    rerun = subprocess.run(
        [sys.executable, "-m", "pytest", BENCH, "--benchmark-only", "-q"],
        cwd=REPO,
        env=env,
    )
    if rerun.returncode != 0:
        print("bench-check: benchmark run failed", file=sys.stderr)
        return rerun.returncode

    with open(RESULTS) as fh:
        fresh = json.load(fh)
    fresh_ratio = fresh["batched_over_per_device_ratio"]
    limit = base_ratio * (1.0 + TOLERANCE)

    print(
        "bench-check: batched/per-device ratio "
        f"{fresh_ratio:.4f} vs baseline {base_ratio:.4f} ({source}), "
        f"limit {limit:.4f} (+{TOLERANCE:.0%})"
    )
    if fresh_ratio > limit:
        print(
            "bench-check: FAIL -- batched capture regressed "
            f"{fresh_ratio / base_ratio - 1.0:+.1%} vs the committed baseline",
            file=sys.stderr,
        )
        return 1
    print("bench-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(_main())
