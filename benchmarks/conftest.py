"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures: it prints the
figure's data series (through captured output, so it lands in the
terminal even without ``-s``) and times a representative piece of the
flow with pytest-benchmark.
"""

import contextlib

import pytest


@pytest.fixture
def report(capsys):
    """Print-through helper: emits text past pytest's capture."""

    @contextlib.contextmanager
    def _report(title):
        with capsys.disabled():
            print()
            print("=" * 72)
            print(title)
            print("=" * 72)
            yield print

    return _report


def scatter_table(printer, x_label, x, y_label, y, max_rows=30):
    """Print a two-column series the way the paper's scatter plots read."""
    printer(f"{x_label:>22s}  {y_label:>22s}")
    for xi, yi in list(zip(x, y))[:max_rows]:
        printer(f"{xi:22.4f}  {yi:22.4f}")
    if len(x) > max_rows:
        printer(f"... ({len(x) - max_rows} more rows)")
