"""Figure 9: LNA IIP3 predicted from the signature vs direct simulation.

Paper: std(err) = 0.034 dBm on the same 100/25 Monte-Carlo split.
Prints the scatter series; times one full signature capture (the
acquisition the production tester repeats per device).
"""

from conftest import scatter_table

from repro.circuits.lna import LNA900
from repro.experiments.lna_simulation import PAPER_STD_ERR, run_simulation_experiment
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config


def test_bench_fig09_iip3_prediction(benchmark, report):
    result = run_simulation_experiment()
    x, y = result.scatter("iip3_dbm")

    with report("Figure 9 -- LNA IIP3: signature prediction vs direct simulation") as p:
        scatter_table(p, "direct simulation (dBm)", x, "predicted (dBm)", y)
        p("")
        p(f"std(err) = {result.std_errors['iip3_dbm']:.4f} dBm  "
          f"(paper: {PAPER_STD_ERR['iip3_dbm']:.3f} dBm)")
        p(f"RMS err  = {result.rms_errors['iip3_dbm']:.4f} dBm,  "
          f"R^2 = {result.r2['iip3_dbm']:.4f}")
        p(f"model chosen by CV: {result.calibration.chosen['iip3_dbm']}")

    board = SignatureTestBoard(simulation_config())
    device = LNA900()
    benchmark(board.signature, device, result.stimulus)
