"""Ablation: calibration-set size.

Section 4.2: "The results are likely to be significantly better with a
larger set of calibrating devices."  Sweeps the training-set size with
everything else held fixed (the GA stimulus of the main experiment) and
prints the validation errors.
"""

from repro.experiments.lna_simulation import run_simulation_experiment


def test_bench_ablation_training_set_size(benchmark, report):
    reference = run_simulation_experiment()
    sizes = (15, 30, 60, 100, 200)
    results = {
        n: run_simulation_experiment(n_train=n, stimulus=reference.stimulus)
        for n in sizes
    }

    with report("Ablation -- training-set size (validation std(err) per spec)") as p:
        p(f"{'n_train':>8s}  {'gain (dB)':>10s}  {'NF (dB)':>10s}  {'IIP3 (dBm)':>11s}")
        for n in sizes:
            e = results[n].std_errors
            p(f"{n:8d}  {e['gain_db']:10.4f}  {e['nf_db']:10.4f}  {e['iip3_dbm']:11.4f}")
        p("")
        small = results[sizes[0]].std_errors
        large = results[sizes[-1]].std_errors
        p(f"gain error {small['gain_db'] / large['gain_db']:.2f}x larger with "
          f"{sizes[0]} devices than with {sizes[-1]} -- the paper's Section 4.2 remark")

    smallest = results[sizes[0]]
    benchmark(
        smallest.calibration.predict_matrix, smallest.val_signatures
    )
