"""Extension bench: the flow's generality on a second circuit-level DUT.

The paper's target list names mixers alongside LNAs; this bench pushes a
circuit-level Gilbert-cell mixer family through the identical
machinery (GA stimulus, calibration, validation) and checks the paper's
qualitative shape transfers: conversion gain and IIP3 predicted far
inside their spreads, NF stuck near its spread (signature-silent base
resistance again).  Times one mixer-DUT signature capture.
"""

import numpy as np

from repro.circuits.gilbert import GilbertCellMixer, gilbert_parameter_space
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.regression.metrics import r2_score, rmse
from repro.runtime.calibration import CalibrationSession
from repro.testgen.genetic import GAConfig
from repro.testgen.optimizer import SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding

_CACHE = {}


def _run():
    if "result" in _CACHE:
        return _CACHE["result"]
    rng = np.random.default_rng(808)
    space = gilbert_parameter_space()
    config = SignaturePathConfig(
        digitizer_noise_vrms=1e-3, capture_seconds=5e-6, dut_coupling="tuned"
    )
    board = SignatureTestBoard(config)
    optimizer = SignatureStimulusOptimizer(
        board_config=config,
        device_factory=GilbertCellMixer,
        space=space,
        encoding=StimulusEncoding(16, 5e-6, 0.4),
        ga_config=GAConfig(population_size=14, generations=4),
        rel_step=0.03,
    )
    stimulus = optimizer.optimize(rng).stimulus

    train = [GilbertCellMixer(space.to_dict(p)) for p in space.sample(rng, 80)]
    val = [GilbertCellMixer(space.to_dict(p)) for p in space.sample(rng, 25)]
    train_specs = np.vstack([d.specs().as_vector() for d in train])
    val_specs = np.vstack([d.specs().as_vector() for d in val])
    train_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in train])
    val_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in val])
    cal = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    predicted = cal.predict_matrix(val_sigs)
    _CACHE["result"] = (stimulus, board, val_specs, predicted)
    return _CACHE["result"]


def test_bench_mixer_generality(benchmark, report):
    stimulus, board, truth, predicted = _run()
    names = ("conv_gain_db", "nf_db", "iip3_dbm")

    with report("Extension -- Gilbert-cell mixer family through the full flow") as p:
        p(f"{'spec':>14s}  {'RMS err':>9s}  {'spread':>8s}  {'R^2':>7s}")
        stats = {}
        for j, name in enumerate(names):
            err = rmse(truth[:, j], predicted[:, j])
            spread = float(np.std(truth[:, j]))
            r2 = r2_score(truth[:, j], predicted[:, j])
            stats[name] = (err, spread, r2)
            p(f"{name:>14s}  {err:9.4f}  {spread:8.4f}  {r2:7.4f}")
        p("")
        p("the LNA's shape transfers to the mixer: gain/IIP3 an order of "
          "magnitude inside their spreads, NF pinned by the signature-"
          "silent base resistance")

    # shape assertions
    gain_err, gain_spread, gain_r2 = stats["conv_gain_db"]
    iip3_err, iip3_spread, iip3_r2 = stats["iip3_dbm"]
    nf_err, nf_spread, _ = stats["nf_db"]
    assert gain_r2 > 0.95
    assert iip3_r2 > 0.9
    assert nf_err > 0.5 * nf_spread  # NF essentially unpredictable

    device = GilbertCellMixer()
    rng = np.random.default_rng(0)
    benchmark(board.signature, device, stimulus, rng)
