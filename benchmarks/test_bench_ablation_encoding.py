"""Ablation: PWL (the paper's encoding) vs multitone stimuli.

The paper encodes the stimulus as PWL breakpoints; much of the follow-on
alternate-test literature uses multitone stimuli.  Both encodings are
optimized here with identical GA budgets and pushed through the full
calibrate-and-validate flow, so the comparison covers the whole chain
rather than just the Equation-10 objective.
"""

import numpy as np

from repro.circuits.lna import LNA900, lna_parameter_space
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.loadboard.signature_path import simulation_config
from repro.testgen.genetic import GAConfig
from repro.testgen.multitone import MultitoneEncoding
from repro.testgen.optimizer import SignatureStimulusOptimizer


def test_bench_ablation_stimulus_encoding(benchmark, report):
    space = lna_parameter_space()
    ga = GAConfig(population_size=16, generations=5)

    # multitone optimization with the same GA budget as the main run
    mt_optimizer = SignatureStimulusOptimizer(
        board_config=simulation_config(),
        device_factory=LNA900,
        space=space,
        encoding=MultitoneEncoding(n_tones=8, duration=5e-6, v_limit=0.4),
        ga_config=ga,
        rel_step=0.03,
    )
    mt_result = mt_optimizer.optimize(np.random.default_rng(2002))

    pwl = run_simulation_experiment()  # the paper's PWL flow
    mt = run_simulation_experiment(stimulus=mt_result.stimulus)

    with report("Ablation -- stimulus encoding: PWL (paper) vs multitone") as p:
        p(f"{'encoding':>10s}  {'objective F':>12s}  {'gain (dB)':>10s}  "
          f"{'NF (dB)':>10s}  {'IIP3 (dBm)':>11s}")
        p(
            f"{'PWL':>10s}  {pwl.optimization.objective_value:12.5f}  "
            f"{pwl.std_errors['gain_db']:10.4f}  {pwl.std_errors['nf_db']:10.4f}  "
            f"{pwl.std_errors['iip3_dbm']:11.4f}"
        )
        p(
            f"{'multitone':>10s}  {mt_result.objective_value:12.5f}  "
            f"{mt.std_errors['gain_db']:10.4f}  {mt.std_errors['nf_db']:10.4f}  "
            f"{mt.std_errors['iip3_dbm']:11.4f}"
        )
        p("")
        p(f"multitone uses {mt_result.stimulus.n_tones} coherent tones "
          f"(crest factor {mt_result.stimulus.crest_factor(80e6):.2f}); "
          "both encodings land in the same error regime -- the information "
          "is in the drive level and spectral spread, not the waveform family")

    benchmark(mt_result.stimulus.to_waveform, 80e6)
