"""Compiled capture engine: the fused whole-lot program claim, measured.

Runs the same 64-device lot four ways and records the wall-clock
numbers as JSON under ``benchmarks/results/``:

* one-device-at-a-time with the plan cache cleared before every capture
  -- the pre-batching signature path, which recomputed the
  device-independent front half per capture;
* one-device-at-a-time with a warm plan cache;
* one ``signature_batch`` call through the *reference* envelope algebra
  (the uncompiled batched engine);
* one ``signature_batch`` call through the **compiled** whole-lot
  program (the default engine): the mixer-2 downconversion lowered to
  a DCE'd op tape over preallocated workspaces.

All four are checked bit-identical (the batching + compilation
contract); the speedup gates compare the compiled engine against the
per-device path it replaced -- cold plans and warm plans separately --
and the per-stage breakdown of the compiled capture is recorded for
``make bench-profile`` and the CI stage table.

The committed ``capture_hotpath.json`` is the regression baseline: CI
re-runs this benchmark and fails if a *normalized* capture-time ratio
(compiled / per-device and reference-batched / per-device, which
cancel machine speed) regresses by more than 20% against the committed
ratio (``make bench-check``).
"""

import json
import os
import time

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.parallel import spawn_generators

N_DEVICES = 64
LOT_SEED = 2002
COLD_SPEEDUP_TARGET = 10.0
WARM_SPEEDUP_TARGET = 6.0
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "capture_hotpath.json"
)


def _lot():
    rng = np.random.default_rng(42)
    return [
        BehavioralAmplifier(
            900e6,
            16.0 + rng.normal(0.0, 0.5),
            2.0 + abs(rng.normal(0.0, 0.2)),
            10.0 + rng.normal(0.0, 1.0),
        )
        for _ in range(N_DEVICES)
    ]


def _best_of(fn, repeats=7):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_capture_hotpath(benchmark, report):
    board = SignatureTestBoard(simulation_config())
    lot = _lot()
    stim = PiecewiseLinearStimulus(
        np.random.default_rng(9).uniform(-0.25, 0.25, 16), 5e-6, 0.4
    )

    def per_device_uncached():
        gens = spawn_generators(np.random.default_rng(LOT_SEED), len(lot))
        rows = []
        for device, gen in zip(lot, gens):
            # the pre-batching engine rebuilt the stimulus front half
            # (mixers, LO envelopes, drive powers) on every capture
            board.clear_plan_cache()
            rows.append(board.signature(device, stim, rng=gen))
        return np.vstack(rows)

    def per_device_warm():
        gens = spawn_generators(np.random.default_rng(LOT_SEED), len(lot))
        return np.vstack(
            [board.signature(d, stim, rng=g) for d, g in zip(lot, gens)]
        )

    def reference_batched():
        return board.signature_batch(
            lot, stim, rng=np.random.default_rng(LOT_SEED), engine="reference"
        )

    def compiled():
        return board.signature_batch(
            lot, stim, rng=np.random.default_rng(LOT_SEED), engine="compiled"
        )

    uncached_s, uncached_sigs = _best_of(per_device_uncached)
    warm_s, warm_sigs = _best_of(per_device_warm)
    batched_s, batched_sigs = _best_of(reference_batched)
    compiled_s, compiled_sigs = _best_of(compiled)
    stage_seconds = dict(board.last_stage_seconds)

    # the batching + compilation contract, end to end on the real lot
    assert np.array_equal(uncached_sigs, compiled_sigs)
    assert np.array_equal(warm_sigs, compiled_sigs)
    assert np.array_equal(batched_sigs, compiled_sigs)

    speedup = uncached_s / batched_s
    compiled_speedup = uncached_s / compiled_s
    compiled_warm_speedup = warm_s / compiled_s
    payload = {
        "benchmark": "capture_hotpath",
        "n_devices": N_DEVICES,
        "per_device_seconds": uncached_s,
        "per_device_warm_cache_seconds": warm_s,
        "batched_seconds": batched_s,
        "compiled_seconds": compiled_s,
        "speedup": speedup,
        "compiled_speedup": compiled_speedup,
        "compiled_warm_speedup": compiled_warm_speedup,
        "batched_over_per_device_ratio": batched_s / uncached_s,
        "compiled_over_per_device_ratio": compiled_s / uncached_s,
        "cold_speedup_target": COLD_SPEEDUP_TARGET,
        "warm_speedup_target": WARM_SPEEDUP_TARGET,
        "stage_seconds": stage_seconds,
        "unix_time": time.time(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with report("Compiled capture -- 64-device signature lot") as p:
        p(f"per-device, cold plans:    {uncached_s * 1e3:8.1f} ms")
        p(f"per-device, warm plans:    {warm_s * 1e3:8.1f} ms")
        p(f"reference signature_batch: {batched_s * 1e3:8.1f} ms "
          f"({speedup:.2f}x)")
        p(f"compiled signature_batch:  {compiled_s * 1e3:8.1f} ms "
          f"({compiled_speedup:.2f}x cold, "
          f"{compiled_warm_speedup:.2f}x warm)")
        total = sum(stage_seconds.values())
        for name, seconds in sorted(
            stage_seconds.items(), key=lambda kv: -kv[1]
        ):
            p(f"  stage {name:<13} {seconds * 1e3:8.3f} ms "
              f"({seconds / total:5.1%})")
        p(f"recorded: {os.path.relpath(RESULTS_PATH)}")

    assert compiled_speedup >= COLD_SPEEDUP_TARGET, (
        f"compiled capture only reached {compiled_speedup:.2f}x over the "
        f"cold per-device loop (target {COLD_SPEEDUP_TARGET}x)"
    )
    assert compiled_warm_speedup >= WARM_SPEEDUP_TARGET, (
        f"compiled capture only reached {compiled_warm_speedup:.2f}x over "
        f"the warm per-device loop (target {WARM_SPEEDUP_TARGET}x)"
    )

    benchmark(compiled)
