"""Batched capture engine: the vectorization + plan-cache claim, measured.

Runs the same 64-device lot three ways and records the wall-clock
numbers as JSON under ``benchmarks/results/``:

* one-device-at-a-time with the plan cache cleared before every capture
  -- the pre-batching signature path, which recomputed the
  device-independent front half per capture;
* one-device-at-a-time with a warm plan cache;
* one ``signature_batch`` call over the whole lot.

All three are checked bit-identical (the batching contract); the
speedup gate compares the batched engine against the per-capture path
it replaced.

The committed ``capture_hotpath.json`` is the regression baseline: CI
re-runs this benchmark and fails if the *normalized* batched capture
time (batched / per-device, which cancels machine speed) regresses by
more than 20% against the committed ratio (``make bench-check``).
"""

import json
import os
import time

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.parallel import spawn_generators

N_DEVICES = 64
LOT_SEED = 2002
SPEEDUP_TARGET = 3.0
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "capture_hotpath.json"
)


def _lot():
    rng = np.random.default_rng(42)
    return [
        BehavioralAmplifier(
            900e6,
            16.0 + rng.normal(0.0, 0.5),
            2.0 + abs(rng.normal(0.0, 0.2)),
            10.0 + rng.normal(0.0, 1.0),
        )
        for _ in range(N_DEVICES)
    ]


def _best_of(fn, repeats=7):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_capture_hotpath(benchmark, report):
    board = SignatureTestBoard(simulation_config())
    lot = _lot()
    stim = PiecewiseLinearStimulus(
        np.random.default_rng(9).uniform(-0.25, 0.25, 16), 5e-6, 0.4
    )

    def per_device_uncached():
        gens = spawn_generators(np.random.default_rng(LOT_SEED), len(lot))
        rows = []
        for device, gen in zip(lot, gens):
            # the pre-batching engine rebuilt the stimulus front half
            # (mixers, LO envelopes, drive powers) on every capture
            board.clear_plan_cache()
            rows.append(board.signature(device, stim, rng=gen))
        return np.vstack(rows)

    def per_device_warm():
        gens = spawn_generators(np.random.default_rng(LOT_SEED), len(lot))
        return np.vstack(
            [board.signature(d, stim, rng=g) for d, g in zip(lot, gens)]
        )

    def batched():
        return board.signature_batch(
            lot, stim, rng=np.random.default_rng(LOT_SEED)
        )

    uncached_s, uncached_sigs = _best_of(per_device_uncached)
    warm_s, warm_sigs = _best_of(per_device_warm)
    batched_s, batched_sigs = _best_of(batched)

    # the batching contract, end to end on the real lot
    assert np.array_equal(uncached_sigs, batched_sigs)
    assert np.array_equal(warm_sigs, batched_sigs)

    speedup = uncached_s / batched_s
    warm_speedup = warm_s / batched_s
    payload = {
        "benchmark": "capture_hotpath",
        "n_devices": N_DEVICES,
        "per_device_seconds": uncached_s,
        "per_device_warm_cache_seconds": warm_s,
        "batched_seconds": batched_s,
        "speedup": speedup,
        "warm_cache_speedup": warm_speedup,
        "batched_over_per_device_ratio": batched_s / uncached_s,
        "speedup_target": SPEEDUP_TARGET,
        "unix_time": time.time(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with report("Batched capture -- 64-device signature lot") as p:
        p(f"per-device, cold plans:    {uncached_s * 1e3:8.1f} ms")
        p(f"per-device, warm plans:    {warm_s * 1e3:8.1f} ms "
          f"({warm_speedup:.2f}x)")
        p(f"signature_batch:           {batched_s * 1e3:8.1f} ms "
          f"({speedup:.2f}x)")
        p(f"recorded: {os.path.relpath(RESULTS_PATH)}")

    assert speedup >= SPEEDUP_TARGET, (
        f"batched capture only reached {speedup:.2f}x over the per-device "
        f"loop (target {SPEEDUP_TARGET}x)"
    )

    benchmark(batched)
