"""Figure 7: the GA-optimized piecewise-linear test stimulus.

Regenerates the optimized stimulus for the 900 MHz LNA (five GA
generations, as in the paper) and prints its breakpoint series plus the
per-generation objective trace.  The timed kernel is one GA fitness
evaluation (the finite-difference A_s + Equation-10 objective), the unit
of work the optimization loop repeats.
"""

import numpy as np

from repro.circuits.lna import LNA900, lna_parameter_space
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.loadboard.signature_path import simulation_config
from repro.testgen.optimizer import SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding


def test_bench_fig07_optimized_stimulus(benchmark, report):
    result = run_simulation_experiment()
    stim = result.stimulus
    opt = result.optimization

    with report("Figure 7 -- optimized PWL test stimulus (5 us, 16 breakpoints)") as p:
        p(f"{'time (us)':>12s}  {'level (V)':>12s}")
        for t, v in zip(stim.breakpoint_times() * 1e6, stim.levels):
            p(f"{t:12.3f}  {v:12.4f}")
        p("")
        p("GA objective trace (best per generation):")
        for gen, (best, mean) in enumerate(opt.ga_result.history):
            p(f"  generation {gen}: best F = {best:.6f}  (population mean {mean:.6f})")
        p(f"final objective F = {opt.objective_value:.6f} "
          f"({opt.ga_result.evaluations} fitness evaluations)")
        p(opt.summary())

    # timed kernel: one fitness evaluation of the winning gene
    optimizer = SignatureStimulusOptimizer(
        board_config=simulation_config(),
        device_factory=LNA900,
        space=lna_parameter_space(),
        encoding=StimulusEncoding(16, 5e-6, 0.4),
        rel_step=0.03,
    )
    optimizer.performance_matrix()  # cache A_p outside the timed region
    gene = stim.to_gene()
    benchmark(optimizer.objective, gene)
