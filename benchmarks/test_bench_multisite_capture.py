"""Multi-site capture: one quad-site insertion lot vs per-site serial runs.

Captures the same 64-device lot two ways and records the wall-clock
numbers as JSON under ``benchmarks/results/``:

* one ``signature_batch`` call on a zero-crosstalk quad-site
  :class:`~repro.loadboard.sites.MultiSiteBoard` (each site running the
  compiled whole-lot engine on its 16 devices);
* four independent ``signature_batch`` calls, one per site board, on
  that site's round-robin share of the lot -- the serial baseline the
  multi-site isolation contract is defined against.

Both are checked bit-identical (the ``multisite-serial-equivalence``
contract at benchmark scale), and the committed
``multisite_capture.json`` is the regression baseline:
``make bench-check`` re-runs this file and fails if the normalized
``multisite_over_serial_ratio`` -- multi-site seconds over serial
per-site seconds, which cancels machine speed -- regresses by more
than 20%.  The ratio should hover near 1.0 (the multi-site path adds
only the coupling pass and lot reassembly); a big jump means the
site-sliced capture stopped using the batched engine.
"""

import json
import os
import time

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import simulation_config
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig
from repro.parallel import spawn_generators

N_DEVICES = 64
N_SITES = 4
LOT_SEED = 2002
#: the multi-site overhead (coupling pass + reassembly) must stay small
RATIO_CEILING = 1.35
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "multisite_capture.json"
)


def _lot():
    rng = np.random.default_rng(42)
    return [
        BehavioralAmplifier(
            900e6,
            16.0 + rng.normal(0.0, 0.5),
            2.0 + abs(rng.normal(0.0, 0.2)),
            10.0 + rng.normal(0.0, 1.0),
        )
        for _ in range(N_DEVICES)
    ]


def _best_of(fn, repeats=7):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_multisite_capture(benchmark, report):
    board = MultiSiteBoard(
        simulation_config(), MultiSiteConfig(n_sites=N_SITES)
    )
    lot = _lot()
    stim = PiecewiseLinearStimulus(
        np.random.default_rng(9).uniform(-0.25, 0.25, 16), 5e-6, 0.4
    )

    def multisite():
        gens = spawn_generators(np.random.default_rng(LOT_SEED), len(lot))
        return board.signature_batch(lot, stim, rngs=gens)

    def serial_per_site():
        gens = spawn_generators(np.random.default_rng(LOT_SEED), len(lot))
        out = np.empty((len(lot), 0))
        for j, site_board in enumerate(board.site_boards):
            idx = list(range(j, len(lot), N_SITES))
            rows = site_board.signature_batch(
                [lot[i] for i in idx], stim, rngs=[gens[i] for i in idx]
            )
            if out.shape[1] != rows.shape[1]:
                out = np.empty((len(lot), rows.shape[1]))
            out[idx] = rows
        return out

    multi_s, multi_sigs = _best_of(multisite)
    serial_s, serial_sigs = _best_of(serial_per_site)

    # the isolation contract at benchmark scale: zero crosstalk means
    # the quad-site lot is bit-identical to the per-site serial runs
    assert np.array_equal(multi_sigs, serial_sigs)

    ratio = multi_s / serial_s
    payload = {
        "benchmark": "multisite_capture",
        "n_devices": N_DEVICES,
        "n_sites": N_SITES,
        "multisite_seconds": multi_s,
        "serial_per_site_seconds": serial_s,
        "multisite_over_serial_ratio": ratio,
        "ratio_ceiling": RATIO_CEILING,
        "unix_time": time.time(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with report(
        f"Multi-site capture -- {N_DEVICES}-device lot on {N_SITES} sites"
    ) as p:
        p(f"quad-site signature_batch: {multi_s * 1e3:8.1f} ms")
        p(f"per-site serial captures:  {serial_s * 1e3:8.1f} ms")
        p(f"multisite/serial ratio:    {ratio:8.3f} (ceiling {RATIO_CEILING})")
        p(f"recorded: {os.path.relpath(RESULTS_PATH)}")

    assert ratio <= RATIO_CEILING, (
        f"multi-site capture costs {ratio:.2f}x the per-site serial runs "
        f"(ceiling {RATIO_CEILING}x): the site-sliced path stopped "
        f"amortizing the batched engine"
    )

    benchmark(multisite)
