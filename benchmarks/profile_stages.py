"""Per-stage profile of the compiled capture program, as markdown.

Reads the stage breakdown that ``test_bench_capture_hotpath`` records
in ``benchmarks/results/capture_hotpath.json`` (the wall time of each
pipeline stage -- plan, nonlinearity, noise, mix, filter, digitize,
fft -- for one compiled 64-device capture) and prints it as a markdown
table.  ``make bench-profile`` runs the benchmark first and then this
report; CI appends the same table to the job summary.
"""

import json
import os
import sys

__all__ = []

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results", "capture_hotpath.json")


def _main(path=RESULTS):
    with open(path) as fh:
        payload = json.load(fh)
    stages = payload.get("stage_seconds", {})
    if not stages:
        print(
            "bench-profile: no stage breakdown recorded; "
            "run `make bench-profile` to regenerate",
            file=sys.stderr,
        )
        return 1
    total = sum(stages.values())
    compiled_ms = payload["compiled_seconds"] * 1e3
    print(
        f"### Compiled capture stages "
        f"({payload['n_devices']} devices, {compiled_ms:.2f} ms)"
    )
    print()
    print("| stage | ms | share |")
    print("|---|---:|---:|")
    for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        print(f"| {name} | {seconds * 1e3:.3f} | {seconds / total:.1%} |")
    print(f"| **total** | **{total * 1e3:.3f}** | |")
    print()
    print(
        f"cold speedup {payload['compiled_speedup']:.2f}x "
        f"(target {payload['cold_speedup_target']:.0f}x), "
        f"warm speedup {payload['compiled_warm_speedup']:.2f}x "
        f"(target {payload['warm_speedup_target']:.0f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1] if len(sys.argv) > 1 else RESULTS))
