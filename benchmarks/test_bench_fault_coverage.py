"""Extension bench: catastrophic-fault coverage of the signature flow.

The paper tests parametrically varying devices; production also sees
gross defects.  This bench measures the two-layer defense (signature
outlier screen + parametric binning on predicted specs) against the
whole fault library, plus false alarms on good devices.  Times the
outlier score of one signature (the per-device screening cost).
"""

import numpy as np

from repro.circuits.faults import FAULT_LIBRARY
from repro.circuits.lna import LNA900, lna_parameter_space
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.runtime.outlier import SignatureOutlierScreen
from repro.runtime.specs import lna_limits


def test_bench_fault_coverage(benchmark, report):
    rng = np.random.default_rng(31415)
    experiment = run_simulation_experiment()
    board = SignatureTestBoard(simulation_config())
    space = lna_parameter_space()
    stimulus = experiment.stimulus
    limits = lna_limits(gain_min_db=14.5, nf_max_db=3.2, iip3_min_dbm=0.0)

    screen = SignatureOutlierScreen().fit(experiment.train_signatures)

    n_hosts = 12
    rows = []
    for name, ctor in FAULT_LIBRARY.items():
        by_screen = 0
        by_binning = 0
        for p in space.sample(rng, n_hosts):
            faulty = ctor(LNA900(space.to_dict(p)))
            sig = board.signature(faulty, stimulus, rng=rng)
            flagged = screen.score(sig).is_outlier
            binned_bad = not limits.check(experiment.calibration.predict(sig))
            by_screen += flagged
            by_binning += (not flagged) and binned_bad
        rows.append((name, by_screen, by_binning, n_hosts))

    good = [LNA900(space.to_dict(p)) for p in space.sample(rng, 40)]
    good_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in good])
    false_alarms = int(screen.flag_batch(good_sigs).sum())

    with report("Extension -- catastrophic-fault coverage (screen + binning)") as p:
        p(f"{'fault':>16s}  {'outlier screen':>14s}  {'then binning':>13s}  {'total':>7s}")
        for name, s, b, n in rows:
            p(f"{name:>16s}  {s:>11d}/{n:<2d}  {b:>10d}/{n:<2d}  {s + b:>4d}/{n}")
        p("")
        p(f"false alarms on 40 good devices: {false_alarms}")
        p("every library fault is caught by at least one layer; the subtle "
          "bias_shift defect passes the manifold screen but fails its "
          "predicted specs")

    sig = good_sigs[0]
    benchmark(screen.score, sig)

    # coverage assertions: the bench doubles as a regression gate
    for name, s, b, n in rows:
        assert s + b == n, f"{name}: {s + b}/{n} caught"
    assert false_alarms <= 1
