"""Figure 10: LNA noise figure predicted from the signature.

Paper: std(err) = 0.34 dB -- several times worse than gain/IIP3, because
NF is dominated by the base resistance, which barely moves the signature.
The reproduction must show the same ordering.  Times the calibration fit
(the one-time training cost).
"""

from conftest import scatter_table

from repro.experiments.lna_simulation import PAPER_STD_ERR, run_simulation_experiment
from repro.runtime.calibration import CalibrationSession

import numpy as np


def test_bench_fig10_nf_prediction(benchmark, report):
    result = run_simulation_experiment()
    x, y = result.scatter("nf_db")

    with report("Figure 10 -- LNA noise figure: signature prediction vs direct simulation") as p:
        scatter_table(p, "direct simulation (dB)", x, "predicted (dB)", y)
        p("")
        p(f"std(err) = {result.std_errors['nf_db']:.4f} dB  "
          f"(paper: {PAPER_STD_ERR['nf_db']:.3f} dB)")
        p(f"RMS err  = {result.rms_errors['nf_db']:.4f} dB,  "
          f"R^2 = {result.r2['nf_db']:.4f}")
        p("")
        ratio = result.std_errors["nf_db"] / result.std_errors["gain_db"]
        paper_ratio = PAPER_STD_ERR["nf_db"] / PAPER_STD_ERR["gain_db"]
        p(f"NF-to-gain error ratio: {ratio:.1f}x (paper: {paper_ratio:.1f}x) -- "
          "the shape result: NF is the hard spec in both")

    session = CalibrationSession()
    rng = np.random.default_rng(0)
    benchmark(
        session.fit, result.train_signatures, result.train_true_specs, rng
    )
