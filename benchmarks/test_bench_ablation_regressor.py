"""Ablation: the calibration regression family.

The paper only says "nonlinear regression techniques" [refs 4, 9]; this
bench quantifies how much the model family matters on the main
experiment's data -- plain ridge on raw bins, PCA+polynomial (the
winner), k-NN and MARS -- per specification.
"""

import numpy as np

from conftest import scatter_table

from repro.circuits.device import SpecSet
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.regression import (
    KNNRegressor,
    MARSRegressor,
    PCA,
    Pipeline,
    PolynomialRidge,
    RidgeRegression,
    StandardScaler,
    std_err,
)


def model_zoo():
    return {
        "ridge(raw bins)": lambda: Pipeline([StandardScaler(), RidgeRegression(0.1)]),
        "pca2+poly2": lambda: Pipeline(
            [PCA(2), StandardScaler(), PolynomialRidge(2, 1e-3)]
        ),
        "pca4+poly3": lambda: Pipeline(
            [PCA(4), StandardScaler(), PolynomialRidge(3, 1e-3)]
        ),
        "pca4+knn5": lambda: Pipeline([PCA(4), StandardScaler(), KNNRegressor(5)]),
        "pca4+mars": lambda: Pipeline(
            [PCA(4), StandardScaler(), MARSRegressor(max_terms=12)]
        ),
    }


def test_bench_ablation_regressor_family(benchmark, report):
    res = run_simulation_experiment()
    x_train, x_val = res.train_signatures, res.val_signatures
    y_train, y_val = res.train_true_specs, res.true_specs

    table = {}
    for name, factory in model_zoo().items():
        errs = []
        for j in range(3):
            model = factory()
            model.fit(x_train, y_train[:, j])
            errs.append(std_err(y_val[:, j], model.predict(x_val)))
        table[name] = errs

    with report("Ablation -- regression family (validation std(err) per spec)") as p:
        p(f"{'model':>18s}  {'gain (dB)':>10s}  {'NF (dB)':>10s}  {'IIP3 (dBm)':>11s}")
        for name, errs in table.items():
            p(f"{name:>18s}  {errs[0]:10.4f}  {errs[1]:10.4f}  {errs[2]:11.4f}")
        p("")
        p("CV-selected models in the main experiment: "
          + ", ".join(f"{k}={v}" for k, v in res.calibration.chosen.items()))
        lin = table["ridge(raw bins)"][2]
        best = min(errs[2] for errs in table.values())
        p(f"nonlinear regression improves IIP3 error {lin / best:.1f}x over a "
          "linear map -- why the paper needed 'nonlinear regression techniques'")

    # timed kernel: fitting the winning family on one spec
    factory = model_zoo()["pca4+poly3"]

    def fit_once():
        factory().fit(x_train, y_train[:, 0])

    benchmark(fit_once)
