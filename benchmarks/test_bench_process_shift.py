"""Extension bench: calibration lifetime under lot-to-lot process shift.

Sweeps the fab's mean excursion and prints how the original calibration
holds up, whether a lot-level drift statistic would have warned, and
what recalibration buys back.  Complements the tester-drift ablation:
there the *instrument* moved, here the *process* does.
"""

from repro.experiments.process_shift import run_process_shift_experiment


def test_bench_process_shift(benchmark, report):
    shifts = (0.0, 1.0, 2.0, 3.0)
    results = {
        s: run_process_shift_experiment(
            seed=9, shift_fraction=s, n_train=60, n_val=25
        )
        for s in shifts
    }

    with report("Extension -- calibration lifetime under process mean shift") as p:
        p(f"{'shift':>6s}  {'gain RMS':>9s}  {'iip3 RMS':>9s}  "
          f"{'gain recal':>11s}  {'lot score':>10s}")
        for s in shifts:
            r = results[s]
            p(
                f"{s:6.1f}  {r.shifted_errors['gain_db']:9.4f}  "
                f"{r.shifted_errors['iip3_dbm']:9.4f}  "
                f"{r.recalibrated_errors['gain_db']:11.4f}  "
                f"{r.mean_score_shifted:10.2f}"
            )
        p("")
        mild = results[1.0]
        severe = results[3.0]
        p("up to ~1 sigma of lot excursion the calibration holds (it learned "
          "device physics, not lot statistics); at 3 sigma gain error grows "
          f"{severe.shifted_errors['gain_db'] / mild.shifted_errors['gain_db']:.1f}x "
          "while the lot-level outlier score "
          f"rises to {severe.mean_score_shifted:.1f} "
          f"(baseline {severe.mean_score_baseline:.1f}) -- drift is detectable "
          "before predictions are trusted, and recalibration restores accuracy")

    # timed kernel: the lot-level drift statistic over one lot
    import numpy as np
    from repro.runtime.outlier import SignatureOutlierScreen

    rng = np.random.default_rng(0)
    sigs = rng.uniform(0.0, 0.1, size=(100, 51))
    screen = SignatureOutlierScreen().fit(sigs)
    benchmark(screen.score_batch, sigs)
