"""Ablation: optimizing the stimulus on the netlist vs a behavioral proxy.

Section 4.2: "As there was no access to the simulation netlist of the
device from the manufacturer, the baseband test stimulus in this case
was obtained by applying the optimization process on a behavioral model
of the LNA ... Further improvements are also expected with the
availability of a simulation netlist for the DUT."

This bench quantifies that remark on the simulation testbed, where both
options exist: the GA is run once against the true circuit-level LNA
family (the "netlist") and once against a crude three-parameter
behavioral proxy of it, and both stimuli go through the identical
calibrate-and-validate flow on the *real* devices.
"""

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.lna import LNA900
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.loadboard.signature_path import simulation_config
from repro.testgen.genetic import GAConfig
from repro.testgen.optimizer import SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding


def proxy_space():
    """What a datasheet tells you about the LNA family, nothing more."""
    nominal = LNA900().specs()
    return ParameterSpace(
        [
            ProcessParameter("gain_db", nominal.gain_db, 0.08),
            ProcessParameter("nf_db", nominal.nf_db, 0.05),
            ProcessParameter("iip3_dbm", max(nominal.iip3_dbm, 0.5), 0.5),
        ]
    )


def proxy_factory(params):
    return BehavioralAmplifier(
        900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
    )


def test_bench_ablation_netlist_availability(benchmark, report):
    netlist_run = run_simulation_experiment()  # GA on the true LNA model

    proxy_optimizer = SignatureStimulusOptimizer(
        board_config=simulation_config(),
        device_factory=proxy_factory,
        space=proxy_space(),
        encoding=StimulusEncoding(16, 5e-6, 0.4),
        ga_config=GAConfig(),
        rel_step=0.03,
    )
    proxy_stimulus = proxy_optimizer.optimize(np.random.default_rng(2002)).stimulus
    proxy_run = run_simulation_experiment(stimulus=proxy_stimulus)

    with report("Ablation -- GA on the netlist vs on a behavioral proxy "
                "(validation std(err), true devices)") as p:
        p(f"{'optimized on':>18s}  {'gain (dB)':>10s}  {'NF (dB)':>10s}  {'IIP3 (dBm)':>11s}")
        for label, run in (("netlist (LNA900)", netlist_run), ("behavioral proxy", proxy_run)):
            e = run.std_errors
            p(f"{label:>18s}  {e['gain_db']:10.4f}  {e['nf_db']:10.4f}  "
              f"{e['iip3_dbm']:11.4f}")
        p("")
        ratio = proxy_run.std_errors["iip3_dbm"] / netlist_run.std_errors["iip3_dbm"]
        p(f"proxy-optimized stimulus costs {ratio:.2f}x on IIP3 -- the paper's "
          "'further improvements are expected with the availability of a "
          "simulation netlist' made quantitative")

    benchmark(proxy_stimulus.to_waveform, 80e6)
