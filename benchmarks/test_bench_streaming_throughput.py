"""Streaming service overhead: the factory-floor claim, measured.

The streaming layer must not tax the capture engine it wraps: ingest
queueing, chunk-wave dispatch, and incremental record emission all ride
on top of the same ``signature_batch`` hot path the offline
``ProductionTestFlow.run`` uses.  This benchmark streams a fixed
wafer-map campaign through :class:`StreamingTestService` and times the
identical lots through the offline flow, recording the *normalized*
ratio ``streamed_seconds / offline_seconds`` (which cancels machine
speed) plus the floor metrics (DUTs/sec, p50/p99 per-device latency)
as JSON under ``benchmarks/results/``.

The committed ``streaming_throughput.json`` is the regression
baseline: CI re-runs this benchmark and fails if the fresh ratio is
more than 20% worse than the committed one (``make bench-check``), so
a change that quietly bloats the service's overhead cannot land
unnoticed.  Both paths are also checked bit-identical end to end --
the ``streaming-offline-equivalence`` relation's contract on the real
benchmark lot.
"""

import json
import os
import time

import numpy as np

from repro.runtime.service import StreamingTestService
from repro.runtime.soak import build_soak_flow
from repro.runtime.trafficgen import TrafficGenerator, WaferMapProfile

N_LOTS = 12
LOT_SIZE = 16
FLOW_SEED = 2002
TRAFFIC_SEED = 2003
#: streamed wall time may cost at most this factor over the offline flow
OVERHEAD_LIMIT = 1.5
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "streaming_throughput.json"
)


def _campaign():
    flow = build_soak_flow(FLOW_SEED, n_train=24)
    traffic = TrafficGenerator(
        WaferMapProfile(), master_seed=TRAFFIC_SEED, lot_size=LOT_SIZE, n_cells=4
    )
    return flow, list(traffic.lots(N_LOTS))


def _best_of(fn, repeats=5):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_streaming_throughput(benchmark, report):
    flow, orders = _campaign()
    n_devices = sum(len(o.devices) for o in orders)

    def offline():
        results = []
        for order in orders:
            results.append(flow.run(order.devices, np.random.default_rng(order.seed)))
        return results

    def streamed():
        with StreamingTestService(flow, executor=None) as service:
            for order in orders:
                service.submit(
                    order.devices,
                    np.random.default_rng(order.seed),
                    cell_id=order.cell_id,
                )
            service.close()
            records = list(service.records())
        return records, service.metrics()

    offline_s, offline_results = _best_of(offline)
    streamed_s, (stream_records, metrics) = _best_of(streamed)

    # the streaming contract, end to end on the real campaign
    offline_records = [r for res in offline_results for r in res.records]
    assert len(stream_records) == len(offline_records) == n_devices
    for stream_record, reference in zip(stream_records, offline_records):
        assert stream_record.record.device_id == reference.device_id
        assert np.array_equal(stream_record.record.signature, reference.signature)
        assert np.array_equal(
            stream_record.record.predicted.as_vector(),
            reference.predicted.as_vector(),
        )
        assert stream_record.record.passed == reference.passed

    ratio = streamed_s / offline_s
    payload = {
        "benchmark": "streaming_throughput",
        "n_lots": N_LOTS,
        "lot_size": LOT_SIZE,
        "n_devices": n_devices,
        "offline_seconds": offline_s,
        "streamed_seconds": streamed_s,
        "streamed_over_offline_ratio": ratio,
        "duts_per_second": n_devices / streamed_s,
        "latency_p50_ms": metrics.latency_p50_s * 1e3,
        "latency_p99_ms": metrics.latency_p99_s * 1e3,
        "overhead_limit": OVERHEAD_LIMIT,
        "unix_time": time.time(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with report("Streaming service -- 12-lot wafer-map campaign") as p:
        p(f"offline ProductionTestFlow.run:  {offline_s * 1e3:8.1f} ms")
        p(f"StreamingTestService:            {streamed_s * 1e3:8.1f} ms "
          f"({ratio:.3f}x offline)")
        p(f"throughput: {n_devices / streamed_s:8.1f} DUTs/s   "
          f"p99 latency: {metrics.latency_p99_s * 1e3:.1f} ms")
        p(f"recorded: {os.path.relpath(RESULTS_PATH)}")

    assert ratio <= OVERHEAD_LIMIT, (
        f"streaming the campaign cost {ratio:.3f}x the offline flow "
        f"(limit {OVERHEAD_LIMIT}x): the service layer got expensive"
    )

    benchmark(lambda: streamed()[1].devices_emitted)
