"""Section 4.2 test-time claim and the Section 1 economics argument.

"The signature test in this case required only 5 milliseconds of data
capture ... significant improvement in test throughput is possible."
Compares the conventional sequential-spec insertion against the
single-capture signature insertion, in time, throughput and cost per
device.  Times the full conventional insertion for reference.
"""

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.instruments.ate import ConventionalRFATE
from repro.loadboard.signature_path import hardware_config
from repro.runtime.economics import compare_flows


def test_bench_test_time_and_economics(benchmark, report):
    ate = ConventionalRFATE()
    conventional_seconds = ate.insertion_time()
    signature_seconds = hardware_config().total_test_time()
    comparison = compare_flows(conventional_seconds, signature_seconds)

    with report("Section 4.2 -- test time and economics: conventional vs signature") as p:
        p("per-test breakdown of the conventional insertion:")
        p(f"  gain test:          {ate.gain_analyzer.total_time() * 1e3:8.1f} ms")
        p(f"  noise figure test:  {ate.noise_meter.total_time() * 1e3:8.1f} ms")
        p(f"  IIP3 test:          {ate.spectrum_analyzer.total_time() * 1e3:8.1f} ms")
        p(f"  total:              {conventional_seconds * 1e3:8.1f} ms")
        p("")
        p("signature insertion (single setup + 5 ms capture):")
        p(f"  total:              {signature_seconds * 1e3:8.1f} ms")
        p("")
        p(comparison.summary())
        p("")
        p(f"time speedup {comparison.time_speedup:.0f}x -- the paper's "
          "'fraction of the test time required with conventional techniques'")

    device = BehavioralAmplifier(900e6, 16.0, 2.5, 3.0)
    rng = np.random.default_rng(0)
    benchmark(ate.test_device, device, rng)
