"""Parallel production-flow scaling: the throughput claim, measured.

Runs the same 64-device production batch through the serial, thread,
and 4-worker process backends, checks the results are bit-identical
(the executor determinism contract), and records the wall-clock
speedups as JSON under ``benchmarks/results/`` so the perf trajectory
is tracked run over run.

The >= 1.5x speedup gate only applies where the machine can actually
run 4 workers; on single-core CI sandboxes the numbers are still
recorded, annotated with the CPU budget that produced them.
"""

import json
import os
import time

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.parallel import ProcessExecutor, ThreadExecutor, available_cpus
from repro.runtime.calibration import CalibrationSession, measure_signatures
from repro.runtime.production import ProductionTestFlow
from repro.runtime.specs import lna_limits
from repro.testgen.pwl import StimulusEncoding

N_DEVICES = 64
N_WORKERS = 4
CHUNKSIZE = 8
LOT_SEED = 2002
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "parallel_scaling.json"
)


def _calibrated_flow_and_lot():
    rng = np.random.default_rng(42)
    space = ParameterSpace(
        [
            ProcessParameter("gain_db", 16.0, 0.08),
            ProcessParameter("nf_db", 2.2, 0.10),
            ProcessParameter("iip3_dbm", 3.0, 0.10),
        ]
    )

    def factory(params):
        return BehavioralAmplifier(
            900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
        )

    config = SignaturePathConfig(
        digitizer_noise_vrms=1e-3, digitizer_bits=None, include_device_noise=False
    )
    board = SignatureTestBoard(config)
    stim = StimulusEncoding(8, config.capture_seconds, 0.4).decode(
        np.array([-0.2, -0.1, 0.0, 0.1, 0.2, 0.15, 0.05, -0.15])
    )
    train_devices = [factory(space.to_dict(p)) for p in space.sample(rng, 40)]
    train_specs = np.vstack([d.specs().as_vector() for d in train_devices])
    train_sigs = measure_signatures(board, stim, train_devices, rng)
    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
    lot = [factory(space.to_dict(p)) for p in space.sample(rng, N_DEVICES)]
    return flow, lot


def _best_of(fn, repeats=3):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_parallel_production_scaling(benchmark, report):
    flow, lot = _calibrated_flow_and_lot()
    cpus = available_cpus()

    serial_s, serial_run = _best_of(
        lambda: flow.run(lot, np.random.default_rng(LOT_SEED))
    )
    # one executor per backend: the pool persists across lots, as it
    # would on a real test floor, so startup cost is paid once
    with ThreadExecutor(max_workers=N_WORKERS) as thread_ex:
        thread_s, thread_run = _best_of(
            lambda: flow.run(
                lot, np.random.default_rng(LOT_SEED), executor=thread_ex
            )
        )
    with ProcessExecutor(max_workers=N_WORKERS) as process_ex:
        process_s, process_run = _best_of(
            lambda: flow.run(
                lot,
                np.random.default_rng(LOT_SEED),
                executor=process_ex,
                chunksize=CHUNKSIZE,
            )
        )

    # the determinism contract, end to end on the real batch
    assert np.array_equal(
        serial_run.predicted_matrix(), process_run.predicted_matrix()
    )
    assert np.array_equal(
        serial_run.predicted_matrix(), thread_run.predicted_matrix()
    )

    thread_speedup = serial_s / thread_s
    process_speedup = serial_s / process_s
    payload = {
        "benchmark": "parallel_production_scaling",
        "n_devices": N_DEVICES,
        "n_workers": N_WORKERS,
        "chunksize": CHUNKSIZE,
        "available_cpus": cpus,
        "serial_seconds": serial_s,
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "thread_speedup": thread_speedup,
        "process_speedup": process_speedup,
        "speedup_target": 1.5,
        "cpu_limited": cpus < 2,
        "unix_time": time.time(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with report("Parallel scaling -- 64-device production batch") as p:
        p(f"available CPUs:            {cpus}")
        p(f"serial:                    {serial_s * 1e3:8.1f} ms")
        p(f"thread x{N_WORKERS}:                 {thread_s * 1e3:8.1f} ms "
          f"({thread_speedup:.2f}x)")
        p(f"process x{N_WORKERS}:                {process_s * 1e3:8.1f} ms "
          f"({process_speedup:.2f}x)")
        p(f"recorded: {os.path.relpath(RESULTS_PATH)}")
        if cpus < 2:
            p("(single-CPU budget: speedup gate not applicable)")

    if cpus >= N_WORKERS:
        assert process_speedup >= 1.5, (
            f"4-worker process backend only reached {process_speedup:.2f}x "
            f"on {cpus} CPUs (target 1.5x)"
        )

    benchmark(
        flow.run,
        lot,
        np.random.default_rng(LOT_SEED),
        executor=ProcessExecutor(max_workers=N_WORKERS),
        chunksize=CHUNKSIZE,
    )
