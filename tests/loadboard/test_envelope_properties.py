"""Algebraic property tests of the envelope representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.waveform import Waveform
from repro.loadboard.envelope import EnvelopeSignal

FC = 1e6
FS = 100e3
N = 32


def random_signal(rng) -> EnvelopeSignal:
    env = EnvelopeSignal.from_baseband(
        Waveform(rng.normal(size=N), FS), FC
    )
    for h in (1, 2):
        tone = EnvelopeSignal(
            {h: rng.normal(size=N) + 1j * rng.normal(size=N)}, FS, FC
        )
        env = env + tone
    return env


def aligned(env, rate=32e6):
    step = int(rate / FS)
    return env.to_passband(rate).samples[::step]


class TestAlgebraicLaws:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_multiplication_commutes(self, seed):
        rng = np.random.default_rng(seed)
        a, b = random_signal(rng), random_signal(rng)
        ab = a.multiply(b)
        ba = b.multiply(a)
        for h in set(ab.harmonics()) | set(ba.harmonics()):
            assert np.allclose(ab.harmonic(h), ba.harmonic(h), atol=1e-12)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_multiplication_distributes_over_addition(self, seed):
        rng = np.random.default_rng(seed)
        a, b, c = random_signal(rng), random_signal(rng), random_signal(rng)
        left = a.multiply(b + c)
        right = a.multiply(b) + a.multiply(c)
        for h in set(left.harmonics()) | set(right.harmonics()):
            assert np.allclose(left.harmonic(h), right.harmonic(h), atol=1e-9)

    @given(seed=st.integers(0, 300), k=st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=15, deadline=None)
    def test_scaling_commutes_with_multiplication(self, seed, k):
        rng = np.random.default_rng(seed)
        a, b = random_signal(rng), random_signal(rng)
        left = a.scale(k).multiply(b)
        right = a.multiply(b).scale(k)
        for h in set(left.harmonics()) | set(right.harmonics()):
            assert np.allclose(left.harmonic(h), right.harmonic(h), atol=1e-9)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_square_is_nonnegative_at_baseband_mean(self, seed):
        # the time average of a real signal's square is non-negative and
        # equals the h=0 mean of its envelope square
        rng = np.random.default_rng(seed)
        a = random_signal(rng)
        sq = a.multiply(a)
        assert np.mean(sq.baseband()) >= -1e-12

    def test_parseval_between_domains(self):
        # mean power computed from envelopes matches the full passband
        # record.  The envelopes must be slow relative to their sample
        # rate (to_passband interpolates linearly), so use sinusoidal
        # envelopes instead of white ones.
        t = np.arange(N) / FS
        slow = np.cos(2 * np.pi * 2e3 * t)
        a = EnvelopeSignal(
            {
                0: 0.5 * slow.astype(complex),
                1: (0.8 * slow + 0.3j * np.sin(2 * np.pi * 1e3 * t)),
                2: 0.2 * slow.astype(complex),
            },
            FS,
            FC,
        )
        pb = a.to_passband(32e6).samples
        power_pb = np.mean(pb**2)
        # envelope-domain power: E0^2 + sum |E_h|^2 / 2, averaged
        power_env = np.mean(a.baseband() ** 2)
        for h in a.harmonics():
            if h > 0:
                power_env += np.mean(np.abs(a.harmonic(h)) ** 2) / 2.0
        assert power_pb == pytest.approx(power_env, rel=0.02)
