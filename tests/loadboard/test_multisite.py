"""Property and edge-case tests for the multi-site load board.

The isolation contract: with zero crosstalk an N-site capture is
bit-identical (``np.array_equal``) to N independent single-site
captures on the per-site boards -- crosstalk then layers on top as a
strictly |coupling|-monotone deviation that only mixes co-inserted
devices.  Edge cases pin the lot geometry: empty and single-device
lots, lot sizes not divisible by the site count, and per-site engine
overrides (one site on the reference engine while the rest run
compiled).
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig
from repro.parallel import spawn_generators


def _cfg(**overrides):
    """A small noisy signature path: 128-sample captures."""
    base = dict(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=0.45e6,
        lpf_order=5,
        digitizer_rate=2e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=64e-6,
        envelope_oversample=2,
        dut_coupling="tuned",
    )
    base.update(overrides)
    return SignaturePathConfig(**base)


def _lot(n, seed=3):
    rng = np.random.default_rng(seed)
    return [
        BehavioralAmplifier(
            900e6,
            float(rng.uniform(8.0, 18.0)),
            float(rng.uniform(0.5, 3.5)),
            float(rng.uniform(-12.0, -2.0)),
        )
        for _ in range(n)
    ]


@pytest.fixture
def stim():
    rng = np.random.default_rng(5)
    return PiecewiseLinearStimulus(rng.uniform(-0.7, 0.7, 6), 64e-6)


def _gens(n, seed=11):
    return spawn_generators(np.random.default_rng(seed), n)


class TestIsolationBitExactness:
    @pytest.mark.parametrize("n_devices", [3, 4, 7, 8])
    def test_zero_coupling_equals_per_site_serial(self, stim, n_devices):
        board = MultiSiteBoard(
            _cfg(),
            MultiSiteConfig(
                n_sites=4,
                crosstalk_coupling=0.0,
                site_loss_skew_db=[0.0, 0.3, 0.6, 0.9],
            ),
        )
        devices = _lot(n_devices)
        multi = board.signature_batch(devices, stim, rngs=_gens(n_devices))
        gens = _gens(n_devices)
        for j, site_board in enumerate(board.site_boards):
            idx = list(range(j, n_devices, 4))
            serial = site_board.signature_batch(
                [devices[i] for i in idx], stim, rngs=[gens[i] for i in idx]
            )
            assert np.array_equal(multi[idx], serial)

    def test_single_device_is_site_zero_solo(self, stim):
        board = MultiSiteBoard(_cfg(), MultiSiteConfig(n_sites=4))
        device = _lot(1)[0]
        multi = board.signature(device, stim, rng=np.random.default_rng(17))
        solo = board.site_boards[0].signature(
            device, stim, rng=np.random.default_rng(17)
        )
        assert np.array_equal(multi, solo)

    def test_single_site_board_equals_plain_board(self, stim):
        cfg = _cfg()
        board = MultiSiteBoard(cfg, MultiSiteConfig(n_sites=1))
        plain = SignatureTestBoard(cfg)
        devices = _lot(3)
        assert np.array_equal(
            board.signature_batch(devices, stim, rngs=_gens(3)),
            plain.signature_batch(devices, stim, rngs=_gens(3)),
        )

    def test_mixed_site_engines_bit_identical(self, stim):
        cfg = _cfg()
        devices = _lot(8)
        compiled = MultiSiteBoard(
            cfg, MultiSiteConfig(n_sites=4, crosstalk_coupling=0.03)
        ).signature_batch(devices, stim, rngs=_gens(8), engine="compiled")
        mixed = MultiSiteBoard(
            cfg,
            MultiSiteConfig(
                n_sites=4,
                crosstalk_coupling=0.03,
                site_engines=["compiled", "reference", None, "compiled"],
            ),
        ).signature_batch(devices, stim, rngs=_gens(8), engine="compiled")
        assert np.array_equal(mixed, compiled)


class TestCrosstalkProperties:
    def _deviation(self, stim, coupling, n_devices=4):
        devices = _lot(n_devices)
        clean = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=4, crosstalk_coupling=0.0)
        ).signature_batch(devices, stim, rngs=_gens(n_devices))
        coupled = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=4, crosstalk_coupling=coupling)
        ).signature_batch(devices, stim, rngs=_gens(n_devices))
        return float(np.linalg.norm(coupled - clean) / np.linalg.norm(clean))

    def test_deviation_strictly_monotone_in_coupling_magnitude(self, stim):
        deviations = [self._deviation(stim, c) for c in (0.01, 0.05, 0.2)]
        assert 0.0 < deviations[0] < deviations[1] < deviations[2]

    def test_negative_coupling_also_couples(self, stim):
        assert self._deviation(stim, -0.05) > 0.0

    def test_matrix_coupling_matches_uniform_scalar(self, stim):
        devices = _lot(4)
        c = 0.04
        mat = np.full((2, 2), c)
        np.fill_diagonal(mat, 0.0)
        scalar = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=2, crosstalk_coupling=c)
        ).signature_batch(devices, stim, rngs=_gens(4))
        matrix = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=2, coupling_matrix=mat)
        ).signature_batch(devices, stim, rngs=_gens(4))
        # same physics, different summation order: the scalar path forms
        # c*(total - self), the matrix path accumulates c*other per pair
        assert np.allclose(matrix, scalar, rtol=1e-9, atol=1e-12)

    def test_permutation_within_insertion_only_permutes_records(self, stim):
        # identical sites (uniform coupling, no skew): swapping two
        # devices of the same insertion swaps their records bit for bit
        devices = _lot(4)
        gens_seed = 29
        board = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=4, crosstalk_coupling=0.05)
        )
        base = board.signature_batch(
            devices, stim, rngs=_gens(4, seed=gens_seed)
        )
        perm = [2, 1, 0, 3]  # swap sites 0 and 2 within the insertion
        gens = _gens(4, seed=gens_seed)
        permuted = board.signature_batch(
            [devices[i] for i in perm], stim, rngs=[gens[i] for i in perm]
        )
        # the crosstalk accumulator sums sites in order, so a permuted
        # lot rounds differently in the last bit; the physics is
        # permutation-equivariant, the float sum is only nearly so
        assert np.allclose(permuted, base[perm], rtol=1e-9, atol=1e-12)

    def test_crosstalk_only_mixes_co_inserted_devices(self, stim):
        # a second insertion's devices must not leak into the first
        devices = _lot(4)
        board = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=2, crosstalk_coupling=0.05)
        )
        both = board.signature_batch(devices, stim, rngs=_gens(4))
        first_only = board.signature_batch(
            devices[:2], stim, rngs=_gens(4)[:2]
        )
        assert np.array_equal(both[:2], first_only)


class TestEdgeLots:
    def test_empty_lot_keeps_bin_count(self, stim):
        board = MultiSiteBoard(_cfg(), MultiSiteConfig(n_sites=4))
        sigs = board.signature_batch([], stim, rngs=[], n_bins=32)
        assert sigs.shape == (0, 32)
        assert board.capture_batch([], stim, rngs=[]) == []

    def test_lot_not_divisible_by_sites(self, stim):
        board = MultiSiteBoard(
            _cfg(), MultiSiteConfig(n_sites=4, crosstalk_coupling=0.02)
        )
        sigs = board.signature_batch(_lot(7), stim, rngs=_gens(7))
        assert sigs.shape[0] == 7
        assert np.all(np.isfinite(sigs))

    def test_overdrive_snapshot_covers_all_sites(self, stim):
        board = MultiSiteBoard(_cfg(), MultiSiteConfig(n_sites=3))
        board.signature_batch(_lot(5), stim, rngs=_gens(5))
        peak, ratios = board.overdrive_snapshot()
        assert len(ratios) == 5
        assert peak == pytest.approx(float(np.max(ratios)))


class TestContentionTiming:
    def test_insertion_time_grows_with_occupancy(self):
        board = MultiSiteBoard(
            _cfg(),
            MultiSiteConfig(
                n_sites=4,
                lo_retune_seconds=1e-3,
                digitizer_readout_seconds=2e-3,
            ),
        )
        times = [board.insertion_test_time(k) for k in (1, 2, 3, 4)]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(3e-3)  # readout + retune
        cfg = board.config
        assert times[0] == pytest.approx(
            cfg.setup_time + cfg.capture_seconds + 2e-3
        )

    def test_arbitration_is_overhead_versus_single_site(self):
        board = MultiSiteBoard(
            _cfg(),
            MultiSiteConfig(
                n_sites=4,
                lo_retune_seconds=1e-3,
                digitizer_readout_seconds=2e-3,
            ),
        )
        assert board.arbitration_seconds(1) == pytest.approx(0.0)
        assert board.arbitration_seconds() == pytest.approx(3 * 2e-3 + 3 * 1e-3)
        assert board.device_test_time() == pytest.approx(
            board.insertion_test_time() / 4
        )

    def test_occupancy_bounds_validated(self):
        board = MultiSiteBoard(_cfg(), MultiSiteConfig(n_sites=2))
        with pytest.raises(ValueError):
            board.insertion_test_time(0)
        with pytest.raises(ValueError):
            board.insertion_test_time(3)


class TestConfigValidation:
    def test_skew_length_must_match_sites(self):
        with pytest.raises(ValueError):
            MultiSiteConfig(n_sites=4, site_loss_skew_db=[0.0, 0.1])

    def test_coupling_matrix_diagonal_must_be_zero(self):
        mat = np.full((2, 2), 0.1)
        with pytest.raises(ValueError):
            MultiSiteConfig(n_sites=2, coupling_matrix=mat)

    def test_coupling_matrix_shape_must_match_sites(self):
        mat = np.zeros((3, 3))
        with pytest.raises(ValueError):
            MultiSiteConfig(n_sites=2, coupling_matrix=mat)

    def test_engine_list_length_must_match_sites(self):
        with pytest.raises(ValueError):
            MultiSiteConfig(n_sites=3, site_engines=["compiled"])

    def test_has_crosstalk_flag(self):
        assert not MultiSiteConfig(n_sites=2).has_crosstalk
        assert MultiSiteConfig(n_sites=2, crosstalk_coupling=0.01).has_crosstalk
        mat = np.zeros((2, 2))
        assert not MultiSiteConfig(n_sites=2, coupling_matrix=mat).has_crosstalk

    def test_chunk_alignment_is_site_count(self):
        board = MultiSiteBoard(_cfg(), MultiSiteConfig(n_sites=3))
        assert board.chunk_alignment == 3
        assert [board.site_of(i) for i in range(5)] == [0, 1, 2, 0, 1]
        assert board.site_indices(5) == [[0, 3], [1, 4], [2]]
