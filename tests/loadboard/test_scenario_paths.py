"""Tests for the degraded signature-access scenarios (BIST and ABM).

Both alternative front ends keep the load board's core contracts --
batch row ``i`` bit-identical to a one-device capture on the same RNG
stream, seeded replay determinism, empty-lot shapes -- while degrading
the signal the way their hardware would: the BIST path detects
magnitude through a coarse ADC, the ABM path attenuates and low-passes
through the switch network.  Ridge calibration must still predict gain
through either path better than the train-mean baseline.
"""

import pickle

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parasitics import SwitchParasitics
from repro.dsp.units import db20
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.scenario_paths import (
    AbmAccessPath,
    AbmPathConfig,
    BistPathConfig,
    BistSignaturePath,
)
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.parallel import spawn_generators
from repro.regression.linear import RidgeRegression
from repro.regression.pipeline import Pipeline
from repro.regression.scaling import StandardScaler
from repro.runtime.calibration import measure_signatures


def _board_cfg(**overrides):
    base = dict(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=0.45e6,
        lpf_order=5,
        digitizer_rate=2e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=64e-6,
        envelope_oversample=2,
        dut_coupling="tuned",
    )
    base.update(overrides)
    return SignaturePathConfig(**base)


def _lot(n, seed=3):
    rng = np.random.default_rng(seed)
    return [
        BehavioralAmplifier(
            900e6,
            float(rng.uniform(8.0, 18.0)),
            float(rng.uniform(0.5, 3.5)),
            float(rng.uniform(-12.0, -2.0)),
        )
        for _ in range(n)
    ]


def _gens(n, seed=11):
    return spawn_generators(np.random.default_rng(seed), n)


def _gain_calibration_beats_mean(path, stimulus, seed=101):
    """Fit ridge gain calibration through ``path``; return (rmse, baseline)."""
    rng = np.random.default_rng(seed)
    train, val = _lot(24, seed=seed), _lot(8, seed=seed + 1)
    train_sigs = measure_signatures(
        path,
        stimulus,
        train,
        np.random.default_rng(int(rng.integers(0, 2**63))),
        n_bins=32,
    )
    val_sigs = measure_signatures(
        path,
        stimulus,
        val,
        np.random.default_rng(int(rng.integers(0, 2**63))),
        n_bins=32,
    )
    gain_train = np.array([d.specs().gain_db for d in train])
    gain_val = np.array([d.specs().gain_db for d in val])
    pipeline = Pipeline([StandardScaler(), RidgeRegression(alpha=1.0)])
    pipeline.fit(train_sigs, gain_train)
    rmse = float(np.sqrt(np.mean((pipeline.predict(val_sigs) - gain_val) ** 2)))
    baseline = float(np.sqrt(np.mean((gain_train.mean() - gain_val) ** 2)))
    return rmse, baseline


class TestBistPath:
    @pytest.fixture
    def stim(self):
        rng = np.random.default_rng(5)
        return PiecewiseLinearStimulus(
            rng.uniform(-0.7, 0.7, 6), BistPathConfig().capture_seconds
        )

    def test_batch_row_bit_identical_to_solo(self, stim):
        path = BistSignaturePath(BistPathConfig())
        devices = _lot(4)
        batch = path.signature_batch(devices, stim, rngs=_gens(4))
        gens = _gens(4)
        for i, device in enumerate(devices):
            solo = path.signature(device, stim, rng=gens[i])
            assert np.array_equal(batch[i], solo)

    def test_capture_batch_matches_capture(self, stim):
        path = BistSignaturePath(BistPathConfig())
        devices = _lot(3)
        records = path.capture_batch(devices, stim, rngs=_gens(3))
        gens = _gens(3)
        for i, device in enumerate(devices):
            solo = path.capture(device, stim, rng=gens[i])
            assert np.array_equal(records[i].samples, solo.samples)

    def test_empty_lot_keeps_bin_count(self, stim):
        path = BistSignaturePath(BistPathConfig())
        assert path.signature_batch([], stim, rngs=[], n_bins=32).shape == (0, 32)

    def test_seeded_replay_is_deterministic_and_noisy(self, stim):
        path = BistSignaturePath(BistPathConfig())
        devices = _lot(2)
        first = path.signature_batch(
            devices, stim, rng=np.random.default_rng(77)
        )
        second = path.signature_batch(
            devices, stim, rng=np.random.default_rng(77)
        )
        assert np.array_equal(first, second)
        other = path.signature_batch(
            devices, stim, rng=np.random.default_rng(78)
        )
        assert not np.array_equal(first, other)

    def test_distinct_devices_yield_distinct_signatures(self, stim):
        path = BistSignaturePath(BistPathConfig())
        sigs = path.signature_batch(_lot(3), stim, rngs=[None, None, None])
        assert not np.array_equal(sigs[0], sigs[1])
        assert not np.array_equal(sigs[1], sigs[2])

    def test_coarse_adc_actually_quantizes(self, stim):
        device = _lot(1)[0]
        coarse = BistSignaturePath(
            BistPathConfig(adc_noise_vrms=0.0)
        ).signature(device, stim)
        analog = BistSignaturePath(
            BistPathConfig(adc_noise_vrms=0.0, adc_bits=None)
        ).signature(device, stim)
        assert not np.array_equal(coarse, analog)

    def test_engine_kwarg_accepted_for_interface_compat(self, stim):
        path = BistSignaturePath(BistPathConfig())
        devices = _lot(2)
        a = path.signature_batch(devices, stim, rngs=_gens(2), engine="compiled")
        b = path.signature_batch(devices, stim, rngs=_gens(2), engine=None)
        assert np.array_equal(a, b)

    def test_overdrive_snapshot_tracks_last_capture(self, stim):
        path = BistSignaturePath(BistPathConfig())
        path.signature_batch(_lot(3), stim, rngs=_gens(3))
        peak, ratios = path.overdrive_snapshot()
        assert len(ratios) == 3
        assert peak == pytest.approx(float(np.max(ratios)))

    def test_pickle_roundtrip_captures_identically(self, stim):
        path = BistSignaturePath(BistPathConfig())
        clone = pickle.loads(pickle.dumps(path))
        devices = _lot(2)
        assert np.array_equal(
            clone.signature_batch(devices, stim, rngs=_gens(2)),
            path.signature_batch(devices, stim, rngs=_gens(2)),
        )

    def test_config_aliases_for_scenario_agnostic_code(self):
        cfg = BistPathConfig()
        assert cfg.digitizer_rate == cfg.adc_rate
        assert cfg.digitizer_noise_vrms == cfg.adc_noise_vrms
        assert cfg.dut_coupling == "tuned"
        assert cfg.engine_rate == cfg.envelope_oversample * cfg.adc_rate
        assert cfg.total_test_time() == cfg.setup_time + cfg.capture_seconds

    def test_detector_bandwidth_validated(self):
        with pytest.raises(ValueError):
            BistPathConfig(detector_bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            BistPathConfig(detector_bandwidth_hz=1e9)

    def test_calibration_predicts_gain(self, stim):
        rmse, baseline = _gain_calibration_beats_mean(
            BistSignaturePath(BistPathConfig()), stim
        )
        assert rmse < baseline


class TestSwitchParasitics:
    def test_insertion_loss_matches_divider_formula(self):
        sw = SwitchParasitics(r_on_ohm=50.0, c_node_farads=15e-12)
        assert sw.insertion_loss_db(50.0) == pytest.approx(
            float(db20(1.0 + 50.0 / 100.0))
        )

    def test_zero_resistance_is_lossless(self):
        sw = SwitchParasitics(r_on_ohm=0.0, c_node_farads=15e-12)
        assert sw.insertion_loss_db(50.0) == pytest.approx(0.0)

    def test_pole_frequency(self):
        sw = SwitchParasitics(r_on_ohm=50.0, c_node_farads=200e-12)
        expected = 1.0 / (2.0 * np.pi * (50.0 + 50.0) * 200e-12)
        assert sw.pole_hz(50.0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchParasitics(r_on_ohm=-1.0, c_node_farads=15e-12)
        with pytest.raises(ValueError):
            SwitchParasitics(r_on_ohm=50.0, c_node_farads=-1e-12)


class TestAbmPath:
    @pytest.fixture
    def stim(self):
        rng = np.random.default_rng(5)
        return PiecewiseLinearStimulus(rng.uniform(-0.7, 0.7, 6), 64e-6)

    def test_batch_row_bit_identical_to_solo(self, stim):
        path = AbmAccessPath(AbmPathConfig(base=_board_cfg()))
        devices = _lot(3)
        batch = path.signature_batch(devices, stim, rngs=_gens(3))
        gens = _gens(3)
        for i, device in enumerate(devices):
            solo = path.signature(device, stim, rng=gens[i])
            assert np.array_equal(batch[i], solo)

    def test_switch_losses_fold_into_board_config(self):
        access = AbmPathConfig(
            base=_board_cfg(input_loss_db=0.5, output_loss_db=1.0),
            n_input_switches=2,
            n_output_switches=3,
        )
        loss = access.switch.insertion_loss_db(access.port_impedance_ohm)
        cfg = access.board_config()
        assert cfg.input_loss_db == pytest.approx(0.5 + 2 * loss)
        assert cfg.output_loss_db == pytest.approx(1.0 + 3 * loss)

    def test_access_network_degrades_the_record(self, stim):
        device = _lot(1)[0]
        clean = SignatureTestBoard(_board_cfg()).signature(device, stim)
        degraded = AbmAccessPath(AbmPathConfig(base=_board_cfg())).signature(
            device, stim
        )
        assert float(np.linalg.norm(degraded)) < float(np.linalg.norm(clean))

    def test_pole_above_nyquist_reduces_to_pure_loss(self, stim):
        # a tiny node capacitance puts the bus pole far above the
        # engine band: the ABM path must equal the loss-only board
        access = AbmPathConfig(
            base=_board_cfg(),
            switch=SwitchParasitics(r_on_ohm=50.0, c_node_farads=1e-15),
        )
        device = _lot(1)[0]
        via_abm = AbmAccessPath(access).signature(
            device, stim, rng=np.random.default_rng(3)
        )
        loss_only = SignatureTestBoard(access.board_config()).signature(
            device, stim, rng=np.random.default_rng(3)
        )
        assert np.array_equal(via_abm, loss_only)

    def test_in_band_pole_filters_beyond_pure_loss(self, stim):
        # 2 nF node capacitance: pole ~800 kHz, inside this scaled-down
        # board's 2 MHz engine Nyquist
        device = _lot(1)[0]
        access = AbmPathConfig(
            base=_board_cfg(),
            switch=SwitchParasitics(r_on_ohm=50.0, c_node_farads=2e-9),
        )
        assert access.switch.pole_hz(50.0) < _board_cfg().engine_rate / 2.0
        via_abm = AbmAccessPath(access).signature(device, stim)
        loss_only = SignatureTestBoard(access.board_config()).signature(
            device, stim
        )
        assert not np.array_equal(via_abm, loss_only)

    def test_empty_lot_keeps_bin_count(self, stim):
        path = AbmAccessPath(AbmPathConfig(base=_board_cfg()))
        assert path.signature_batch([], stim, rngs=[], n_bins=32).shape == (0, 32)

    def test_switch_count_validation(self):
        with pytest.raises(ValueError):
            AbmPathConfig(base=_board_cfg(), n_input_switches=-1)

    def test_overdrive_snapshot_delegates_to_board(self, stim):
        path = AbmAccessPath(AbmPathConfig(base=_board_cfg()))
        path.signature_batch(_lot(2), stim, rngs=_gens(2))
        peak, ratios = path.overdrive_snapshot()
        assert len(ratios) == 2
        assert peak == pytest.approx(float(np.max(ratios)))

    def test_calibration_predicts_gain(self, stim):
        rmse, baseline = _gain_calibration_beats_mean(
            AbmAccessPath(AbmPathConfig(base=_board_cfg())), stim
        )
        assert rmse < baseline
