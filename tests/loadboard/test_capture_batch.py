"""Batched capture vs the per-device path: bit-identity and caching.

The contract of ``SignatureTestBoard.capture_batch`` /
``signature_batch``: row ``i`` equals (``np.array_equal``, not approx)
the one-device path on the same per-device RNG stream, for every
coupling mode, noise setting, path-phase mode and fixture loss -- and
the batched runtime call sites inherit that identity across executors.
"""

import dataclasses

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.signature_path import (
    SignaturePathConfig,
    SignatureTestBoard,
    simulation_config,
)
from repro.parallel import SerialExecutor, ThreadExecutor, spawn_generators
from repro.runtime.calibration import measure_signatures


@pytest.fixture
def stim():
    rng = np.random.default_rng(9)
    return PiecewiseLinearStimulus(rng.uniform(-0.25, 0.25, 16), 5e-6, 0.4)


def make_lot(n=6, engine_rate=80e6, with_env_bw=False):
    """A small lot of distinct devices (mixed envelope bandwidths)."""
    rng = np.random.default_rng(7)
    nyquist = engine_rate / 2.0
    bandwidths = [None, 0.2 * nyquist, 0.45 * nyquist]
    return [
        BehavioralAmplifier(
            900e6,
            16.0 + rng.normal(0.0, 0.5),
            2.0 + abs(rng.normal(0.0, 0.2)),
            10.0 + rng.normal(0.0, 1.0),
            envelope_bandwidth=bandwidths[i % 3] if with_env_bw else None,
        )
        for i in range(n)
    ]


def batch_and_serial(cfg, devices, stim, seed=42, n_bins=None, log_scale=False):
    """Signatures from one batched call and from a per-device loop."""
    board = SignatureTestBoard(cfg)
    batch = board.signature_batch(
        devices, stim, rng=np.random.default_rng(seed),
        n_bins=n_bins, log_scale=log_scale,
    )
    board2 = SignatureTestBoard(cfg)
    gens = spawn_generators(np.random.default_rng(seed), len(devices))
    serial = np.vstack(
        [
            board2.signature(d, stim, rng=g, n_bins=n_bins, log_scale=log_scale)
            for d, g in zip(devices, gens)
        ]
    )
    return batch, serial


class TestBatchBitIdentity:
    @pytest.mark.parametrize("coupling", ["tuned", "wideband"])
    @pytest.mark.parametrize("device_noise", [True, False])
    def test_coupling_and_device_noise(self, stim, coupling, device_noise):
        cfg = dataclasses.replace(
            simulation_config(),
            dut_coupling=coupling,
            include_device_noise=device_noise,
        )
        batch, serial = batch_and_serial(cfg, make_lot(), stim)
        assert batch.shape == serial.shape
        assert np.array_equal(batch, serial)

    def test_random_path_phase(self, stim):
        cfg = dataclasses.replace(
            simulation_config(), random_path_phase=True, lo_offset_hz=100e3
        )
        batch, serial = batch_and_serial(cfg, make_lot(), stim)
        assert np.array_equal(batch, serial)

    def test_fixture_losses(self, stim):
        cfg = dataclasses.replace(
            simulation_config(), input_loss_db=1.5, output_loss_db=2.0
        )
        batch, serial = batch_and_serial(cfg, make_lot(), stim)
        assert np.array_equal(batch, serial)

    def test_mixed_envelope_bandwidths(self, stim):
        cfg = simulation_config()
        devices = make_lot(engine_rate=cfg.engine_rate, with_env_bw=True)
        batch, serial = batch_and_serial(cfg, devices, stim)
        assert np.array_equal(batch, serial)

    def test_quantized_digitizer(self, stim):
        cfg = dataclasses.replace(simulation_config(), digitizer_bits=10)
        batch, serial = batch_and_serial(cfg, make_lot(), stim)
        assert np.array_equal(batch, serial)

    def test_n_bins_and_log_scale(self, stim):
        cfg = simulation_config()
        batch, serial = batch_and_serial(
            cfg, make_lot(), stim, n_bins=12, log_scale=True
        )
        assert batch.shape[1] == 12
        assert np.array_equal(batch, serial)

    def test_noise_free(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot()
        batch = board.signature_batch(devices, stim)
        serial = np.vstack([board.signature(d, stim) for d in devices])
        assert np.array_equal(batch, serial)

    def test_capture_batch_waveforms_match_capture(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=4)
        gens = spawn_generators(np.random.default_rng(1), len(devices))
        batch = board.capture_batch(devices, stim, rngs=gens)
        gens2 = spawn_generators(np.random.default_rng(1), len(devices))
        for device, g, wf in zip(devices, gens2, batch):
            single = board.capture(device, stim, rng=g)
            assert isinstance(wf, Waveform)
            assert wf.sample_rate == single.sample_rate
            assert np.array_equal(wf.samples, single.samples)

    def test_identical_devices_identical_noise_free_rows(self, stim):
        board = SignatureTestBoard(simulation_config())
        device = make_lot(n=1)[0]
        batch = board.signature_batch([device, device, device], stim)
        assert np.array_equal(batch[0], batch[1])
        assert np.array_equal(batch[0], batch[2])

    def test_overdrive_ratios_per_device(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot()
        board.signature_batch(devices, stim)
        ratios = board.last_overdrive_ratios.copy()
        assert ratios.shape == (len(devices),)
        assert board.last_overdrive_ratio == pytest.approx(ratios.max())
        singles = []
        for device in devices:
            board.signature(device, stim)
            singles.append(board.last_overdrive_ratio)
        assert np.array_equal(ratios, np.array(singles))


class TestBatchArguments:
    def test_rng_and_rngs_mutually_exclusive(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=2)
        gens = spawn_generators(0, 2)
        with pytest.raises(ValueError, match="not both"):
            board.signature_batch(
                devices, stim, rng=np.random.default_rng(0), rngs=gens
            )

    def test_rngs_length_checked(self, stim):
        board = SignatureTestBoard(simulation_config())
        with pytest.raises(ValueError, match="per device"):
            board.signature_batch(make_lot(n=3), stim, rngs=spawn_generators(0, 2))

    def test_random_path_phase_requires_rng(self, stim):
        cfg = dataclasses.replace(
            simulation_config(), random_path_phase=True, lo_offset_hz=100e3
        )
        board = SignatureTestBoard(cfg)
        with pytest.raises(ValueError, match="requires an rng"):
            board.signature_batch(make_lot(n=2), stim)

    def test_empty_batch(self, stim):
        board = SignatureTestBoard(simulation_config())
        assert board.capture_batch([], stim) == []
        # an empty lot still knows its bin count: (0, m), matching any
        # non-empty batch, so vstack/column code downstream keeps working
        one = board.signature_batch(make_lot(n=1), stim)
        sigs = board.signature_batch([], stim)
        assert sigs.shape == (0, one.shape[1])
        assert board.signature_batch([], stim, n_bins=7).shape == (0, 7)


class TestCapturePlanCache:
    def test_value_equal_stimuli_share_a_plan(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=2)
        board.signature_batch(devices, stim)
        assert len(board._plan_cache) == 1
        clone = PiecewiseLinearStimulus(
            stim.levels.copy(), stim.duration, stim.v_limit
        )
        board.signature_batch(devices, clone)
        assert len(board._plan_cache) == 1

    def test_distinct_stimuli_get_distinct_plans(self, stim):
        board = SignatureTestBoard(simulation_config())
        device = make_lot(n=1)[0]
        board.signature(device, stim)
        other = PiecewiseLinearStimulus(
            stim.levels * 0.5, stim.duration, stim.v_limit
        )
        board.signature(device, other)
        assert len(board._plan_cache) == 2

    def test_cache_is_bounded(self, stim):
        board = SignatureTestBoard(simulation_config())
        device = make_lot(n=1)[0]
        rng = np.random.default_rng(3)
        for _ in range(board._plan_cache_size + 4):
            levels = rng.uniform(-0.25, 0.25, 16)
            board.signature(
                device, PiecewiseLinearStimulus(levels, 5e-6, 0.4)
            )
        assert len(board._plan_cache) == board._plan_cache_size

    def test_cached_plan_gives_identical_signature(self, stim):
        board = SignatureTestBoard(simulation_config())
        device = make_lot(n=1)[0]
        first = board.signature(device, stim)
        second = board.signature(device, stim)  # plan served from cache
        assert np.array_equal(first, second)

    def test_plan_cache_not_pickled(self, stim):
        import pickle

        board = SignatureTestBoard(simulation_config())
        device = make_lot(n=1)[0]
        board.signature(device, stim)
        assert len(board._plan_cache) == 1
        clone = pickle.loads(pickle.dumps(board))
        assert len(clone._plan_cache) == 0
        assert np.array_equal(
            clone.signature(device, stim), board.signature(device, stim)
        )


class TestRuntimeBatchDispatch:
    """measure_signatures chunks batched boards identically on every backend."""

    @pytest.mark.parametrize("executor", [None, "serial", "thread", "process:2"])
    @pytest.mark.parametrize("chunksize", [None, 1, 4])
    def test_cross_backend_identity(self, stim, executor, chunksize):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=8)
        ref = measure_signatures(board, stim, devices, np.random.default_rng(3))
        out = measure_signatures(
            board, stim, devices, np.random.default_rng(3),
            executor=executor, chunksize=chunksize,
        )
        assert np.array_equal(ref, out)

    def test_matches_boards_without_signature_batch(self, stim):
        class PerDeviceBoard:
            """A board exposing only the one-device API."""

            def __init__(self, inner):
                self._inner = inner

            def signature(self, device, stimulus, rng=None, n_bins=None):
                return self._inner.signature(device, stimulus, rng, n_bins)

        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=5)
        batched = measure_signatures(
            board, stim, devices, np.random.default_rng(4)
        )
        looped = measure_signatures(
            PerDeviceBoard(board), stim, devices, np.random.default_rng(4)
        )
        assert np.array_equal(batched, looped)

    def test_thread_executor_instance(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=6)
        ref = measure_signatures(board, stim, devices, np.random.default_rng(8))
        with ThreadExecutor(max_workers=3) as ex:
            out = measure_signatures(
                board, stim, devices, np.random.default_rng(8),
                executor=ex, chunksize=2,
            )
        assert np.array_equal(ref, out)

    def test_serial_instance_runs_single_batch(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(n=4)
        out = measure_signatures(
            board, stim, devices, np.random.default_rng(2),
            executor=SerialExecutor(),
        )
        assert out.shape[0] == 4
