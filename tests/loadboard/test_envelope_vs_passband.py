"""Cross-validation: the fast envelope engine against the brute-force
passband simulator.

This is the framework's central correctness check: both engines simulate
the identical Figure-2/3 signal chain, one with harmonic-envelope algebra
at baseband rates, the other by sampling the carrier directly.  Their
FFT-magnitude signatures must agree for every configuration the
experiments use (scaled down in carrier frequency to keep the passband
records tractable).
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.passband import passband_capture
from repro.dsp.spectral import fft_magnitude_signature
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard


def scaled_config(**overrides):
    """The simulation experiment's path, scaled to a 2 MHz carrier."""
    base = dict(
        carrier_freq=2e6,
        carrier_power_dbm=10.0,
        lo_offset_hz=0.0,
        path_phase_rad=0.0,
        lpf_cutoff_hz=50e3,
        lpf_order=5,
        digitizer_rate=100e3,
        digitizer_noise_vrms=0.0,
        digitizer_bits=None,
        capture_seconds=1e-3,
        envelope_oversample=4,
        dut_coupling="tuned",
        include_device_noise=False,
    )
    base.update(overrides)
    return SignaturePathConfig(**base)


def stimulus(rng, v=0.3):
    return PiecewiseLinearStimulus(
        rng.uniform(-v, v, 16), duration=1e-3, v_limit=0.4
    )


def compare(cfg, device, stim, tol):
    board = SignatureTestBoard(cfg)
    env_sig = fft_magnitude_signature(board.capture(device, stim))
    pb_sig = fft_magnitude_signature(
        passband_capture(device, stim, cfg, passband_rate=96e6)
    )
    scale = np.max(env_sig)
    assert scale > 0
    assert np.max(np.abs(env_sig - pb_sig)) / scale < tol


class TestEngineAgreement:
    def test_linear_regime(self):
        rng = np.random.default_rng(0)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 30.0)  # very linear
        compare(scaled_config(), dev, stimulus(rng, v=0.1), tol=0.02)

    def test_compressed_regime(self):
        rng = np.random.default_rng(1)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0)
        compare(scaled_config(), dev, stimulus(rng, v=0.35), tol=0.02)

    def test_with_harmonic_mixers(self):
        rng = np.random.default_rng(2)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0, iip2_dbm=23.0)
        cfg = scaled_config(
            mixer1=Mixer(0.5, MixerHarmonics.paper_model()),
            mixer2=Mixer(0.5, MixerHarmonics.paper_model()),
        )
        compare(cfg, dev, stimulus(rng), tol=0.02)

    def test_with_path_phase(self):
        rng = np.random.default_rng(3)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0)
        compare(scaled_config(path_phase_rad=0.7), dev, stimulus(rng), tol=0.02)

    def test_with_lo_offset(self):
        rng = np.random.default_rng(4)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0)
        cfg = scaled_config(lo_offset_hz=5e3, path_phase_rad=1.1)
        compare(cfg, dev, stimulus(rng), tol=0.02)

    def test_wideband_coupling(self):
        rng = np.random.default_rng(5)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 10.0, iip2_dbm=30.0)
        cfg = scaled_config(dut_coupling="wideband")
        compare(cfg, dev, stimulus(rng, v=0.15), tol=0.03)

    def test_with_dut_envelope_bandwidth(self):
        # a DUT whose modulation bandwidth cuts into the stimulus band:
        # both engines must apply the same one-pole envelope dynamics
        rng = np.random.default_rng(8)
        dev = BehavioralAmplifier(
            2e6, 16.0, 2.0, 10.0, envelope_bandwidth=8e3
        )
        compare(scaled_config(), dev, stimulus(rng, v=0.15), tol=0.03)

    def test_with_fixture_losses(self):
        rng = np.random.default_rng(7)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0)
        cfg = scaled_config(input_loss_db=1.5, output_loss_db=2.0)
        compare(cfg, dev, stimulus(rng), tol=0.02)

    def test_saturated_device(self):
        # drives the weak DUT far beyond its fold-back point: the envelope
        # engine's describing function must match the passband's clipped
        # polynomial
        rng = np.random.default_rng(6)
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, -5.0)
        compare(scaled_config(), dev, stimulus(rng, v=0.38), tol=0.03)
