"""Tests for repro.loadboard.signature_path."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.signature_path import (
    SignaturePathConfig,
    SignatureTestBoard,
    hardware_config,
    simulation_config,
)


@pytest.fixture
def stim():
    rng = np.random.default_rng(9)
    return PiecewiseLinearStimulus(rng.uniform(-0.25, 0.25, 16), 5e-6, 0.4)


def fast_cfg(**overrides):
    base = dict(
        digitizer_noise_vrms=0.0,
        digitizer_bits=None,
        include_device_noise=False,
        mixer1=Mixer(0.5, MixerHarmonics.ideal()),
        mixer2=Mixer(0.5, MixerHarmonics.ideal()),
    )
    base.update(overrides)
    return SignaturePathConfig(**base)


class TestConfigs:
    def test_simulation_config_matches_paper(self):
        cfg = simulation_config()
        assert cfg.carrier_freq == 900e6
        assert cfg.carrier_power_dbm == 10.0
        assert cfg.lpf_cutoff_hz == 10e6
        assert cfg.digitizer_rate == 20e6
        assert cfg.digitizer_noise_vrms == pytest.approx(1e-3)
        assert cfg.capture_seconds == pytest.approx(5e-6)

    def test_hardware_config_matches_paper(self):
        cfg = hardware_config()
        assert cfg.lo_offset_hz == pytest.approx(100e3)
        assert cfg.digitizer_rate == pytest.approx(1e6)
        assert cfg.capture_seconds == pytest.approx(5e-3)
        assert cfg.random_path_phase

    def test_carrier_amplitude(self):
        # 10 dBm into 50 ohm is 1 V peak
        assert simulation_config().carrier_amplitude == pytest.approx(1.0, rel=1e-3)

    def test_total_test_time(self):
        cfg = simulation_config()
        assert cfg.total_test_time() == pytest.approx(cfg.setup_time + 5e-6)

    def test_validation(self):
        with pytest.raises(ValueError, match="coupling"):
            SignaturePathConfig(dut_coupling="magic")
        with pytest.raises(ValueError, match="offset"):
            SignaturePathConfig(lo_offset_hz=1e9)


class TestEquation4:
    """Same-LO configuration: signature scales as cos(phi)."""

    def test_cosine_scaling(self, stim, behavioral_amp):
        ref = None
        for phi in (0.0, np.pi / 3, np.pi / 4):
            board = SignatureTestBoard(fast_cfg(path_phase_rad=phi))
            rms = board.capture(behavioral_amp, stim).rms()
            if ref is None:
                ref = rms
            else:
                assert rms == pytest.approx(ref * abs(np.cos(phi)), rel=1e-6)

    def test_complete_cancellation_at_quarter_wave(self, stim, behavioral_amp):
        board = SignatureTestBoard(fast_cfg(path_phase_rad=np.pi / 2))
        assert board.capture(behavioral_amp, stim).rms() < 1e-12


class TestEquation5:
    """Offset-LO configuration: FFT magnitude independent of phi."""

    def test_fft_magnitude_invariant(self, behavioral_amp):
        rng = np.random.default_rng(10)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.25, 0.25, 16), 2e-3, 0.4)
        sigs = []
        for phi in (0.0, 1.0, 2.5):
            cfg = fast_cfg(
                path_phase_rad=phi,
                lo_offset_hz=100e3,
                lpf_cutoff_hz=450e3,
                digitizer_rate=1e6,
                capture_seconds=2e-3,
            )
            sigs.append(SignatureTestBoard(cfg).signature(behavioral_amp, stim))
        for s in sigs[1:]:
            assert np.linalg.norm(s - sigs[0]) / np.linalg.norm(sigs[0]) < 0.01

    def test_time_domain_changes_with_phase(self, behavioral_amp):
        rng = np.random.default_rng(11)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.25, 0.25, 16), 2e-3, 0.4)
        recs = []
        for phi in (0.0, 1.5):
            cfg = fast_cfg(
                path_phase_rad=phi,
                lo_offset_hz=100e3,
                lpf_cutoff_hz=450e3,
                digitizer_rate=1e6,
                capture_seconds=2e-3,
            )
            recs.append(SignatureTestBoard(cfg).time_signature(behavioral_amp, stim))
        rel = np.linalg.norm(recs[1] - recs[0]) / np.linalg.norm(recs[0])
        assert rel > 0.5  # raw time-domain signature is badly phase-sensitive


class TestCaptureMechanics:
    def test_output_rate_and_length(self, stim, behavioral_amp):
        board = SignatureTestBoard(fast_cfg())
        rec = board.capture(behavioral_amp, stim)
        assert rec.sample_rate == 20e6
        assert len(rec) == 100

    def test_waveform_stimulus_accepted(self, behavioral_amp):
        board = SignatureTestBoard(fast_cfg())
        wf = Waveform(0.1 * np.ones(500), 100e6)  # different rate: resampled
        rec = board.capture(behavioral_amp, wf)
        assert len(rec) == 100

    def test_noise_requires_rng(self, stim, behavioral_amp):
        cfg = fast_cfg(digitizer_noise_vrms=1e-3)
        board = SignatureTestBoard(cfg)
        a = board.capture(behavioral_amp, stim)
        b = board.capture(behavioral_amp, stim, rng=np.random.default_rng(0))
        assert np.array_equal(a.samples, board.capture(behavioral_amp, stim).samples)
        assert not np.array_equal(a.samples, b.samples)

    def test_random_phase_requires_rng(self, stim, behavioral_amp):
        board = SignatureTestBoard(fast_cfg(random_path_phase=True))
        with pytest.raises(ValueError, match="rng"):
            board.capture(behavioral_amp, stim)

    def test_gain_scales_signature(self, stim):
        board = SignatureTestBoard(fast_cfg())
        weak_stim = PiecewiseLinearStimulus(stim.levels * 0.2, 5e-6, 0.4)
        lo = BehavioralAmplifier(900e6, 10.0, 2.0, 30.0)
        hi = BehavioralAmplifier(900e6, 16.0, 2.0, 30.0)
        s_lo = board.signature(lo, weak_stim)
        s_hi = board.signature(hi, weak_stim)
        assert np.linalg.norm(s_hi) / np.linalg.norm(s_lo) == pytest.approx(
            2.0, rel=0.02
        )

    def test_overdrive_ratio_recorded(self, behavioral_amp):
        board = SignatureTestBoard(fast_cfg())
        weak = PiecewiseLinearStimulus(np.full(16, 0.02), 5e-6, 0.4)
        board.capture(behavioral_amp, weak)
        low = board.last_overdrive_ratio
        strong = PiecewiseLinearStimulus(np.full(16, 0.4), 5e-6, 0.4)
        board.capture(behavioral_amp, strong)
        high = board.last_overdrive_ratio
        assert 0.0 < low < high

    def test_device_noise_injected(self, stim):
        # a noisy DUT raises the signature floor relative to a quiet one
        cfg = fast_cfg(include_device_noise=True)
        board = SignatureTestBoard(cfg)
        quiet = BehavioralAmplifier(900e6, 16.0, 0.5, 30.0)
        loud = BehavioralAmplifier(900e6, 16.0, 20.0, 30.0)
        zero_stim = PiecewiseLinearStimulus(np.zeros(16), 5e-6, 0.4)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        n_quiet = board.capture(quiet, zero_stim, rng1).rms()
        n_loud = board.capture(loud, zero_stim, rng2).rms()
        assert n_loud > 2.0 * n_quiet

    def test_signature_n_bins(self, stim, behavioral_amp):
        board = SignatureTestBoard(fast_cfg())
        sig = board.signature(behavioral_amp, stim, n_bins=20)
        assert len(sig) == 20

    def test_fixture_losses_scale_signature(self, stim):
        # with a linear DUT, input and output losses compose in dB
        device = BehavioralAmplifier(900e6, 16.0, 2.0, 60.0)
        clean = SignatureTestBoard(fast_cfg())
        lossy = SignatureTestBoard(fast_cfg(input_loss_db=1.0, output_loss_db=2.0))
        s_clean = clean.signature(device, stim)
        s_lossy = lossy.signature(device, stim)
        expected = 10 ** (-3.0 / 20.0)
        ratio = np.linalg.norm(s_lossy) / np.linalg.norm(s_clean)
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_input_loss_reduces_compression(self):
        # the input loss backs the DUT off its compression: unlike the
        # output loss it changes the signature *shape*, not just scale
        device = BehavioralAmplifier(900e6, 16.0, 2.0, 3.0)
        rng = np.random.default_rng(13)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.35, 0.35, 16), 5e-6, 0.4)
        clean = SignatureTestBoard(fast_cfg())
        in_loss = SignatureTestBoard(fast_cfg(input_loss_db=6.0))
        out_loss = SignatureTestBoard(fast_cfg(output_loss_db=6.0))
        s_clean = clean.signature(device, stim)
        s_in = in_loss.signature(device, stim)
        s_out = out_loss.signature(device, stim)
        k = 10 ** (-6.0 / 20.0)
        # output loss is a pure scale
        assert np.allclose(s_out, k * s_clean, rtol=1e-9, atol=1e-12)
        # input loss is not (the DUT sees a different drive level)
        assert not np.allclose(s_in, k * s_clean, rtol=1e-3)

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError, match="losses"):
            fast_cfg(input_loss_db=-1.0)
