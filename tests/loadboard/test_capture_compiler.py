"""The capture-chain compiler: lowering identities, bit-identity, fast path.

Three contracts pin the compiled whole-lot engine:

* every smart-constructor rewrite in :class:`CaptureTape` rests on a
  *bitwise* NumPy identity -- ``TestLoweringIdentities`` asserts each
  one on random data, and ``TestTapeConstruction`` checks the tape only
  reorders operands where the identity licenses it;
* exact mode (``engine="compiled"``) is ``np.array_equal`` to the
  reference envelope algebra for every configuration regime, lot size
  (including empty), executor backend and chunking;
* the float32 fast path stays inside its machine-certified error
  budget and *refuses* -- raises :class:`FastPathError` -- rather than
  silently degrade when the stimulus populates harmonics above the
  reduction ceiling.
"""

import dataclasses
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.capture_compiler import (
    CaptureTape,
    FastPathError,
    fast_path_error_bound,
    fast_path_quantization_bound,
    reduction_drops_content,
    trace_mixer_baseband,
)
from repro.loadboard.signature_path import (
    SignatureTestBoard,
    hardware_config,
    simulation_config,
)
from repro.parallel import ThreadExecutor, spawn_generators
from repro.runtime.calibration import measure_signatures

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def stim():
    rng = np.random.default_rng(9)
    return PiecewiseLinearStimulus(rng.uniform(-0.25, 0.25, 16), 5e-6, 0.4)


def make_lot(n=5):
    rng = np.random.default_rng(7)
    return [
        BehavioralAmplifier(
            900e6,
            16.0 + rng.normal(0.0, 0.5),
            2.0 + abs(rng.normal(0.0, 0.2)),
            10.0 + rng.normal(0.0, 1.0),
        )
        for i in range(n)
    ]


def engines_agree(cfg, devices, stim, seed=42, engine="compiled"):
    """(reference, other-engine) signature matrices on fresh boards."""
    ref = SignatureTestBoard(cfg).signature_batch(
        devices, stim, rng=np.random.default_rng(seed), engine="reference"
    )
    other = SignatureTestBoard(cfg).signature_batch(
        devices, stim, rng=np.random.default_rng(seed), engine=engine
    )
    return ref, other


# ----------------------------------------------------------------------
# the bitwise identities the smart constructors rely on
# ----------------------------------------------------------------------
class TestLoweringIdentities:
    """Each rewrite the tape applies, asserted bitwise on random data."""

    @pytest.fixture
    def cplx(self):
        rng = np.random.default_rng(11)
        def draw():
            return rng.normal(size=(4, 64)) + 1j * rng.normal(size=(4, 64))
        return draw

    def test_product_real_part_commutes(self, cplx):
        a, b = cplx(), cplx()
        assert np.array_equal((a * b).real, (b * a).real)

    def test_real_operand_product_commutes_fully(self, cplx):
        c = cplx()
        r = c.real + 0.0  # real-dtype operand, as the tape coerces h=0
        assert np.array_equal(r * c, c * r)

    def test_conj_distributes_over_product(self, cplx):
        a, b = cplx(), cplx()
        assert np.array_equal(np.conjugate(a) * np.conjugate(b), np.conjugate(a * b))

    def test_conj_distributes_over_sum(self, cplx):
        a, b = cplx(), cplx()
        assert np.array_equal(np.conjugate(a) + np.conjugate(b), np.conjugate(a + b))

    def test_conj_mirrored_products_share_real_part(self, cplx):
        a, b = cplx(), cplx()
        assert np.array_equal((a * np.conjugate(b)).real, (np.conjugate(a) * b).real)
        assert np.array_equal((b * np.conjugate(a)).real, (a * np.conjugate(b)).real)

    def test_power_of_two_scaling_roundtrips(self, cplx):
        x = cplx()
        assert np.array_equal((x * 2.0) / 2.0, x)
        assert np.array_equal((x / 2.0) * 2.0, x)

    def test_conj_commutes_with_halving(self, cplx):
        x = cplx()
        assert np.array_equal(np.conjugate(x) / 2.0, np.conjugate(x / 2.0))

    def test_real_part_distributes_over_sum(self, cplx):
        a, b = cplx(), cplx()
        assert np.array_equal((a + b).real, a.real + b.real)

    def test_real_operand_pulls_out_of_real_part(self, cplx):
        c = cplx()
        r = c.real + 0.0
        assert np.array_equal((r * c).real, r * c.real)

    def test_real_scalar_pulls_out_of_real_part(self, cplx):
        c = cplx()
        assert np.array_equal((c * 0.37).real, c.real * 0.37)


class TestTapeConstruction:
    """The tape reorders operands only where an identity licenses it."""

    def test_complex_product_keeps_operand_order(self):
        # complex x complex does NOT commute bitwise in the imaginary
        # component (FMA contraction is operand-asymmetric), so the tape
        # must keep the traced order even when ids would sort otherwise
        tape = CaptureTape()
        a = tape.input_("rf", 1)
        b = tape.input_("rf", 2)
        nid = tape.mul(b, a)
        assert tape.nodes[nid].args == (b, a)

    def test_real_operand_product_sorts(self):
        tape = CaptureTape()
        r = tape.input_("rf", 0, dtype="r")
        c = tape.input_("rf", 1)
        assert tape.nodes[tape.mul(c, r)].args == (r, c)

    def test_products_are_hash_consed(self):
        tape = CaptureTape()
        a, b = tape.input_("rf", 1), tape.input_("rf", 2)
        assert tape.mul(a, b) == tape.mul(a, b)

    def test_identity_scale_is_elided(self):
        tape = CaptureTape()
        a = tape.input_("rf", 1)
        assert tape.scale(a, 1.0) == a
        assert tape.scale(a, 0.5) != a

    def test_conj_of_real_is_identity(self):
        tape = CaptureTape()
        r = tape.input_("rf", 0, dtype="r")
        assert tape.conj(r) == r

    def test_double_then_half_cancels(self):
        tape = CaptureTape()
        a = tape.input_("rf", 1)
        assert tape.half(tape.double(a)) == a
        assert tape.double(tape.half(a)) == a

    def test_mirrored_products_share_one_real_node(self):
        tape = CaptureTape()
        a, b = tape.input_("rf", 1), tape.input_("rf", 2)
        r1 = tape.real(tape.mul(a, tape.conj(b)))
        r2 = tape.real(tape.mul(tape.conj(a), b))
        assert r1 == r2

    def test_fingerprint_detects_structure_change(self):
        cfg = simulation_config()
        t1, o1 = trace_mixer_baseband(cfg.mixer2, (0, 1), (1,), cfg.max_harmonic)
        t2, o2 = trace_mixer_baseband(cfg.mixer2, (0, 1, 2), (1,), cfg.max_harmonic)
        assert t1.fingerprint(o1) != t2.fingerprint(o2)
        t3, o3 = trace_mixer_baseband(cfg.mixer2, (0, 1), (1,), cfg.max_harmonic)
        assert t1.fingerprint(o1) == t3.fingerprint(o3)


# ----------------------------------------------------------------------
# exact-mode bit identity
# ----------------------------------------------------------------------
class TestCompiledBitIdentity:
    @pytest.mark.parametrize("coupling", ["tuned", "wideband"])
    @pytest.mark.parametrize("bits", [None, 12])
    def test_coupling_and_quantization(self, stim, coupling, bits):
        cfg = dataclasses.replace(
            simulation_config(), dut_coupling=coupling, digitizer_bits=bits
        )
        ref, comp = engines_agree(cfg, make_lot(), stim)
        assert np.array_equal(ref, comp)

    def test_random_path_phase(self, stim):
        cfg = dataclasses.replace(simulation_config(), random_path_phase=True)
        ref, comp = engines_agree(cfg, make_lot(), stim)
        assert np.array_equal(ref, comp)

    def test_lo_offset(self, stim):
        cfg = dataclasses.replace(simulation_config(), lo_offset_hz=100e3)
        ref, comp = engines_agree(cfg, make_lot(), stim)
        assert np.array_equal(ref, comp)

    def test_hardware_config(self, stim):
        ref, comp = engines_agree(hardware_config(), make_lot(3), stim)
        assert np.array_equal(ref, comp)

    def test_single_device_and_empty_lot(self, stim):
        cfg = simulation_config()
        ref1, comp1 = engines_agree(cfg, make_lot(1), stim)
        assert np.array_equal(ref1, comp1)
        ref0, comp0 = engines_agree(cfg, [], stim)
        assert comp0.shape == (0, ref1.shape[1])
        assert np.array_equal(ref0, comp0)

    def test_compiled_is_the_default_engine(self, stim):
        cfg = simulation_config()
        assert SignatureTestBoard(cfg).default_engine == "compiled"
        default = SignatureTestBoard(cfg).signature_batch(
            make_lot(), stim, rng=np.random.default_rng(5)
        )
        explicit = SignatureTestBoard(cfg).signature_batch(
            make_lot(), stim, rng=np.random.default_rng(5), engine="compiled"
        )
        assert np.array_equal(default, explicit)

    def test_matches_per_device_signature(self, stim):
        cfg = simulation_config()
        devices = make_lot()
        board = SignatureTestBoard(cfg)
        batch = board.signature_batch(
            devices, stim, rng=np.random.default_rng(3), engine="compiled"
        )
        board2 = SignatureTestBoard(cfg)
        gens = spawn_generators(np.random.default_rng(3), len(devices))
        for i, (dev, g) in enumerate(zip(devices, gens)):
            assert np.array_equal(batch[i], board2.signature(dev, stim, rng=g))

    def test_unknown_engine_rejected(self, stim):
        with pytest.raises(ValueError, match="unknown capture engine"):
            SignatureTestBoard(simulation_config()).signature_batch(
                make_lot(1), stim, rng=np.random.default_rng(0), engine="vector"
            )

    def test_stage_breakdown_recorded(self, stim):
        board = SignatureTestBoard(simulation_config())
        board.signature_batch(make_lot(), stim, rng=np.random.default_rng(1))
        stages = board.last_stage_seconds
        for name in ("plan", "nonlinearity", "noise", "mix", "filter",
                     "digitize", "fft"):
            assert stages[name] >= 0.0


class TestExecutorBackends:
    """Compiled captures across executor backends, incl. degenerate lots."""

    @pytest.mark.parametrize("executor", [None, "thread:2", "process:2"])
    def test_empty_and_single_device(self, stim, executor):
        cfg = simulation_config()
        board = SignatureTestBoard(cfg)
        serial_one = measure_signatures(
            board, stim, make_lot(1), np.random.default_rng(8)
        )
        board2 = SignatureTestBoard(cfg)
        one = measure_signatures(
            board2, stim, make_lot(1), np.random.default_rng(8),
            executor=executor,
        )
        assert np.array_equal(serial_one, one)
        empty = measure_signatures(
            board2, stim, [], np.random.default_rng(8), executor=executor
        )
        assert empty.shape == (0, one.shape[1])

    @pytest.mark.parametrize("chunksize", [1, 2])
    def test_thread_chunking_identity(self, stim, chunksize):
        cfg = simulation_config()
        devices = make_lot(4)
        serial = measure_signatures(
            SignatureTestBoard(cfg), stim, devices, np.random.default_rng(6)
        )
        board = SignatureTestBoard(cfg)
        # one shared board: chunks of equal batch size execute the same
        # compiled program concurrently (regression for the workspace race)
        for _ in range(3):
            threaded = measure_signatures(
                board, stim, devices, np.random.default_rng(6),
                executor=ThreadExecutor(2), chunksize=chunksize,
            )
            assert np.array_equal(serial, threaded)


# ----------------------------------------------------------------------
# the float32 fast path
# ----------------------------------------------------------------------
class TestFastPath:
    def test_within_certified_budget(self, stim):
        cfg = simulation_config()
        devices = make_lot()
        exact = SignatureTestBoard(cfg).signature_batch(
            devices, stim, rng=np.random.default_rng(2), engine="compiled"
        )
        board = SignatureTestBoard(cfg)
        fast = board.signature_batch(
            devices, stim, rng=np.random.default_rng(2), engine="fast"
        )
        plan = next(iter(board._plan_cache.values()))
        program = next(
            p for key, p in plan.programs.items() if key[0] == "float32"
        )
        lsb = 0.0
        if cfg.digitizer_bits is not None:
            lsb = 2.0 * board._digitizer.full_scale / 2.0 ** cfg.digitizer_bits
        budget = fast_path_error_bound(program.op_count)
        slack = fast_path_quantization_bound(lsb, exact.shape[1])
        for row_exact, row_fast in zip(exact, fast):
            err = np.linalg.norm(row_fast - row_exact)
            assert err <= budget * np.linalg.norm(row_exact) + slack

    def test_refuses_wideband_rather_than_degrade(self, stim):
        cfg = dataclasses.replace(simulation_config(), dut_coupling="wideband")
        board = SignatureTestBoard(cfg)
        with pytest.raises(FastPathError, match="fast path refused"):
            board.signature_batch(
                make_lot(2), stim, rng=np.random.default_rng(2), engine="fast"
            )
        # the refusal decision is memoized on the plan
        plan = next(iter(board._plan_cache.values()))
        assert any(plan.fast_refusals.values())

    def test_refusal_is_structural(self):
        # the cubic DUT populates rf harmonics up to 3; mixer products
        # reach past ceiling 6 only when those harmonics exist
        cfg = simulation_config()
        assert reduction_drops_content(cfg.mixer2, (0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
                                       (1,), cfg.max_harmonic, 6)
        assert not reduction_drops_content(cfg.mixer2, (0, 1, 2, 3),
                                           (1,), cfg.max_harmonic,
                                           cfg.max_harmonic)

    def test_certified_budgets_are_machine_checked(self):
        from repro.analysis.absint.interp import certification_report
        from repro.analysis.driver import analyze_project
        from repro.analysis.project import ProjectIndex

        src = REPO_ROOT / "src" / "repro" / "loadboard" / "capture_compiler.py"
        report = analyze_project([str(src)])
        cert = certification_report(ProjectIndex(report.summaries))
        rows = {r["function"].rsplit(".", 1)[-1]: r for r in cert["functions"]}
        for name in ("fast_path_error_bound", "fast_path_quantization_bound"):
            assert rows[name]["budget_ok"] is True
            assert rows[name]["return_interval"]["may_nan"] is False


# ----------------------------------------------------------------------
# plan-cache hygiene
# ----------------------------------------------------------------------
def _stimuli(k):
    rng = np.random.default_rng(21)
    return [
        PiecewiseLinearStimulus(rng.uniform(-0.25, 0.25, 16), 5e-6, 0.4)
        for _ in range(k)
    ]


class TestPlanCacheBytes:
    def test_workspaces_shed_before_plans(self):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(3)
        for s in _stimuli(2):
            board.signature_batch(devices, s, rng=np.random.default_rng(1))
        total = sum(p.nbytes() for p in board._plan_cache.values())
        board._plan_cache_max_bytes = total - 1
        board._enforce_plan_cache_bytes()
        # both plans survive: dropping the LRU plan's workspaces was enough
        assert len(board._plan_cache) == 2
        assert sum(p.nbytes() for p in board._plan_cache.values()) < total

    def test_hard_bound_evicts_lru_plans_keeps_newest(self):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(2)
        stimuli = _stimuli(3)
        for s in stimuli:
            board.signature_batch(devices, s, rng=np.random.default_rng(1))
        board._plan_cache_max_bytes = 0
        board._enforce_plan_cache_bytes()
        assert len(board._plan_cache) == 1
        newest = board.capture_plan(stimuli[-1])
        assert next(iter(board._plan_cache.values())) is newest

    def test_bound_enforced_during_capture(self):
        board = SignatureTestBoard(simulation_config())
        board._plan_cache_max_bytes = 1
        devices = make_lot(2)
        for s in _stimuli(4):
            board.signature_batch(devices, s, rng=np.random.default_rng(1))
            assert len(board._plan_cache) == 1

    def test_release_workspaces_preserves_results(self, stim):
        board = SignatureTestBoard(simulation_config())
        devices = make_lot(3)
        first = board.signature_batch(devices, stim, rng=np.random.default_rng(4))
        for plan in board._plan_cache.values():
            plan.release_workspaces()
        again = board.signature_batch(devices, stim, rng=np.random.default_rng(4))
        assert np.array_equal(first, again)


class TestPickling:
    def test_program_roundtrip_drops_workspaces(self, stim):
        board = SignatureTestBoard(simulation_config())
        board.signature_batch(make_lot(2), stim, rng=np.random.default_rng(3))
        plan = next(iter(board._plan_cache.values()))
        program = next(iter(plan.programs.values()))
        assert program._workspaces  # populated by the capture
        clone = pickle.loads(pickle.dumps(program))
        assert clone._workspaces == {}
        rng = np.random.default_rng(13)
        inputs = {"rf": {}, "lo": {}}
        for kind, harmonic in program.input_keys:
            arr = rng.normal(size=(2, plan.n))
            if program._input_dtype[(kind, harmonic)] == "c":
                arr = arr + 1j * rng.normal(size=(2, plan.n))
            inputs[kind][harmonic] = arr
        out = program.execute(inputs["rf"], inputs["lo"])
        out_clone = clone.execute(inputs["rf"], inputs["lo"])
        assert np.array_equal(out, out_clone)

    def test_plan_roundtrip_reuses_compiled_fingerprint(self, stim):
        board = SignatureTestBoard(simulation_config())
        board.signature_batch(make_lot(2), stim, rng=np.random.default_rng(3))
        plan = next(iter(board._plan_cache.values()))
        clone = pickle.loads(pickle.dumps(plan))
        assert set(clone.programs) == set(plan.programs)
        for key, program in plan.programs.items():
            assert clone.programs[key].fingerprint == program.fingerprint

    def test_process_executor_identity(self, stim):
        cfg = simulation_config()
        devices = make_lot(4)
        serial = measure_signatures(
            SignatureTestBoard(cfg), stim, devices, np.random.default_rng(6)
        )
        pooled = measure_signatures(
            SignatureTestBoard(cfg), stim, devices, np.random.default_rng(6),
            executor="process:2", chunksize=2,
        )
        assert np.array_equal(serial, pooled)
