"""Tests for repro.loadboard.envelope (harmonic-envelope algebra)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.waveform import Waveform
from repro.loadboard.envelope import EnvelopeSignal

FC = 1e6  # carrier for tests
FS = 100e3  # envelope rate
N = 64


def baseband(samples):
    return EnvelopeSignal.from_baseband(Waveform(samples, FS), FC)


def to_time(env, rate=32e6):
    """Reconstruct the passband samples of an envelope signal."""
    return env.to_passband(rate).samples


class TestConstruction:
    def test_from_baseband(self):
        env = baseband(np.ones(N))
        assert env.harmonics() == [0]
        assert np.allclose(env.baseband(), 1.0)

    def test_negative_harmonic_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            EnvelopeSignal({-1: np.ones(4)}, FS, FC)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            EnvelopeSignal({0: np.ones(4), 1: np.ones(5)}, FS, FC)

    def test_e0_coerced_real(self):
        env = EnvelopeSignal({0: np.ones(4) * (1 + 2j)}, FS, FC)
        assert np.allclose(env.harmonic(0), 1.0)

    def test_sine_carrier_is_sine(self):
        env = EnvelopeSignal.sine_carrier(N, FS, FC, amplitude=0.5, phase=0.3)
        samples = to_time(env)
        rate = 32e6
        t = np.arange(len(samples)) / rate
        expected = 0.5 * np.sin(2 * np.pi * FC * t + 0.3)
        assert np.allclose(samples, expected, atol=1e-9)

    def test_sine_carrier_offset_too_large(self):
        with pytest.raises(ValueError, match="Nyquist"):
            EnvelopeSignal.sine_carrier(N, FS, FC, offset_hz=0.6 * FS)


class TestLinearOps:
    def test_add(self):
        a = baseband(np.ones(N))
        b = EnvelopeSignal.sine_carrier(N, FS, FC)
        c = a + b
        assert set(c.harmonics()) == {0, 1}

    def test_scale(self):
        env = baseband(np.full(N, 2.0)).scale(3.0)
        assert np.allclose(env.baseband(), 6.0)

    def test_keep_harmonics(self):
        a = baseband(np.ones(N)) + EnvelopeSignal.sine_carrier(N, FS, FC)
        only1 = a.keep_harmonics([1])
        assert only1.harmonics() == [1]

    def test_keep_harmonics_empty_yields_zero(self):
        a = baseband(np.ones(N))
        out = a.keep_harmonics([5])
        assert np.allclose(out.baseband(), 0.0)

    def test_incompatible_add_rejected(self):
        a = baseband(np.ones(N))
        b = EnvelopeSignal({0: np.ones(N)}, FS * 2, FC)
        with pytest.raises(ValueError, match="compatible"):
            a + b


class TestMultiplication:
    """The core property: envelope multiply == passband multiply."""

    def test_sine_times_sine(self):
        # sin(wt) * sin(wt) = (1 - cos(2wt)) / 2
        s = EnvelopeSignal.sine_carrier(N, FS, FC)
        sq = s.multiply(s)
        assert set(sq.harmonics()) == {0, 2}
        assert np.allclose(sq.baseband(), 0.5)
        assert np.allclose(sq.harmonic(2), -0.5 + 0j)  # -cos(2wt)/2

    def test_baseband_times_carrier(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=N)
        prod = baseband(x).multiply(EnvelopeSignal.sine_carrier(N, FS, FC))
        # x(t) sin(wt): harmonic-1 envelope is -j x(t)
        assert np.allclose(prod.harmonic(1), -1j * x)

    @staticmethod
    def _aligned(env, rate=32e6):
        """Passband samples at instants coinciding with envelope samples.

        ``to_passband`` interpolates envelopes linearly between their
        sample instants, and a product of interpolants differs from the
        interpolant of the product *between* instants; at the aligned
        instants the envelope algebra is exact.
        """
        step = int(rate / FS)
        return env.to_passband(rate).samples[::step]

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_multiply_matches_passband(self, seed):
        rng = np.random.default_rng(seed)
        a = baseband(rng.normal(size=N)) + EnvelopeSignal.sine_carrier(
            N, FS, FC, amplitude=rng.uniform(0.2, 1.0), phase=rng.uniform(0, 6.28)
        )
        b = baseband(rng.normal(size=N)) + EnvelopeSignal.sine_carrier(
            N, FS, FC, amplitude=rng.uniform(0.2, 1.0), phase=rng.uniform(0, 6.28)
        )
        envelope_product = self._aligned(a.multiply(b))
        direct_product = self._aligned(a) * self._aligned(b)
        assert np.allclose(envelope_product, direct_product, atol=1e-9)

    @given(p=st.integers(min_value=2, max_value=3), seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_power_matches_passband(self, p, seed):
        rng = np.random.default_rng(seed)
        a = baseband(0.3 * rng.normal(size=N)) + EnvelopeSignal.sine_carrier(
            N, FS, FC, amplitude=0.5
        )
        assert np.allclose(self._aligned(a.power(p)), self._aligned(a) ** p, atol=1e-9)

    def test_polynomial_matches_direct(self):
        rng = np.random.default_rng(3)
        a = EnvelopeSignal.sine_carrier(N, FS, FC, amplitude=0.4)
        y_env = to_time(a.apply_polynomial(6.0, 0.5, -2.0))
        x = to_time(a)
        assert np.allclose(y_env, 6 * x + 0.5 * x**2 - 2 * x**3, atol=1e-9)

    def test_truncation_drops_high_harmonics(self):
        s = EnvelopeSignal.sine_carrier(N, FS, FC)
        sq = s.multiply(s, max_harmonic=1)
        assert set(sq.harmonics()) == {0}


class TestDiagnostics:
    def test_peak_estimate_bounds_signal(self):
        rng = np.random.default_rng(1)
        env = baseband(rng.normal(size=N)) + EnvelopeSignal.sine_carrier(
            N, FS, FC, amplitude=0.7
        )
        assert np.max(np.abs(to_time(env))) <= env.peak_passband_estimate() + 1e-9

    def test_to_passband_rate_check(self):
        env = EnvelopeSignal.sine_carrier(N, FS, FC)
        with pytest.raises(ValueError, match="rate too low"):
            env.to_passband(1e6)

    def test_baseband_waveform(self):
        env = baseband(np.arange(N, dtype=float))
        wf = env.baseband_waveform()
        assert wf.sample_rate == FS
        assert np.allclose(wf.samples, np.arange(N))


class TestFilterHarmonic:
    def test_dc_envelope_passes(self):
        env = EnvelopeSignal({1: np.ones(256, dtype=complex)}, FS, FC)
        out = env.filter_harmonic(1, 5e3)
        # steady envelope settles to unity through the one-pole
        assert abs(out.harmonic(1)[-1]) == pytest.approx(1.0, rel=0.01)

    def test_fast_envelope_attenuated(self):
        t = np.arange(512) / FS
        fast = np.exp(2j * np.pi * 20e3 * t)  # modulation at 20 kHz
        env = EnvelopeSignal({1: fast}, FS, FC)
        out = env.filter_harmonic(1, 2e3)  # 2 kHz bandwidth
        tail = out.harmonic(1)[256:]
        # |H| of a one-pole at 10x its corner is about 1/10
        assert np.mean(np.abs(tail)) == pytest.approx(0.1, rel=0.3)

    def test_other_harmonics_untouched(self):
        env = EnvelopeSignal(
            {0: np.ones(64), 1: np.ones(64, dtype=complex), 2: np.ones(64, dtype=complex)},
            FS,
            FC,
        )
        out = env.filter_harmonic(1, 1e3)
        assert np.allclose(out.harmonic(0), env.harmonic(0))
        assert np.allclose(out.harmonic(2), env.harmonic(2))

    def test_bandwidth_validation(self):
        env = EnvelopeSignal({1: np.ones(16, dtype=complex)}, FS, FC)
        with pytest.raises(ValueError):
            env.filter_harmonic(1, 0.0)
        with pytest.raises(ValueError):
            env.filter_harmonic(1, FS)

    def test_bandwidth_error_names_the_nyquist_bound(self):
        from repro.loadboard.envelope import one_pole_lowpass

        env = EnvelopeSignal({1: np.ones(16, dtype=complex)}, FS, FC)
        with pytest.raises(ValueError, match="envelope Nyquist"):
            env.filter_harmonic(1, FS / 2.0)
        with pytest.raises(ValueError, match="Nyquist 50000"):
            one_pole_lowpass(np.ones(8, dtype=complex), FS, -1.0)
