"""Property-style tests of the signature path's physical behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard


def clean_board(**overrides):
    base = dict(
        digitizer_noise_vrms=0.0,
        digitizer_bits=None,
        include_device_noise=False,
        mixer1=Mixer(0.5, MixerHarmonics.ideal()),
        mixer2=Mixer(0.5, MixerHarmonics.ideal()),
    )
    base.update(overrides)
    return SignatureTestBoard(SignaturePathConfig(**base))


def linear_device(gain_db=16.0):
    return BehavioralAmplifier(900e6, gain_db, 2.0, 60.0)  # essentially linear


class TestLinearity:
    @given(scale=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_signature_scales_with_stimulus_amplitude(self, scale):
        """For a linear DUT the whole chain is linear in the stimulus."""
        board = clean_board()
        rng = np.random.default_rng(3)
        levels = rng.uniform(-0.1, 0.1, 16)
        base = PiecewiseLinearStimulus(levels, 5e-6, 1.0)
        scaled = PiecewiseLinearStimulus(scale * levels, 5e-6, 1.0)
        s_base = board.signature(linear_device(), base)
        s_scaled = board.signature(linear_device(), scaled)
        assert np.allclose(s_scaled, scale * s_base, rtol=1e-6, atol=1e-12)

    @given(extra_gain=st.floats(min_value=-6.0, max_value=6.0))
    @settings(max_examples=15, deadline=None)
    def test_signature_scales_with_device_gain(self, extra_gain):
        board = clean_board()
        rng = np.random.default_rng(4)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.05, 0.05, 16), 5e-6, 0.4)
        s_ref = board.signature(linear_device(16.0), stim)
        s_dev = board.signature(linear_device(16.0 + extra_gain), stim)
        expected = 10 ** (extra_gain / 20.0)
        ratio = np.linalg.norm(s_dev) / np.linalg.norm(s_ref)
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_superposition_for_linear_device(self):
        board = clean_board()
        rng = np.random.default_rng(5)
        la = rng.uniform(-0.05, 0.05, 16)
        lb = rng.uniform(-0.05, 0.05, 16)
        device = linear_device()
        rec_a = board.capture(device, PiecewiseLinearStimulus(la, 5e-6, 1.0))
        rec_b = board.capture(device, PiecewiseLinearStimulus(lb, 5e-6, 1.0))
        rec_ab = board.capture(device, PiecewiseLinearStimulus(la + lb, 5e-6, 1.0))
        assert np.allclose(rec_ab.samples, rec_a.samples + rec_b.samples, atol=1e-9)


class TestCompression:
    def test_nonlinear_device_breaks_scaling(self):
        """A compressive DUT must show sub-linear signature growth."""
        board = clean_board()
        device = BehavioralAmplifier(900e6, 16.0, 2.0, 3.0)
        rng = np.random.default_rng(6)
        levels = rng.uniform(-0.35, 0.35, 16)
        weak = PiecewiseLinearStimulus(0.1 * levels, 5e-6, 1.0)
        strong = PiecewiseLinearStimulus(levels, 5e-6, 1.0)
        s_weak = board.signature(device, weak)
        s_strong = board.signature(device, strong)
        growth = np.linalg.norm(s_strong) / np.linalg.norm(s_weak)
        assert growth < 10.0 * 0.97  # visibly below the linear factor of 10

    def test_lower_iip3_compresses_more(self):
        board = clean_board()
        rng = np.random.default_rng(7)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.35, 0.35, 16), 5e-6, 0.4)
        strong_dut = BehavioralAmplifier(900e6, 16.0, 2.0, 10.0)
        weak_dut = BehavioralAmplifier(900e6, 16.0, 2.0, -2.0)
        s_strong = board.signature(strong_dut, stim)
        s_weak = board.signature(weak_dut, stim)
        # same small-signal gain; the weak device's signature is smaller
        assert np.linalg.norm(s_weak) < np.linalg.norm(s_strong)


class TestDigitizerEffects:
    def test_full_scale_clipping_distorts_signature(self):
        rng = np.random.default_rng(8)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.3, 0.3, 16), 5e-6, 0.4)
        device = linear_device()
        wide = clean_board()
        clipping = clean_board()
        clipping._digitizer.full_scale = 0.05  # way below the response peak
        clipping._digitizer.bits = 12
        s_wide = wide.signature(device, stim)
        s_clip = clipping.signature(device, stim)
        rel = np.linalg.norm(s_clip - s_wide) / np.linalg.norm(s_wide)
        assert rel > 0.05  # clipping visibly corrupts the signature

    def test_quantization_nearly_transparent_at_12_bits(self):
        rng = np.random.default_rng(9)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.3, 0.3, 16), 5e-6, 0.4)
        device = linear_device()
        ideal = clean_board()
        quantized = clean_board(digitizer_bits=12)
        s_ideal = ideal.signature(device, stim)
        s_q = quantized.signature(device, stim)
        rel = np.linalg.norm(s_q - s_ideal) / np.linalg.norm(s_ideal)
        assert rel < 5e-3
