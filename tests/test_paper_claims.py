"""Acceptance tests: the paper's headline claims, as assertions.

These run the full default simulation experiment (cached across the
test session) and pin the *shape* results the reproduction must hold --
if any of these fail, the repository no longer reproduces the paper,
whatever the unit tests say.
"""

import numpy as np
import pytest

from repro.experiments.lna_simulation import PAPER_STD_ERR, run_simulation_experiment


@pytest.fixture(scope="module")
def experiment():
    return run_simulation_experiment()


class TestFigures8To10:
    def test_gain_predicted_tightly(self, experiment):
        # paper: 0.06 dB; we must land the same order of magnitude
        assert experiment.std_errors["gain_db"] < 0.08
        assert experiment.r2["gain_db"] > 0.99

    def test_iip3_predicted_tightly(self, experiment):
        # paper: 0.034 dBm on a narrow spread; our spread is wider, so
        # judge relative accuracy too
        assert experiment.std_errors["iip3_dbm"] < 0.2
        assert experiment.r2["iip3_dbm"] > 0.99

    def test_nf_is_the_hard_spec(self, experiment):
        # the paper's ordering: NF error several times the gain error
        ratio = experiment.std_errors["nf_db"] / experiment.std_errors["gain_db"]
        paper_ratio = PAPER_STD_ERR["nf_db"] / PAPER_STD_ERR["gain_db"]
        assert ratio > 0.5 * paper_ratio

    def test_predictions_beat_mean_prediction_where_observable(self, experiment):
        # gain and IIP3 predictions must explain nearly all process
        # variance; NF must not (it hides behind r_b)
        assert experiment.r2["nf_db"] < 0.5

    def test_single_capture_for_all_specs(self, experiment):
        # one signature row predicts all three specs (Figure 1's point)
        sig = experiment.val_signatures[0]
        specs = experiment.calibration.predict(sig)
        assert np.isfinite(specs.as_vector()).all()


class TestSection42TestTime:
    def test_capture_is_microseconds_not_seconds(self):
        from repro.loadboard.signature_path import simulation_config

        assert simulation_config().capture_seconds == pytest.approx(5e-6)

    def test_insertion_speedup(self):
        from repro.instruments.ate import ConventionalRFATE
        from repro.loadboard.signature_path import hardware_config

        speedup = (
            ConventionalRFATE().insertion_time()
            / hardware_config().total_test_time()
        )
        assert speedup > 10.0


class TestSection21Phase:
    def test_eq4_and_eq5(self):
        from repro.experiments.phase_study import run_phase_study

        study = run_phase_study(n_phases=9)
        wc = study.worst_case()
        assert float(np.min(study.same_lo_rms)) < 1e-9  # complete cancellation
        assert wc["offset_lo_fft_magnitude"] < 0.02  # FFT-mag robust
        assert wc["same_lo_time_domain"] > 0.5  # raw signature is not
