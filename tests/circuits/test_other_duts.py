"""Tests for the PA, attenuator and mixer DUT models."""

import numpy as np
import pytest

from repro.circuits.attenuator import Attenuator
from repro.circuits.mixer_dut import DownconversionMixerDUT
from repro.circuits.pa import PowerAmplifier
from repro.dsp.sources import dbm_to_vpeak, tone
from repro.dsp.spectral import tone_amplitude, tone_power_dbm


class TestPowerAmplifier:
    def make(self):
        return PowerAmplifier(
            center_frequency=900e6, gain_db=25.0, p1db_out_dbm=27.0, nf_db=6.0
        )

    def test_p1db_referencing(self):
        pa = self.make()
        assert pa.p1db_in_dbm == pytest.approx(27.0 - 25.0 + 1.0, abs=1e-6)
        assert pa.p1db_out_dbm == 27.0

    def test_iip3_relation(self):
        pa = self.make()
        assert pa.specs().iip3_dbm == pytest.approx(pa.p1db_in_dbm + 9.6357, abs=1e-3)

    def test_psat_above_p1db(self):
        pa = self.make()
        assert pa.psat_out_dbm > pa.p1db_out_dbm

    def test_small_signal_gain(self):
        pa = self.make()
        f = pa.center_frequency
        amp = dbm_to_vpeak(-30.0)
        out = pa.process_rf(tone(f, 64 / f, 16 * f, amplitude=amp))
        assert 20 * np.log10(tone_amplitude(out, f) / amp) == pytest.approx(
            25.0, abs=0.05
        )

    def test_saturates_at_high_drive(self):
        pa = self.make()
        f = pa.center_frequency
        p_out_low = tone_power_dbm(
            pa.process_rf(tone(f, 64 / f, 16 * f, amplitude=dbm_to_vpeak(5.0))), f
        )
        p_out_high = tone_power_dbm(
            pa.process_rf(tone(f, 64 / f, 16 * f, amplitude=dbm_to_vpeak(15.0))), f
        )
        # 10 dB more input produces far less than 10 dB more output
        assert p_out_high - p_out_low < 4.0

    def test_backoff_helper(self):
        pa = self.make()
        assert pa.drive_level_for_backoff(6.0) == pytest.approx(pa.p1db_in_dbm - 6.0)


class TestAttenuator:
    def test_nf_equals_loss(self):
        att = Attenuator(900e6, loss_db=6.0)
        s = att.specs()
        assert s.gain_db == -6.0
        assert s.nf_db == 6.0

    def test_attenuation_applied(self):
        att = Attenuator(900e6, loss_db=20.0)
        f = att.center_frequency
        wf = tone(f, 64 / f, 16 * f, amplitude=0.1)
        out = att.process_rf(wf)
        assert out.rms() == pytest.approx(0.1 * wf.rms(), rel=0.01)

    def test_very_linear(self):
        att = Attenuator(900e6, loss_db=3.0)
        assert att.specs().iip3_dbm >= 50.0

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            Attenuator(900e6, loss_db=-1.0)


class TestDownconversionMixerDUT:
    def make(self):
        return DownconversionMixerDUT(
            rf_frequency=900e6,
            lo_frequency=800e6,
            conversion_gain_db=-6.5,
            nf_db=7.0,
            iip3_dbm=12.0,
        )

    def test_if_frequency(self):
        assert self.make().if_frequency == pytest.approx(100e6)

    def test_conversion_gain_measured_at_if(self):
        dut = self.make()
        f_rf = dut.center_frequency
        amp = dbm_to_vpeak(-30.0)
        wf = tone(f_rf, 256 / f_rf, 16 * f_rf, amplitude=amp)
        out = dut.process_rf(wf)
        gain = 20 * np.log10(tone_amplitude(out, dut.if_frequency) / amp)
        assert gain == pytest.approx(-6.5, abs=0.2)

    def test_equal_rf_lo_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            DownconversionMixerDUT(900e6, 900e6)

    def test_specs(self):
        s = self.make().specs()
        assert s.gain_db == -6.5
        assert s.nf_db == 7.0
        assert s.iip3_dbm == 12.0
