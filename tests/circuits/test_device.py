"""Tests for the shared RFDevice/SpecSet interface."""

import numpy as np
import pytest

from repro.circuits.device import SpecSet


class TestSpecSet:
    def test_vector_roundtrip(self):
        s = SpecSet(gain_db=16.0, nf_db=2.0, iip3_dbm=3.0)
        assert SpecSet.from_vector(s.as_vector()) == s

    def test_vector_order(self):
        s = SpecSet(gain_db=1.0, nf_db=2.0, iip3_dbm=3.0)
        assert np.allclose(s.as_vector(), [1.0, 2.0, 3.0])
        assert SpecSet.NAMES == ("gain_db", "nf_db", "iip3_dbm")

    def test_as_dict(self):
        s = SpecSet(gain_db=1.0, nf_db=2.0, iip3_dbm=3.0)
        assert s.as_dict() == {"gain_db": 1.0, "nf_db": 2.0, "iip3_dbm": 3.0}

    def test_from_vector_validates_shape(self):
        with pytest.raises(ValueError):
            SpecSet.from_vector([1.0, 2.0])

    def test_frozen(self):
        s = SpecSet(1.0, 2.0, 3.0)
        with pytest.raises(AttributeError):
            s.gain_db = 5.0
