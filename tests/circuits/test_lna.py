"""Tests for repro.circuits.lna (the 900 MHz LNA model)."""

import numpy as np
import pytest

from repro.circuits.lna import LNA900, NOMINAL_PROCESS, lna_parameter_space


class TestNominalLNA:
    def test_specs_in_paper_ranges(self, nominal_lna):
        s = nominal_lna.specs()
        # Figure 8's gain axis spans roughly 15 to 17.5 dB
        assert 15.0 < s.gain_db < 17.5
        # Figure 9's IIP3 axis sits near +3 dBm
        assert 1.0 < s.iip3_dbm < 4.5
        # an LNA noise figure
        assert 1.0 < s.nf_db < 3.5

    def test_bias_point(self, nominal_lna):
        op = nominal_lna.operating_point
        assert 2e-3 < op.ic < 8e-3
        assert op.gm > 0.05

    def test_tank_resonates_at_design_frequency(self, nominal_lna):
        f0 = nominal_lna.design.center_frequency
        z_center = nominal_lna.tank_impedance(f0)
        assert z_center > nominal_lna.tank_impedance(0.9 * f0)
        assert z_center > nominal_lna.tank_impedance(1.1 * f0)

    def test_loop_gain_positive(self, nominal_lna):
        assert nominal_lna.loop_gain > 0.5


class TestProcessSensitivity:
    def test_r_load_raises_gain(self):
        lo = LNA900({"r_load": 0.9 * NOMINAL_PROCESS["r_load"]})
        hi = LNA900({"r_load": 1.1 * NOMINAL_PROCESS["r_load"]})
        assert hi.gain_db() > lo.gain_db()

    def test_rb_silent_in_gain_loud_in_nf(self):
        lo = LNA900({"rb": 0.8 * NOMINAL_PROCESS["rb"]})
        hi = LNA900({"rb": 1.2 * NOMINAL_PROCESS["rb"]})
        assert hi.gain_db() == pytest.approx(lo.gain_db(), abs=1e-9)
        assert hi.nf_db() > lo.nf_db() + 0.1

    def test_tank_detuning_lowers_gain(self):
        nominal = LNA900()
        detuned = LNA900({"c_tank": 1.2 * NOMINAL_PROCESS["c_tank"]})
        assert detuned.gain_db() < nominal.gain_db()

    def test_bias_current_drives_iip3(self):
        # higher Ic -> higher gm -> stronger feedback -> better IIP3
        lo = LNA900({"re": 1.2 * NOMINAL_PROCESS["re"]})  # less current
        hi = LNA900({"re": 0.8 * NOMINAL_PROCESS["re"]})  # more current
        assert hi.operating_point.ic > lo.operating_point.ic
        assert hi.iip3_dbm() > lo.iip3_dbm()

    def test_vaf_effect_is_weak(self):
        lo = LNA900({"vaf": 0.8 * NOMINAL_PROCESS["vaf"]})
        hi = LNA900({"vaf": 1.2 * NOMINAL_PROCESS["vaf"]})
        assert abs(hi.gain_db() - lo.gain_db()) < 0.2

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            LNA900({"r_gate": 100.0})


class TestParameterSpace:
    def test_contains_paper_parameters(self):
        space = lna_parameter_space()
        for name in ("is_sat", "beta_f", "vaf", "rb", "ikf"):
            assert name in space

    def test_default_is_20_percent(self):
        space = lna_parameter_space()
        for p in space:
            assert p.rel_variation == pytest.approx(0.2)

    def test_all_corner_devices_solve(self):
        # every one-at-a-time band-edge device must have a valid bias point
        space = lna_parameter_space()
        for name in space.names():
            for step in (-0.2, 0.2):
                vec = space.perturbed_vector(name, step)
                lna = LNA900(space.to_dict(vec))
                assert lna.operating_point.ic > 0

    def test_monte_carlo_devices_all_solve(self):
        space = lna_parameter_space()
        rng = np.random.default_rng(0)
        for point in space.sample(rng, 200):
            lna = LNA900(space.to_dict(point))
            s = lna.specs()
            assert np.isfinite(s.as_vector()).all()

    def test_spec_spread_reasonable(self):
        space = lna_parameter_space()
        rng = np.random.default_rng(1)
        specs = np.vstack(
            [LNA900(space.to_dict(p)).specs().as_vector() for p in space.sample(rng, 300)]
        )
        gain_std, nf_std, iip3_std = specs.std(axis=0)
        assert 0.5 < gain_std < 3.0  # dB
        assert 0.05 < nf_std < 0.8  # dB
        assert 0.5 < iip3_std < 5.0  # dBm


class TestBehavioralView:
    def test_behavioral_matches_specs(self, nominal_lna):
        beh = nominal_lna.to_behavioral()
        assert beh.specs().gain_db == pytest.approx(nominal_lna.gain_db())
        assert beh.specs().iip3_dbm == pytest.approx(nominal_lna.iip3_dbm())
        assert beh.specs().nf_db == pytest.approx(nominal_lna.nf_db())

    def test_behavioral_cached(self, nominal_lna):
        assert nominal_lna.to_behavioral() is nominal_lna.to_behavioral()

    def test_envelope_poly_consistent(self, nominal_lna):
        a1, _, a3 = nominal_lna.envelope_poly()
        assert 20 * np.log10(a1) == pytest.approx(nominal_lna.gain_db())
        assert a3 < 0.0
