"""Tests for repro.circuits.bjt."""

import numpy as np
import pytest

from repro.circuits.bjt import (
    THERMAL_VOLTAGE,
    BiasNetwork,
    BJTParameters,
    bjt_noise_factor,
    solve_bias,
)


def nominal_params(**overrides):
    base = dict(is_sat=2e-16, beta_f=100.0, vaf=60.0, rb=35.0, ikf=0.05)
    base.update(overrides)
    return BJTParameters(**base)


def nominal_network(**overrides):
    base = dict(vcc=3.0, r1=3.9e3, r2=2.7e3, re=82.0)
    base.update(overrides)
    return BiasNetwork(**base)


class TestBiasNetwork:
    def test_thevenin(self):
        net = nominal_network()
        assert net.v_thevenin == pytest.approx(3.0 * 2.7 / 6.6)
        assert net.r_thevenin == pytest.approx(3.9e3 * 2.7e3 / 6.6e3)

    def test_validation(self):
        with pytest.raises(ValueError):
            nominal_network(vcc=-1.0)
        with pytest.raises(ValueError):
            nominal_network(r1=0.0)


class TestSolveBias:
    def test_kvl_satisfied(self):
        params, net = nominal_params(), nominal_network()
        op = solve_bias(params, net)
        residual = (
            net.v_thevenin - op.ib * net.r_thevenin - op.vbe - (op.ic + op.ib) * net.re
        )
        assert abs(residual) < 1e-9

    def test_collector_current_reasonable(self):
        op = solve_bias(nominal_params(), nominal_network())
        assert 1e-3 < op.ic < 10e-3  # a few mA

    def test_vbe_physical(self):
        op = solve_bias(nominal_params(), nominal_network())
        assert 0.6 < op.vbe < 0.9

    def test_gm_close_to_ic_over_vt(self):
        op = solve_bias(nominal_params(), nominal_network())
        # the qb correction lowers gm slightly below Ic/Vt
        assert op.gm < op.ic / THERMAL_VOLTAGE
        assert op.gm > 0.7 * op.ic / THERMAL_VOLTAGE

    def test_beta_dc_degraded_by_high_injection(self):
        op = solve_bias(nominal_params(), nominal_network())
        assert op.beta_dc < 100.0
        assert op.beta_dc == pytest.approx(100.0 / op.qb, rel=1e-9)

    def test_higher_is_sat_lowers_vbe(self):
        op_lo = solve_bias(nominal_params(is_sat=2e-16), nominal_network())
        op_hi = solve_bias(nominal_params(is_sat=4e-16), nominal_network())
        assert op_hi.vbe < op_lo.vbe
        # but the emitter-degenerated current barely moves
        assert op_hi.ic == pytest.approx(op_lo.ic, rel=0.05)

    def test_smaller_ikf_reduces_current_and_beta(self):
        op_big = solve_bias(nominal_params(ikf=1.0), nominal_network())
        op_small = solve_bias(nominal_params(ikf=0.01), nominal_network())
        assert op_small.beta_dc < op_big.beta_dc
        assert op_small.ic < op_big.ic

    def test_early_voltage_sets_ro(self):
        op = solve_bias(nominal_params(vaf=60.0), nominal_network())
        assert op.r_o == pytest.approx((60.0 + op.vce) / op.ic, rel=1e-9)

    def test_smaller_re_raises_current(self):
        op_big = solve_bias(nominal_params(), nominal_network(re=120.0))
        op_small = solve_bias(nominal_params(), nominal_network(re=60.0))
        assert op_small.ic > op_big.ic

    def test_unbiased_network_rejected(self):
        # divider too weak to forward-bias the junction
        with pytest.raises(ValueError, match="forward-bias"):
            solve_bias(nominal_params(), nominal_network(r2=100.0))

    def test_saturated_transistor_rejected(self):
        with pytest.raises(ValueError, match="saturated"):
            solve_bias(nominal_params(), nominal_network(rc_dc=2e3))

    def test_vce_accounts_for_drops(self):
        net = nominal_network(rc_dc=100.0)
        op = solve_bias(nominal_params(), net)
        expected = 3.0 - op.ic * 100.0 - (op.ic + op.ib) * 82.0
        assert op.vce == pytest.approx(expected, rel=1e-9)


class TestNoiseFactor:
    def test_above_unity(self):
        assert bjt_noise_factor(gm=0.15, beta=90.0, rb=35.0) > 1.0

    def test_rb_increases_noise(self):
        f_lo = bjt_noise_factor(gm=0.15, beta=90.0, rb=10.0)
        f_hi = bjt_noise_factor(gm=0.15, beta=90.0, rb=50.0)
        assert f_hi > f_lo
        # rb contributes linearly via its thermal term (delta rb / Rs)
        # plus quadratically via the base shot-noise term
        gm, beta, rs = 0.15, 90.0, 50.0
        expected = 40.0 / rs + gm * ((rs + 50.0) ** 2 - (rs + 10.0) ** 2) / (
            2.0 * beta * rs
        )
        assert f_hi - f_lo == pytest.approx(expected, rel=1e-9)

    def test_beta_reduces_base_shot_noise(self):
        f_lo = bjt_noise_factor(gm=0.15, beta=50.0, rb=35.0)
        f_hi = bjt_noise_factor(gm=0.15, beta=200.0, rb=35.0)
        assert f_hi < f_lo

    def test_gm_tradeoff_has_minimum(self):
        # collector shot noise falls with gm, base shot noise rises:
        # the noise factor is non-monotonic in gm
        gms = np.linspace(0.001, 2.0, 400)
        f = np.array([bjt_noise_factor(g, 90.0, 35.0) for g in gms])
        k = int(np.argmin(f))
        assert 0 < k < len(gms) - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bjt_noise_factor(0.0, 90.0, 35.0)
        with pytest.raises(ValueError):
            bjt_noise_factor(0.1, 0.0, 35.0)
        with pytest.raises(ValueError):
            bjt_noise_factor(0.1, 90.0, -1.0)


class TestBJTParameterValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            nominal_params(is_sat=0.0)
        with pytest.raises(ValueError):
            nominal_params(beta_f=0.5)
        with pytest.raises(ValueError):
            nominal_params(vaf=-10.0)
        with pytest.raises(ValueError):
            nominal_params(rb=-1.0)
        with pytest.raises(ValueError):
            nominal_params(ikf=0.0)
