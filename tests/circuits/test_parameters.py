"""Tests for repro.circuits.parameters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.parameters import (
    ParameterSpace,
    ProcessParameter,
    uniform_percent,
)


def small_space():
    return ParameterSpace(
        [
            uniform_percent("a", 100.0, 20.0),
            uniform_percent("b", 2e-12, 20.0),
            ProcessParameter("c", 50.0, 0.1, distribution="gaussian"),
        ]
    )


class TestProcessParameter:
    def test_band_edges(self):
        p = uniform_percent("r", 100.0, 20.0)
        assert p.lower == pytest.approx(80.0)
        assert p.upper == pytest.approx(120.0)

    def test_negative_nominal_band(self):
        p = ProcessParameter("x", -8.0, 0.1)
        assert p.lower == pytest.approx(-8.8)
        assert p.upper == pytest.approx(-7.2)
        assert p.lower < p.upper

    def test_fractional_std_uniform(self):
        p = uniform_percent("r", 10.0, 20.0)
        assert p.fractional_std == pytest.approx(0.2 / np.sqrt(3))

    def test_fractional_std_gaussian(self):
        p = ProcessParameter("r", 10.0, 0.3, distribution="gaussian")
        assert p.fractional_std == pytest.approx(0.1)

    def test_sample_within_band(self):
        rng = np.random.default_rng(0)
        p = uniform_percent("r", 100.0, 20.0)
        draws = p.sample(rng, size=1000)
        assert np.all(draws >= p.lower)
        assert np.all(draws <= p.upper)

    def test_gaussian_sample_truncated(self):
        rng = np.random.default_rng(0)
        p = ProcessParameter("r", 100.0, 0.2, distribution="gaussian")
        draws = p.sample(rng, size=5000)
        assert np.all(draws >= p.lower)
        assert np.all(draws <= p.upper)

    def test_uniform_sample_statistics(self):
        rng = np.random.default_rng(1)
        p = uniform_percent("r", 100.0, 20.0)
        draws = p.sample(rng, size=20000)
        assert np.mean(draws) == pytest.approx(100.0, rel=0.01)
        assert np.std(draws) == pytest.approx(20.0 / np.sqrt(3), rel=0.03)

    def test_clip(self):
        p = uniform_percent("r", 100.0, 20.0)
        assert p.clip(200.0) == 120.0
        assert p.clip(10.0) == 80.0
        assert p.clip(100.0) == 100.0

    def test_zero_nominal_rejected(self):
        with pytest.raises(ValueError):
            ProcessParameter("r", 0.0, 0.2)

    def test_bad_distribution(self):
        with pytest.raises(ValueError, match="distribution"):
            ProcessParameter("r", 1.0, 0.2, distribution="lognormal")

    def test_bad_variation(self):
        with pytest.raises(ValueError):
            ProcessParameter("r", 1.0, 1.5)


class TestParameterSpace:
    def test_basic_protocol(self):
        space = small_space()
        assert len(space) == 3
        assert "a" in space
        assert "z" not in space
        assert space.names() == ["a", "b", "c"]
        assert space.index_of("b") == 1
        assert space["c"].distribution == "gaussian"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ParameterSpace([uniform_percent("a", 1.0), uniform_percent("a", 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([])

    def test_nominal_vector(self):
        assert np.allclose(small_space().nominal_vector(), [100.0, 2e-12, 50.0])

    def test_dict_vector_roundtrip(self):
        space = small_space()
        vec = np.array([90.0, 2.2e-12, 55.0])
        assert np.allclose(space.to_vector(space.to_dict(vec)), vec)

    def test_to_vector_fills_nominals(self):
        space = small_space()
        vec = space.to_vector({"a": 85.0})
        assert vec[0] == 85.0
        assert vec[1] == 2e-12

    def test_to_vector_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown"):
            small_space().to_vector({"zzz": 1.0})

    def test_sample_shape_and_bounds(self):
        space = small_space()
        rng = np.random.default_rng(0)
        draws = space.sample(rng, 500)
        assert draws.shape == (500, 3)
        for j, p in enumerate(space):
            assert np.all(draws[:, j] >= p.lower - 1e-15)
            assert np.all(draws[:, j] <= p.upper + 1e-15)

    def test_perturbed_vector(self):
        space = small_space()
        vec = space.perturbed_vector("a", 0.05)
        assert vec[0] == pytest.approx(105.0)
        assert vec[1] == 2e-12

    def test_normalize_denormalize_roundtrip(self):
        space = small_space()
        rng = np.random.default_rng(3)
        pts = space.sample(rng, 50)
        back = space.denormalize(space.normalize(pts))
        assert np.allclose(back, pts)

    def test_normalize_nominal_is_zero(self):
        space = small_space()
        assert np.allclose(space.normalize(space.nominal_vector()), 0.0)

    def test_subset(self):
        sub = small_space().subset(["c", "a"])
        assert sub.names() == ["c", "a"]
        assert len(sub) == 2

    def test_fractional_std_vector(self):
        space = small_space()
        v = space.fractional_std_vector()
        assert v[0] == pytest.approx(0.2 / np.sqrt(3))
        assert v[2] == pytest.approx(0.1 / 3)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_samples_always_in_band(self, seed, n):
        space = small_space()
        draws = space.sample(np.random.default_rng(seed), n)
        norm = space.normalize(draws)
        assert np.all(np.abs(norm) <= 0.2 + 1e-12)
