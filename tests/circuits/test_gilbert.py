"""Tests for repro.circuits.gilbert (circuit-level Gilbert-cell mixer)."""

import numpy as np
import pytest

from repro.circuits.gilbert import (
    NOMINAL_PROCESS,
    GilbertCellMixer,
    gilbert_parameter_space,
)
from repro.dsp.sources import dbm_to_vpeak, tone
from repro.dsp.spectral import tone_amplitude


class TestNominal:
    def test_specs_plausible(self):
        mixer = GilbertCellMixer()
        s = mixer.specs()
        assert 2.0 < s.gain_db < 15.0  # active mixer conversion gain
        assert 8.0 < s.nf_db < 18.0  # SSB mixer noise figures are high
        assert -10.0 < s.iip3_dbm < 10.0

    def test_bias_current(self):
        mixer = GilbertCellMixer()
        # (3.0 - 0.78) / 1.1k ~ 2 mA
        assert mixer.tail_current == pytest.approx(2.02e-3, rel=0.01)

    def test_if_frequency(self):
        assert GilbertCellMixer().if_frequency == pytest.approx(100e6)


class TestProcessSensitivity:
    def test_load_resistor_raises_gain(self):
        lo = GilbertCellMixer({"r_load": 0.8 * NOMINAL_PROCESS["r_load"]})
        hi = GilbertCellMixer({"r_load": 1.2 * NOMINAL_PROCESS["r_load"]})
        assert hi.conversion_gain_db() > lo.conversion_gain_db() + 2.0

    def test_bias_resistor_lowers_current_and_gain(self):
        starved = GilbertCellMixer({"r_bias": 1.2 * NOMINAL_PROCESS["r_bias"]})
        nominal = GilbertCellMixer()
        assert starved.tail_current < nominal.tail_current
        assert starved.conversion_gain_db() < nominal.conversion_gain_db()

    def test_degeneration_trades_gain_for_linearity(self):
        soft = GilbertCellMixer({"r_degen": 0.8 * NOMINAL_PROCESS["r_degen"]})
        hard = GilbertCellMixer({"r_degen": 1.2 * NOMINAL_PROCESS["r_degen"]})
        assert hard.conversion_gain_db() < soft.conversion_gain_db()
        assert hard.iip3_dbm() > soft.iip3_dbm()

    def test_rb_silent_in_gain_loud_in_nf(self):
        lo = GilbertCellMixer({"rb": 0.8 * NOMINAL_PROCESS["rb"]})
        hi = GilbertCellMixer({"rb": 1.2 * NOMINAL_PROCESS["rb"]})
        assert hi.conversion_gain_db() == pytest.approx(lo.conversion_gain_db())
        assert hi.nf_db() > lo.nf_db() + 0.2

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            GilbertCellMixer({"r_gate": 1.0})


class TestParameterSpace:
    def test_monte_carlo_all_valid(self):
        space = gilbert_parameter_space()
        rng = np.random.default_rng(0)
        for point in space.sample(rng, 100):
            mixer = GilbertCellMixer(space.to_dict(point))
            assert np.isfinite(mixer.specs().as_vector()).all()

    def test_spread(self):
        space = gilbert_parameter_space()
        rng = np.random.default_rng(1)
        specs = np.vstack(
            [
                GilbertCellMixer(space.to_dict(p)).specs().as_vector()
                for p in space.sample(rng, 150)
            ]
        )
        assert 0.3 < specs[:, 0].std() < 3.0  # conversion gain dB
        assert specs[:, 1].std() > 0.1  # NF dB


class TestSignalPath:
    def test_conversion_gain_measured_at_if(self):
        mixer = GilbertCellMixer()
        f = mixer.center_frequency
        amp = dbm_to_vpeak(-40.0)
        wf = tone(f, 256 / f, 16 * f, amplitude=amp)
        out = mixer.process_rf(wf)
        gain = 20 * np.log10(tone_amplitude(out, mixer.if_frequency) / amp)
        assert gain == pytest.approx(mixer.conversion_gain_db(), abs=0.3)

    def test_envelope_poly_matches_specs(self):
        mixer = GilbertCellMixer()
        a1, _, a3 = mixer.envelope_poly()
        assert 20 * np.log10(a1) == pytest.approx(mixer.conversion_gain_db())
        assert a3 < 0
