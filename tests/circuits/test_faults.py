"""Tests for repro.circuits.faults."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.faults import (
    FAULT_LIBRARY,
    FaultyDevice,
    bias_shift_fault,
    dead_stage_fault,
    open_input_fault,
    shorted_output_fault,
)
from repro.dsp.sources import tone


@pytest.fixture
def healthy():
    return BehavioralAmplifier(900e6, 16.0, 2.0, 3.0)


class TestFaultModels:
    def test_open_input_kills_gain(self, healthy):
        fault = open_input_fault(healthy)
        assert fault.specs().gain_db < -20.0

    def test_shorted_output_heavy_loss(self, healthy):
        fault = shorted_output_fault(healthy)
        assert fault.specs().gain_db == pytest.approx(16.0 - 25.0)

    def test_dead_stage_is_lossy_but_linear(self, healthy):
        fault = dead_stage_fault(healthy)
        s = fault.specs()
        assert s.gain_db == pytest.approx(-10.0, abs=0.1)
        assert s.iip3_dbm > healthy.specs().iip3_dbm

    def test_bias_shift_is_subtle(self, healthy):
        fault = bias_shift_fault(healthy)
        s = fault.specs()
        # a gross defect, but within an order of magnitude of a corner
        assert -10.0 < s.gain_db - 16.0 < 0.0
        assert s.iip3_dbm < healthy.specs().iip3_dbm

    def test_library_complete(self, healthy):
        assert set(FAULT_LIBRARY) == {
            "open_input",
            "shorted_output",
            "dead_stage",
            "bias_shift",
        }
        for name, ctor in FAULT_LIBRARY.items():
            fault = ctor(healthy)
            assert fault.name == name


class TestFaultBehaviour:
    def test_envelope_poly_reflects_fault(self, healthy):
        fault = open_input_fault(healthy)
        a1_fault = fault.envelope_poly()[0]
        a1_good = healthy.envelope_poly()[0]
        assert a1_fault < 0.05 * a1_good

    def test_process_rf_attenuates(self, healthy):
        fault = shorted_output_fault(healthy)
        f = healthy.center_frequency
        wf = tone(f, 64 / f, 16 * f, amplitude=1e-3)
        out_fault = fault.process_rf(wf)
        out_good = healthy.process_rf(wf)
        assert out_fault.rms() < 0.1 * out_good.rms()

    def test_process_rf_noise_with_rng(self, healthy):
        fault = open_input_fault(healthy)
        f = healthy.center_frequency
        wf = tone(f, 64 / f, 16 * f, amplitude=0.0)
        noisy = fault.process_rf(wf, np.random.default_rng(0))
        assert noisy.rms() > 0.0

    def test_nf_floor_at_zero(self, healthy):
        fault = FaultyDevice(healthy, "weird", extra_nf_db=-100.0)
        assert fault.specs().nf_db == 0.0
