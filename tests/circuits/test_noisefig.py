"""Tests for repro.circuits.noisefig."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.noisefig import (
    added_output_noise_vrms,
    enr_db_to_ratio,
    factor_to_nf_db,
    friis_cascade_nf_db,
    input_referred_noise_vrms,
    nf_db_to_factor,
    output_noise_vrms,
    y_factor_nf_db,
)


class TestConversions:
    def test_3db_is_factor_2(self):
        assert nf_db_to_factor(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_0db_is_unity(self):
        assert nf_db_to_factor(0.0) == 1.0
        assert factor_to_nf_db(1.0) == 0.0

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            factor_to_nf_db(0.9)

    @given(nf=st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, nf):
        assert factor_to_nf_db(nf_db_to_factor(nf)) == pytest.approx(nf, abs=1e-9)


class TestFriis:
    def test_single_stage(self):
        assert friis_cascade_nf_db([(20.0, 2.0)]) == pytest.approx(2.0)

    def test_high_first_gain_dominates(self):
        # with 30 dB first-stage gain, a terrible second stage barely matters
        total = friis_cascade_nf_db([(30.0, 2.0), (10.0, 15.0)])
        assert total == pytest.approx(2.0, abs=0.2)

    def test_lossy_first_stage_hurts(self):
        # attenuator (loss 6 dB, NF 6 dB) in front of a 2 dB LNA
        total = friis_cascade_nf_db([(-6.0, 6.0), (20.0, 2.0)])
        assert total == pytest.approx(8.0, abs=0.3)

    def test_order_matters(self):
        a = friis_cascade_nf_db([(20.0, 2.0), (10.0, 10.0)])
        b = friis_cascade_nf_db([(10.0, 10.0), (20.0, 2.0)])
        assert a < b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            friis_cascade_nf_db([])


class TestYFactor:
    def test_ideal_roundtrip(self):
        # F = ENR / (Y - 1)  ->  Y = 1 + ENR / F
        for nf in (1.0, 3.0, 7.0):
            enr = 15.0
            y = 1.0 + enr_db_to_ratio(enr) / nf_db_to_factor(nf)
            assert y_factor_nf_db(y, enr) == pytest.approx(nf, abs=1e-9)

    def test_y_below_one_rejected(self):
        with pytest.raises(ValueError):
            y_factor_nf_db(0.9, 15.0)

    def test_huge_y_clamps_to_zero_nf(self):
        # measurement noise can make F come out below 1; clamp, don't crash
        assert y_factor_nf_db(1e9, 15.0) == 0.0


class TestOutputNoise:
    def test_total_exceeds_added(self):
        total = output_noise_vrms(20.0, 3.0, 1e6)
        added = added_output_noise_vrms(20.0, 3.0, 1e6)
        assert total > added > 0.0

    def test_total_and_added_consistent(self):
        # total^2 = added^2 + (amplified source kTB)^2
        g_db, nf_db, bw = 16.0, 2.5, 1e7
        total = output_noise_vrms(g_db, nf_db, bw)
        added = added_output_noise_vrms(g_db, nf_db, bw)
        from repro.dsp.noise import thermal_noise_vrms

        source = thermal_noise_vrms(bw) * 10 ** (g_db / 20.0)
        assert total**2 == pytest.approx(added**2 + source**2, rel=1e-9)

    def test_zero_nf_adds_nothing(self):
        assert added_output_noise_vrms(20.0, 0.0, 1e6) == 0.0

    def test_input_referred(self):
        v = input_referred_noise_vrms(3.0103, 1e6)
        from repro.dsp.noise import thermal_noise_vrms

        # F = 2: the device adds exactly one kTB at its input
        assert v == pytest.approx(thermal_noise_vrms(1e6), rel=1e-3)

    def test_negative_bandwidth(self):
        with pytest.raises(ValueError):
            output_noise_vrms(10.0, 3.0, -1.0)
