"""Tests for repro.circuits.nonlinear."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.nonlinear import (
    PolynomialNonlinearity,
    gain_compression_db,
    iip2_dbm_from_poly,
    iip3_dbm_from_poly,
    p1db_dbm_from_iip3,
    poly_from_specs,
)
from repro.dsp.sources import dbm_to_vpeak
from repro.dsp.waveform import Waveform


class TestPolyFromSpecs:
    def test_a1_from_gain(self):
        a1, _, _ = poly_from_specs(20.0, 10.0)
        assert a1 == pytest.approx(10.0)

    def test_a3_is_compressive(self):
        _, _, a3 = poly_from_specs(16.0, 3.0)
        assert a3 < 0.0

    def test_iip3_roundtrip(self):
        for gain, iip3 in [(10.0, 0.0), (16.0, 3.0), (25.0, -5.0)]:
            a1, _, a3 = poly_from_specs(gain, iip3)
            assert iip3_dbm_from_poly(a1, a3) == pytest.approx(iip3, abs=1e-9)

    def test_iip2_roundtrip(self):
        a1, a2, _ = poly_from_specs(16.0, 3.0, iip2_dbm=25.0)
        assert iip2_dbm_from_poly(a1, a2) == pytest.approx(25.0, abs=1e-9)

    def test_no_iip2_means_zero_a2(self):
        _, a2, _ = poly_from_specs(16.0, 3.0)
        assert a2 == 0.0

    def test_linear_device(self):
        assert iip3_dbm_from_poly(10.0, 0.0) == math.inf
        assert iip2_dbm_from_poly(10.0, 0.0) == math.inf

    @given(
        gain=st.floats(min_value=-10.0, max_value=30.0),
        iip3=st.floats(min_value=-20.0, max_value=20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, gain, iip3):
        a1, _, a3 = poly_from_specs(gain, iip3)
        assert iip3_dbm_from_poly(a1, a3) == pytest.approx(iip3, abs=1e-6)
        assert 20.0 * math.log10(a1) == pytest.approx(gain, abs=1e-9)


class TestCompression:
    def test_p1db_gap(self):
        assert p1db_dbm_from_iip3(3.0) == pytest.approx(3.0 - 9.6357, abs=1e-4)

    def test_small_signal_no_compression(self):
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        assert gain_compression_db(a1, a3, 1e-6) == pytest.approx(0.0, abs=1e-6)

    def test_one_db_at_p1db(self):
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        amp = dbm_to_vpeak(p1db_dbm_from_iip3(3.0))
        # describing-function gain drop at P1dB is close to 1 dB (the
        # classic 9.64 dB relation is derived from this very expansion)
        assert gain_compression_db(a1, a3, amp) == pytest.approx(-1.0, abs=0.1)

    def test_zero_a1_rejected(self):
        with pytest.raises(ValueError):
            gain_compression_db(0.0, -1.0, 0.1)


class TestPolynomialNonlinearity:
    def test_saturation_amplitude(self):
        # y' = a1 + 3 a3 x^2 = 0 at x = sqrt(a1 / (3 |a3|))
        poly = PolynomialNonlinearity(a1=6.0, a3=-2.0)
        assert poly.saturation_amplitude == pytest.approx(1.0)

    def test_linear_device_never_saturates(self):
        assert PolynomialNonlinearity(a1=5.0).saturation_amplitude == math.inf

    def test_output_clipped_beyond_saturation(self):
        poly = PolynomialNonlinearity(a1=6.0, a3=-2.0)
        y_sat = poly(np.array([1.0]))[0]  # 6 - 2 = 4
        y_over = poly(np.array([5.0]))[0]
        assert y_over == pytest.approx(y_sat)

    def test_no_foldback(self):
        poly = PolynomialNonlinearity(a1=6.0, a3=-2.0)
        x = np.linspace(0, 10, 500)
        y = poly(x)
        assert np.all(np.diff(y) >= -1e-12)  # monotone, never folds back

    def test_odd_symmetry_without_a2(self):
        poly = PolynomialNonlinearity(a1=4.0, a3=-0.5)
        x = np.linspace(-2, 2, 101)
        assert np.allclose(poly(x), -poly(-x))

    def test_apply_waveform(self):
        poly = PolynomialNonlinearity(a1=2.0)
        wf = Waveform([1.0, -1.0], 1e3)
        assert np.allclose(poly.apply(wf).samples, [2.0, -2.0])

    def test_gain_db(self):
        assert PolynomialNonlinearity(a1=10.0).gain_db() == pytest.approx(20.0)

    def test_specs_accessors(self):
        a1, a2, a3 = poly_from_specs(16.0, 3.0, 23.0)
        poly = PolynomialNonlinearity(a1, a2, a3)
        assert poly.iip3_dbm() == pytest.approx(3.0, abs=1e-9)
        assert poly.coefficients() == (a1, a2, a3)


class TestDescribingFunction:
    def test_matches_closed_form_below_saturation(self):
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        poly = PolynomialNonlinearity(a1, 0.0, a3)
        amps = np.linspace(0.0, 0.9 * poly.saturation_amplitude, 20)
        assert np.allclose(
            poly.describing_function(amps), a1 + 0.75 * a3 * amps**2, rtol=1e-12
        )

    def test_continuous_at_saturation(self):
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        poly = PolynomialNonlinearity(a1, 0.0, a3)
        sat = poly.saturation_amplitude
        below = poly.describing_function(np.array([sat * 0.999]))[0]
        above = poly.describing_function(np.array([sat * 1.001]))[0]
        # the clipped branch uses 128-point quadrature: ~0.2 % tolerance
        assert above == pytest.approx(below, rel=3e-3)

    def test_monotone_compression(self):
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        poly = PolynomialNonlinearity(a1, 0.0, a3)
        amps = np.linspace(1e-3, 5 * poly.saturation_amplitude, 100)
        g = poly.describing_function(amps)
        assert np.all(np.diff(g) <= 1e-9)
        assert np.all(g > 0.0)

    def test_deep_clipping_limit(self):
        # a hard limiter's fundamental gain falls as 4 y_sat / (pi A)
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        poly = PolynomialNonlinearity(a1, 0.0, a3)
        sat = poly.saturation_amplitude
        y_sat = poly(np.array([sat]))[0]
        big = 100.0 * sat
        g = poly.describing_function(np.array([big]))[0]
        assert g == pytest.approx(4.0 * y_sat / (np.pi * big), rel=0.05)

    def test_scalar_input(self):
        poly = PolynomialNonlinearity(a1=2.0, a3=-0.1)
        g = poly.describing_function(0.0)
        assert np.isscalar(g) or g.shape == ()
        assert float(g) == pytest.approx(2.0)

    def test_linear_device_flat(self):
        poly = PolynomialNonlinearity(a1=3.0)
        amps = np.linspace(0, 10, 11)
        assert np.allclose(poly.describing_function(amps), 3.0)

    def test_gain_table_interpolation_accuracy(self):
        a1, _, a3 = poly_from_specs(16.0, 3.0)
        poly = PolynomialNonlinearity(a1, 0.0, a3)
        grid, table = poly.describing_gain_table(0.5, n_points=256)
        test_amps = np.linspace(0.0, 0.5, 333)
        exact = poly.describing_function(test_amps)
        interp = np.interp(test_amps, grid, table)
        assert np.allclose(interp, exact, rtol=0.002, atol=1e-6)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            PolynomialNonlinearity(1.0).describing_function(np.array([-1.0]))
