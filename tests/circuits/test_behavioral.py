"""Tests for repro.circuits.behavioral."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.sources import dbm_to_vpeak, tone
from repro.dsp.spectral import tone_amplitude


class TestSpecsRoundtrip:
    def test_specs_returned(self, behavioral_amp):
        s = behavioral_amp.specs()
        assert s.gain_db == 16.0
        assert s.nf_db == 2.0
        assert s.iip3_dbm == 3.0

    def test_envelope_poly_consistent_with_specs(self, behavioral_amp):
        a1, a2, a3 = behavioral_amp.envelope_poly()
        assert 20 * np.log10(a1) == pytest.approx(16.0)
        assert a3 < 0

    def test_negative_nf_rejected(self):
        with pytest.raises(ValueError):
            BehavioralAmplifier(1e9, 10.0, -1.0, 0.0)


class TestProcessRF:
    def test_small_signal_gain(self, behavioral_amp):
        f = behavioral_amp.center_frequency
        amp_in = dbm_to_vpeak(-40.0)
        wf = tone(f, 64 / f, 16 * f, amplitude=amp_in)
        out = behavioral_amp.process_rf(wf)
        gain = 20 * np.log10(tone_amplitude(out, f) / amp_in)
        assert gain == pytest.approx(16.0, abs=0.05)

    def test_compression_at_high_drive(self, behavioral_amp):
        f = behavioral_amp.center_frequency
        amp_in = dbm_to_vpeak(-5.0)  # near P1dB
        wf = tone(f, 64 / f, 16 * f, amplitude=amp_in)
        out = behavioral_amp.process_rf(wf)
        gain = 20 * np.log10(tone_amplitude(out, f) / amp_in)
        assert gain < 15.5  # visibly compressed

    def test_noise_only_with_rng(self, behavioral_amp):
        f = behavioral_amp.center_frequency
        wf = tone(f, 64 / f, 16 * f, amplitude=1e-4)
        clean = behavioral_amp.process_rf(wf)
        noisy = behavioral_amp.process_rf(wf, np.random.default_rng(0))
        assert np.array_equal(
            clean.samples, behavioral_amp.process_rf(wf).samples
        )
        assert not np.array_equal(clean.samples, noisy.samples)

    def test_noise_level_tracks_nf(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        quiet = BehavioralAmplifier(1e9, 16.0, 1.0, 3.0, noise_bandwidth=1e7)
        loud = BehavioralAmplifier(1e9, 16.0, 10.0, 3.0, noise_bandwidth=1e7)
        silence = tone(1e9, 64 / 1e9, 16e9, amplitude=0.0)
        n_quiet = quiet.process_rf(silence, rng1).rms()
        n_loud = loud.process_rf(silence, rng2).rms()
        assert n_loud > 3.0 * n_quiet

    def test_envelope_bandwidth_filters_modulation(self):
        # a device with a 2 kHz modulation bandwidth passes the carrier
        # but strips fast AM sidebands
        import numpy as np

        fc, fs = 100e3, 1e6
        amp = BehavioralAmplifier(fc, 20.0, 3.0, 30.0, envelope_bandwidth=2e3)
        t = np.arange(int(20e-3 * fs)) / fs
        slow_am = (1 + 0.5 * np.cos(2 * np.pi * 500 * t)) * np.sin(2 * np.pi * fc * t)
        fast_am = (1 + 0.5 * np.cos(2 * np.pi * 20e3 * t)) * np.sin(2 * np.pi * fc * t)
        from repro.dsp.waveform import Waveform
        from repro.dsp.spectral import amplitude_spectrum

        out_slow = amp.process_rf(Waveform(1e-3 * slow_am, fs))
        out_fast = amp.process_rf(Waveform(1e-3 * fast_am, fs))
        spec_slow = amplitude_spectrum(out_slow, "flattop")
        spec_fast = amplitude_spectrum(out_fast, "flattop")
        # carrier passes equally in both cases
        assert spec_slow.amplitude_at(fc) == pytest.approx(
            spec_fast.amplitude_at(fc), rel=0.02
        )
        # the slow sideband survives far better than the fast one
        slow_side = spec_slow.amplitude_at(fc + 500) / spec_slow.amplitude_at(fc)
        fast_side = spec_fast.amplitude_at(fc + 20e3) / spec_fast.amplitude_at(fc)
        assert slow_side > 5.0 * fast_side


class TestWithSpecs:
    def test_replaces_one_spec(self, behavioral_amp):
        tweaked = behavioral_amp.with_specs(gain_db=18.0)
        assert tweaked.specs().gain_db == 18.0
        assert tweaked.specs().nf_db == 2.0
        assert tweaked.specs().iip3_dbm == 3.0

    def test_original_untouched(self, behavioral_amp):
        behavioral_amp.with_specs(gain_db=0.0)
        assert behavioral_amp.specs().gain_db == 16.0

    def test_output_noise_vrms_interface(self, behavioral_amp):
        v = behavioral_amp.output_noise_vrms(1e6)
        assert v > 0
