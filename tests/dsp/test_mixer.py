"""Tests for repro.dsp.mixer (behavioral mixer with harmonic products)."""

import numpy as np
import pytest

from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.sources import tone
from repro.dsp.spectral import amplitude_spectrum


class TestMixerHarmonics:
    def test_default_table_has_fundamental(self):
        h = MixerHarmonics()
        assert h.coeffs[(1, 1)] == 1.0

    def test_ideal_is_single_product(self):
        assert set(MixerHarmonics.ideal().coeffs) == {(1, 1)}

    def test_rejects_out_of_range_orders(self):
        with pytest.raises(ValueError, match="1..3"):
            MixerHarmonics({(1, 1): 1.0, (4, 1): 0.1})

    def test_rejects_missing_fundamental(self):
        with pytest.raises(ValueError, match="fundamental"):
            MixerHarmonics({(2, 1): 0.1})

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            MixerHarmonics({(1, 1): np.nan})


class TestIdealMixer:
    def test_sum_and_difference_frequencies(self):
        fs = 1e6
        rf = tone(100e3, 4e-3, fs)
        lo = tone(30e3, 4e-3, fs)
        out = Mixer(conversion_gain=1.0, harmonics=MixerHarmonics.ideal()).mix(rf, lo)
        spec = amplitude_spectrum(out, window_kind="flattop")
        # sin a sin b = (cos(a-b) - cos(a+b)) / 2 -> amplitude 0.5 each
        assert spec.amplitude_at(70e3) == pytest.approx(0.5, rel=0.02)
        assert spec.amplitude_at(130e3) == pytest.approx(0.5, rel=0.02)

    def test_conversion_gain_scales_output(self):
        fs = 1e6
        rf = tone(100e3, 2e-3, fs)
        lo = tone(30e3, 2e-3, fs)
        strong = Mixer(1.0, MixerHarmonics.ideal()).mix(rf, lo)
        weak = Mixer(0.5, MixerHarmonics.ideal()).mix(rf, lo)
        assert weak.rms() == pytest.approx(0.5 * strong.rms(), rel=1e-9)


class TestHarmonicProducts:
    def test_second_harmonic_products_present(self):
        fs = 4e6
        rf = tone(100e3, 4e-3, fs)
        lo = tone(30e3, 4e-3, fs)
        mixer = Mixer(1.0, MixerHarmonics({(1, 1): 1.0, (2, 1): 0.2}))
        spec = amplitude_spectrum(mixer.mix(rf, lo), window_kind="flattop")
        # rf^2 * lo contains 2*100k +/- 30k products
        assert spec.amplitude_at(230e3) > 0.01
        assert spec.amplitude_at(170e3) > 0.01

    def test_lo_third_harmonic_products(self):
        fs = 4e6
        rf = tone(100e3, 4e-3, fs)
        lo = tone(30e3, 4e-3, fs)
        mixer = Mixer(1.0, MixerHarmonics({(1, 1): 1.0, (1, 3): 0.1}))
        spec = amplitude_spectrum(mixer.mix(rf, lo), window_kind="flattop")
        # sin^3 contains the 3rd harmonic: products at 100k +/- 90k
        assert spec.amplitude_at(190e3) > 0.002
        assert spec.amplitude_at(10e3) > 0.002

    def test_paper_model_contains_all_products(self):
        table = MixerHarmonics.paper_model()
        for key in [(1, 1), (2, 1), (1, 2), (3, 1), (1, 3)]:
            assert key in table.coeffs


class TestMixerValidation:
    def test_rate_mismatch(self):
        rf = tone(1e3, 1e-3, 1e6)
        lo = tone(1e3, 1e-3, 2e6)
        with pytest.raises(ValueError, match="rate"):
            Mixer().mix(rf, lo)

    def test_length_mismatch(self):
        rf = tone(1e3, 1e-3, 1e6)
        lo = tone(1e3, 2e-3, 1e6)
        with pytest.raises(ValueError, match="length"):
            Mixer().mix(rf, lo)

    def test_nonpositive_gain(self):
        with pytest.raises(ValueError, match="positive"):
            Mixer(conversion_gain=0.0)
