"""Tests for repro.dsp.passband (brute-force validation engine)."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.passband import bandpass_mask, lowpass_mask, passband_capture
from repro.dsp.sources import tone
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.signature_path import SignaturePathConfig


class TestBandpassMask:
    def test_in_band_tone_preserved(self):
        wf = tone(100e3, 2e-3, 1e6)
        out = bandpass_mask(wf, 100e3, 20e3)
        assert out.rms() == pytest.approx(wf.rms(), rel=1e-6)

    def test_out_of_band_tone_removed(self):
        wf = tone(100e3, 2e-3, 1e6)
        out = bandpass_mask(wf, 300e3, 20e3)
        assert out.rms() < 1e-9

    def test_mixture_separated(self):
        a = tone(50e3, 2e-3, 1e6)
        b = tone(200e3, 2e-3, 1e6)
        out = bandpass_mask(a + b, 200e3, 20e3)
        assert out.rms() == pytest.approx(b.rms(), rel=1e-6)

    def test_lowpass_mask_keeps_dc(self):
        wf = Waveform(np.full(1000, 0.5), 1e6)
        out = lowpass_mask(wf, 10e3)
        assert np.allclose(out.samples, 0.5, atol=1e-9)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bandpass_mask(tone(1e3, 1e-3, 1e6), 1e3, 0.0)


class TestPassbandCapture:
    def _config(self, **overrides):
        base = dict(
            carrier_freq=2e6,
            carrier_power_dbm=10.0,
            lpf_cutoff_hz=50e3,
            digitizer_rate=100e3,
            digitizer_noise_vrms=0.0,
            digitizer_bits=None,
            capture_seconds=1e-3,
            envelope_oversample=4,
            include_device_noise=False,
        )
        base.update(overrides)
        return SignaturePathConfig(**base)

    def test_output_rate_and_length(self):
        cfg = self._config()
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0)
        stim = PiecewiseLinearStimulus([0.0, 0.2, -0.2, 0.1], 1e-3, 0.4)
        out = passband_capture(dev, stim, cfg, passband_rate=64e6)
        assert out.sample_rate == 100e3
        assert len(out) == 100

    def test_rate_too_low_rejected(self):
        cfg = self._config()
        dev = BehavioralAmplifier(2e6, 16.0, 2.0, 3.0)
        stim = PiecewiseLinearStimulus([0.0, 0.1], 1e-3, 0.4)
        with pytest.raises(ValueError, match="8x"):
            passband_capture(dev, stim, cfg, passband_rate=4e6)

    def test_gain_scales_output(self):
        cfg = self._config()
        stim = PiecewiseLinearStimulus([0.05, 0.06, 0.04, 0.05], 1e-3, 0.4)
        lo = BehavioralAmplifier(2e6, 10.0, 2.0, 20.0)
        hi = BehavioralAmplifier(2e6, 16.0, 2.0, 20.0)
        out_lo = passband_capture(lo, stim, cfg, passband_rate=64e6)
        out_hi = passband_capture(hi, stim, cfg, passband_rate=64e6)
        # 6 dB more gain -> 2x the signature (drive small enough to stay linear)
        assert out_hi.rms() / out_lo.rms() == pytest.approx(2.0, rel=0.02)
