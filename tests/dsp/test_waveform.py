"""Tests for repro.dsp.waveform."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform


class TestWaveformConstruction:
    def test_basic_attributes(self):
        wf = Waveform([0.0, 1.0, 2.0, 3.0], sample_rate=4.0)
        assert len(wf) == 4
        assert wf.n == 4
        assert wf.dt == 0.25
        assert wf.duration == 1.0

    def test_times_start_at_t0(self):
        wf = Waveform([1.0, 2.0], sample_rate=2.0, t0=10.0)
        assert np.allclose(wf.times(), [10.0, 10.5])

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError, match="1-D"):
            Waveform(np.zeros((2, 2)), 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="positive"):
            Waveform([1.0], 0.0)

    def test_copy_is_independent(self):
        wf = Waveform([1.0, 2.0], 1.0)
        c = wf.copy()
        c.samples[0] = 99.0
        assert wf.samples[0] == 1.0


class TestWaveformArithmetic:
    def test_add_waveforms(self):
        a = Waveform([1.0, 2.0], 1.0)
        b = Waveform([10.0, 20.0], 1.0)
        assert np.allclose((a + b).samples, [11.0, 22.0])

    def test_add_scalar(self):
        a = Waveform([1.0, 2.0], 1.0)
        assert np.allclose((a + 1.0).samples, [2.0, 3.0])
        assert np.allclose((1.0 + a).samples, [2.0, 3.0])

    def test_subtract(self):
        a = Waveform([3.0, 4.0], 1.0)
        b = Waveform([1.0, 1.0], 1.0)
        assert np.allclose((a - b).samples, [2.0, 3.0])
        assert np.allclose((5.0 - a).samples, [2.0, 1.0])

    def test_multiply_is_elementwise(self):
        a = Waveform([2.0, 3.0], 1.0)
        b = Waveform([4.0, 5.0], 1.0)
        assert np.allclose((a * b).samples, [8.0, 15.0])

    def test_divide_by_scalar(self):
        a = Waveform([2.0, 4.0], 1.0)
        assert np.allclose((a / 2.0).samples, [1.0, 2.0])

    def test_negate(self):
        a = Waveform([1.0, -2.0], 1.0)
        assert np.allclose((-a).samples, [-1.0, 2.0])

    def test_rate_mismatch_raises(self):
        a = Waveform([1.0], 1.0)
        b = Waveform([1.0], 2.0)
        with pytest.raises(ValueError, match="sample-rate mismatch"):
            a + b

    def test_length_mismatch_raises(self):
        a = Waveform([1.0], 1.0)
        b = Waveform([1.0, 2.0], 1.0)
        with pytest.raises(ValueError, match="length mismatch"):
            a * b

    def test_map_applies_function(self):
        a = Waveform([1.0, 2.0], 1.0)
        out = a.map(lambda x: x**2)
        assert np.allclose(out.samples, [1.0, 4.0])


class TestWaveformMeasurements:
    def test_rms_of_constant(self):
        assert Waveform([3.0] * 10, 1.0).rms() == pytest.approx(3.0)

    def test_rms_of_sine(self):
        t = np.arange(1000) / 1000.0
        wf = Waveform(np.sin(2 * np.pi * 10 * t), 1000.0)
        assert wf.rms() == pytest.approx(1 / math.sqrt(2), rel=1e-3)

    def test_peak(self):
        assert Waveform([1.0, -5.0, 2.0], 1.0).peak() == 5.0

    def test_power_dbm_of_1v_sine(self):
        # 1 V peak into 50 ohm: 10 mW = +10 dBm
        t = np.arange(1000) / 1e6
        wf = Waveform(np.sin(2 * np.pi * 10e3 * t), 1e6)
        assert wf.mean_power_dbm() == pytest.approx(10.0, abs=0.05)

    def test_power_of_silence_is_minus_inf(self):
        assert Waveform([0.0, 0.0], 1.0).mean_power_dbm() == -math.inf

    def test_energy(self):
        wf = Waveform([1.0, 1.0], sample_rate=2.0)
        assert wf.energy() == pytest.approx(1.0)  # 2 * 1^2 * 0.5


class TestWaveformStructure:
    def test_slice_time(self):
        wf = Waveform(np.arange(10.0), 10.0)
        sl = wf.slice_time(0.2, 0.5)
        assert np.allclose(sl.samples, [2.0, 3.0, 4.0])
        assert sl.t0 == pytest.approx(0.2)

    def test_slice_time_empty_raises(self):
        wf = Waveform(np.arange(10.0), 10.0)
        with pytest.raises(ValueError, match="no samples"):
            wf.slice_time(5.0, 6.0)

    def test_repeat(self):
        wf = Waveform([1.0, 2.0], 1.0)
        assert np.allclose(wf.repeat(3).samples, [1, 2, 1, 2, 1, 2])

    def test_repeat_invalid(self):
        with pytest.raises(ValueError):
            Waveform([1.0], 1.0).repeat(0)

    def test_resample_preserves_duration(self):
        wf = Waveform(np.sin(np.arange(100)), 100.0)
        up = wf.resample(200.0)
        assert up.duration == pytest.approx(wf.duration, rel=0.02)
        assert up.sample_rate == 200.0

    def test_resample_identity(self):
        wf = Waveform([1.0, 2.0, 3.0], 10.0)
        same = wf.resample(10.0)
        assert np.allclose(same.samples, wf.samples)

    def test_resample_linear_signal_exact(self):
        # a linear ramp survives linear-interpolation resampling exactly
        # (instants past the original record clamp to the last sample)
        wf = Waveform(np.linspace(0.0, 1.0, 101), 100.0)
        up = wf.resample(400.0)
        t = up.times()
        inside = t <= 1.0
        assert np.allclose(up.samples[inside], t[inside], atol=1e-9)

    def test_pad_to(self):
        wf = Waveform([1.0, 2.0], 1.0)
        padded = wf.pad_to(5)
        assert len(padded) == 5
        assert np.allclose(padded.samples, [1, 2, 0, 0, 0])

    def test_pad_to_shorter_is_noop(self):
        wf = Waveform([1.0, 2.0, 3.0], 1.0)
        assert len(wf.pad_to(2)) == 3


class TestPWLStimulus:
    def test_breakpoint_times_span_duration(self):
        stim = PiecewiseLinearStimulus([0.0, 1.0, 0.0], duration=2.0)
        assert np.allclose(stim.breakpoint_times(), [0.0, 1.0, 2.0])

    def test_to_waveform_interpolates(self):
        stim = PiecewiseLinearStimulus([0.0, 1.0], duration=1.0)
        wf = stim.to_waveform(4.0)
        assert np.allclose(wf.samples, [0.0, 0.25, 0.5, 0.75])

    def test_levels_clipped_to_limit(self):
        stim = PiecewiseLinearStimulus([-5.0, 5.0], duration=1.0, v_limit=1.0)
        assert stim.levels.min() == -1.0
        assert stim.levels.max() == 1.0

    def test_gene_roundtrip(self):
        levels = np.array([0.1, -0.2, 0.3, 0.0])
        stim = PiecewiseLinearStimulus(levels, duration=1.0)
        back = PiecewiseLinearStimulus.from_gene(stim.to_gene(), 1.0)
        assert np.allclose(back.levels, levels)

    def test_needs_two_breakpoints(self):
        with pytest.raises(ValueError, match="two"):
            PiecewiseLinearStimulus([1.0], duration=1.0)

    def test_nonfinite_levels_rejected(self):
        # np.clip passes NaN through, so the constructor must catch it
        with pytest.raises(ValueError, match="finite"):
            PiecewiseLinearStimulus([0.0, np.nan, 0.5], duration=1.0)
        with pytest.raises(ValueError, match="finite"):
            PiecewiseLinearStimulus([0.0, np.inf], duration=1.0)
        with pytest.raises(ValueError, match="finite"):
            PiecewiseLinearStimulus.from_gene([0.0, -np.inf], duration=1.0)

    def test_invalid_duration_and_limit_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            PiecewiseLinearStimulus([0.0, 1.0], duration=0.0)
        with pytest.raises(ValueError, match="v_limit"):
            PiecewiseLinearStimulus([0.0, 1.0], duration=1.0, v_limit=-1.0)

    def test_perturbed_respects_limit(self):
        rng = np.random.default_rng(0)
        stim = PiecewiseLinearStimulus([0.9, -0.9], duration=1.0, v_limit=1.0)
        for _ in range(20):
            p = stim.perturbed(rng, scale=0.5)
            assert np.all(np.abs(p.levels) <= 1.0)

    @given(
        levels=st.lists(
            st.floats(min_value=-10, max_value=10), min_size=2, max_size=32
        ),
        v_limit=st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_levels_always_within_limit(self, levels, v_limit):
        stim = PiecewiseLinearStimulus(levels, duration=1.0, v_limit=v_limit)
        assert np.all(np.abs(stim.levels) <= v_limit + 1e-12)

    @given(n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_waveform_peak_bounded_by_levels(self, n):
        rng = np.random.default_rng(n)
        stim = PiecewiseLinearStimulus(
            rng.uniform(-1, 1, n), duration=1e-3, v_limit=1.0
        )
        wf = stim.to_waveform(1e6)
        # linear interpolation never overshoots the breakpoints
        assert wf.peak() <= np.abs(stim.levels).max() + 1e-12
