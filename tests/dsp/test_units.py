"""Tests for the designated dB <-> linear conversion helpers."""

import math

import numpy as np
import pytest

from repro.dsp.units import db, db20, dbm_to_watts, undb, undb20, watts_to_dbm


class TestPowerRatio:
    def test_known_values(self):
        assert db(10.0) == pytest.approx(10.0)
        assert db(2.0) == pytest.approx(3.0103, abs=1e-4)
        assert undb(30.0) == pytest.approx(1000.0)

    def test_roundtrip(self):
        for x in (0.01, 1.0, 7.3, 1e6):
            assert undb(db(x)) == pytest.approx(x, rel=1e-12)

    def test_array_in_array_out(self):
        ratios = np.array([1.0, 10.0, 100.0])
        out = db(ratios)
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [0.0, 10.0, 20.0])
        np.testing.assert_allclose(undb(out), ratios)


class TestAmplitudeRatio:
    def test_factor_20(self):
        assert db20(10.0) == pytest.approx(20.0)
        assert undb20(6.0) == pytest.approx(1.9953, abs=1e-4)

    def test_roundtrip(self):
        for x in (0.5, 1.0, 31.6):
            assert undb20(db20(x)) == pytest.approx(x, rel=1e-12)

    def test_amplitude_vs_power_consistency(self):
        # equal-impedance identity: 20 log10(v) == 10 log10(v^2)
        v = 3.7
        assert db20(v) == pytest.approx(db(v**2))


class TestAbsolutePower:
    def test_one_milliwatt_is_zero_dbm(self):
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_one_watt_is_thirty_dbm(self):
        assert watts_to_dbm(1.0) == pytest.approx(30.0)

    def test_nonpositive_power_maps_to_minus_inf(self):
        assert watts_to_dbm(0.0) == -math.inf
        assert watts_to_dbm(-1.0) == -math.inf

    def test_roundtrip(self):
        for p in (-30.0, 0.0, 13.0):
            assert watts_to_dbm(dbm_to_watts(p)) == pytest.approx(p)

    def test_array_support(self):
        watts = np.array([1e-3, 1.0])
        np.testing.assert_allclose(watts_to_dbm(watts), [0.0, 30.0])


class TestAgainstLegacyCallSites:
    """The refactored call sites must match the formulas they replaced."""

    def test_vpeak_to_dbm_unchanged(self):
        from repro.dsp.sources import dbm_to_vpeak, vpeak_to_dbm

        for v in (0.01, 0.316, 1.0):
            expected = 10.0 * math.log10(v**2 / 100.0) + 30.0
            assert vpeak_to_dbm(v) == pytest.approx(expected, rel=1e-12)
            assert dbm_to_vpeak(vpeak_to_dbm(v)) == pytest.approx(v, rel=1e-12)

    def test_log_scale_signature_unchanged(self):
        from repro.dsp.sources import tone
        from repro.dsp.spectral import amplitude_spectrum, fft_magnitude_signature

        wf = tone(1e3, 1e-2, 1e5, amplitude=0.5)
        sig = fft_magnitude_signature(wf, n_bins=16, log_scale=True)
        mags = amplitude_spectrum(wf).amplitudes[:16]
        np.testing.assert_allclose(sig, 20.0 * np.log10(mags + 1e-12))
