"""Tests for repro.dsp.noise."""

import numpy as np
import pytest

from repro.dsp.noise import (
    add_awgn,
    quantize,
    sample_jitter,
    thermal_noise_power_watts,
    thermal_noise_vrms,
)
from repro.dsp.sources import tone
from repro.dsp.waveform import Waveform


class TestThermalNoise:
    def test_ktb_at_1hz(self):
        # kT at 290 K is about 4.00e-21 W/Hz (-174 dBm/Hz)
        p = thermal_noise_power_watts(1.0)
        assert p == pytest.approx(4.0e-21, rel=0.01)

    def test_minus_174_dbm_per_hz(self):
        p = thermal_noise_power_watts(1.0)
        assert 10 * np.log10(p) + 30 == pytest.approx(-174.0, abs=0.05)

    def test_vrms_scaling(self):
        v1 = thermal_noise_vrms(1e6)
        v4 = thermal_noise_vrms(4e6)
        assert v4 == pytest.approx(2.0 * v1, rel=1e-9)

    def test_negative_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_power_watts(-1.0)


class TestAWGN:
    def test_noise_level(self):
        rng = np.random.default_rng(0)
        wf = Waveform(np.zeros(100_000), 1e6)
        noisy = add_awgn(wf, 0.01, rng)
        assert noisy.rms() == pytest.approx(0.01, rel=0.02)

    def test_zero_sigma_is_copy(self):
        wf = Waveform([1.0, 2.0], 1e3)
        out = add_awgn(wf, 0.0)
        assert np.array_equal(out.samples, wf.samples)

    def test_negative_sigma(self):
        with pytest.raises(ValueError):
            add_awgn(Waveform([1.0], 1e3), -0.1)


class TestQuantize:
    def test_step_size(self):
        wf = Waveform(np.linspace(-1, 1, 1001), 1e3)
        q = quantize(wf, bits=8, full_scale=1.0)
        levels = np.unique(q.samples)
        steps = np.diff(levels)
        assert np.allclose(steps, 2.0 / 256, atol=1e-12)

    def test_clipping(self):
        wf = Waveform([2.0, -2.0], 1e3)
        q = quantize(wf, bits=8, full_scale=1.0)
        assert q.samples.max() <= 1.0
        assert q.samples.min() >= -1.0

    def test_quantization_error_bounded(self):
        rng = np.random.default_rng(1)
        wf = Waveform(rng.uniform(-0.9, 0.9, 1000), 1e3)
        q = quantize(wf, bits=12, full_scale=1.0)
        lsb = 2.0 / 4096
        assert np.max(np.abs(q.samples - wf.samples)) <= lsb / 2 + 1e-12

    def test_high_resolution_nearly_transparent(self):
        wf = tone(1e3, 1e-3, 1e6, amplitude=0.5)
        q = quantize(wf, bits=16, full_scale=1.0)
        assert np.max(np.abs(q.samples - wf.samples)) < 2e-5

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize(Waveform([0.0], 1e3), bits=0, full_scale=1.0)


class TestJitter:
    def test_zero_jitter_is_copy(self):
        wf = tone(1e3, 1e-3, 1e6)
        out = sample_jitter(wf, 0.0)
        assert np.array_equal(out.samples, wf.samples)

    def test_jitter_adds_error_proportional_to_slope(self):
        rng = np.random.default_rng(0)
        # fast tone: jitter error ~ 2 pi f A t_j
        wf = tone(100e3, 1e-3, 10e6)
        out = sample_jitter(wf, 1e-9, rng)
        err = np.std(out.samples - wf.samples)
        expected = 2 * np.pi * 100e3 * 1e-9 / np.sqrt(2)
        assert err == pytest.approx(expected, rel=0.2)

    def test_dc_immune_to_jitter(self):
        rng = np.random.default_rng(0)
        wf = Waveform(np.full(1000, 0.7), 1e6)
        out = sample_jitter(wf, 1e-6, rng)
        assert np.allclose(out.samples, 0.7)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            sample_jitter(Waveform([0.0], 1e3), -1e-9)
