"""Tests for repro.dsp.spectral."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.sources import tone, white_noise
from repro.dsp.spectral import (
    Spectrum,
    amplitude_spectrum,
    fft_magnitude_signature,
    tone_amplitude,
    tone_power_dbm,
    window,
)
from repro.dsp.waveform import Waveform


class TestWindows:
    @pytest.mark.parametrize("kind", ["rect", "hann", "hamming", "blackman", "flattop"])
    def test_length(self, kind):
        assert len(window(kind, 64)) == 64

    def test_rect_is_ones(self):
        assert np.all(window("rect", 16) == 1.0)

    def test_hann_starts_at_zero(self):
        assert window("hann", 64)[0] == pytest.approx(0.0, abs=1e-12)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown window"):
            window("kaiser", 10)

    def test_length_one(self):
        assert np.all(window("hann", 1) == 1.0)


class TestAmplitudeSpectrum:
    def test_coherent_tone_amplitude_exact(self):
        # 1 kHz with an exact integer number of cycles in the record
        fs, n = 100e3, 1000
        t = np.arange(n) / fs
        wf = Waveform(3.0 * np.sin(2 * np.pi * 1e3 * t), fs)
        spec = amplitude_spectrum(wf)
        assert spec.amplitude_at(1e3) == pytest.approx(3.0, rel=1e-9)

    def test_dc_amplitude(self):
        wf = Waveform(np.full(100, 2.0), 1e3)
        spec = amplitude_spectrum(wf)
        assert spec.amplitudes[0] == pytest.approx(2.0)

    def test_flattop_recovers_incoherent_tone(self):
        # tone frequency deliberately between bins
        fs, n = 100e3, 1000
        t = np.arange(n) / fs
        wf = Waveform(np.sin(2 * np.pi * 1050.0 * t), fs)
        rect = amplitude_spectrum(wf, "rect").amplitude_at(1050.0)
        flat = amplitude_spectrum(wf, "flattop").amplitude_at(1050.0)
        assert flat == pytest.approx(1.0, rel=0.01)
        assert rect < flat  # scalloping loss with the rectangular window

    def test_resolution(self):
        wf = Waveform(np.zeros(200), 1e3)
        assert amplitude_spectrum(wf).resolution_hz == pytest.approx(5.0)

    def test_too_short(self):
        with pytest.raises(ValueError):
            amplitude_spectrum(Waveform([1.0], 1e3))

    def test_power_at(self):
        wf = tone(1e3, 10e-3, 100e3, power_dbm=7.0)
        spec = amplitude_spectrum(wf, "flattop")
        assert spec.power_dbm_at(1e3) == pytest.approx(7.0, abs=0.05)

    def test_noise_floor_estimate(self):
        rng = np.random.default_rng(0)
        wf = white_noise(10e-3, 100e3, rms=0.1, rng=rng)
        spec = amplitude_spectrum(wf)
        assert 0.0 < spec.noise_floor() < 0.1


class TestSpectrumContainer:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Spectrum(np.arange(3.0), np.arange(4.0), 1.0)

    def test_bin_of(self):
        spec = Spectrum(np.array([0.0, 10.0, 20.0]), np.zeros(3), 10.0)
        assert spec.bin_of(12.0) == 1

    def test_noise_floor_empty_after_exclusion(self):
        spec = Spectrum(np.arange(3.0), np.ones(3), 1.0)
        with pytest.raises(ValueError):
            spec.noise_floor(exclude_bins=3)


class TestSignature:
    def test_signature_length(self):
        wf = tone(1e3, 10e-3, 20e3)
        sig = fft_magnitude_signature(wf)
        assert len(sig) == len(wf) // 2 + 1

    def test_n_bins_truncation(self):
        wf = tone(1e3, 10e-3, 20e3)
        assert len(fft_magnitude_signature(wf, n_bins=16)) == 16

    def test_log_scale(self):
        wf = tone(1e3, 10e-3, 20e3)
        lin = fft_magnitude_signature(wf)
        log = fft_magnitude_signature(wf, log_scale=True)
        k = np.argmax(lin)
        assert log[k] == pytest.approx(20 * np.log10(lin[k] + 1e-12), abs=1e-6)

    def test_invalid_bins(self):
        wf = tone(1e3, 1e-3, 20e3)
        with pytest.raises(ValueError):
            fft_magnitude_signature(wf, n_bins=0)

    def test_signature_is_phase_invariant_for_shifted_tone(self):
        # the core property the paper relies on (Section 2.1)
        fs, n = 20e3, 400
        t = np.arange(n) / fs
        a = Waveform(np.sin(2 * np.pi * 1e3 * t), fs)
        b = Waveform(np.sin(2 * np.pi * 1e3 * t + 1.234), fs)
        sa = fft_magnitude_signature(a)
        sb = fft_magnitude_signature(b)
        assert np.allclose(sa, sb, atol=0.02)

    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_signature_scales_linearly(self, scale):
        fs, n = 20e3, 200
        rng = np.random.default_rng(1)
        samples = rng.normal(size=n)
        s1 = fft_magnitude_signature(Waveform(samples, fs))
        s2 = fft_magnitude_signature(Waveform(scale * samples, fs))
        assert np.allclose(s2, scale * s1, rtol=1e-9, atol=1e-12)


class TestToneHelpers:
    def test_tone_amplitude(self):
        wf = tone(2e3, 10e-3, 100e3, amplitude=0.7)
        assert tone_amplitude(wf, 2e3) == pytest.approx(0.7, rel=0.01)

    def test_tone_power(self):
        wf = tone(2e3, 10e-3, 100e3, power_dbm=-13.0)
        assert tone_power_dbm(wf, 2e3) == pytest.approx(-13.0, abs=0.05)
