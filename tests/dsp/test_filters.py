"""Tests for repro.dsp.filters (from-scratch Butterworth and FIR design)."""

import numpy as np
import pytest

from repro.dsp.filters import (
    ButterworthLowpass,
    FIRLowpass,
    butterworth_poles,
    butterworth_sos,
    sosfilt,
)
from repro.dsp.sources import tone
from repro.dsp.waveform import Waveform


class TestButterworthPoles:
    @pytest.mark.parametrize("order", [1, 2, 3, 5, 8])
    def test_all_poles_in_left_half_plane(self, order):
        poles = butterworth_poles(order)
        assert len(poles) == order
        assert np.all(poles.real < 1e-12)

    @pytest.mark.parametrize("order", [1, 2, 3, 5, 8])
    def test_poles_on_unit_circle(self, order):
        assert np.allclose(np.abs(butterworth_poles(order)), 1.0)

    def test_conjugate_symmetry(self):
        poles = butterworth_poles(4)
        for p in poles:
            assert np.any(np.isclose(poles, np.conj(p)))

    def test_odd_order_has_real_pole(self):
        poles = butterworth_poles(5)
        assert np.any(np.abs(poles.imag) < 1e-12)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            butterworth_poles(0)


class TestButterworthSOS:
    def test_dc_gain_unity(self):
        lpf = ButterworthLowpass(5, 1e3, 100e3)
        h0 = lpf.frequency_response(np.array([0.0]))[0]
        assert abs(h0) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("order", [1, 2, 3, 5, 7])
    def test_cutoff_is_minus_3db(self, order):
        lpf = ButterworthLowpass(order, 10e3, 1e6)
        h = lpf.frequency_response(np.array([10e3]))[0]
        assert 20 * np.log10(abs(h)) == pytest.approx(-3.0103, abs=0.02)

    def test_rolloff_rate(self):
        # an n-th order Butterworth falls ~6n dB per octave far above cutoff
        order = 5
        lpf = ButterworthLowpass(order, 1e3, 1e6)
        h1 = abs(lpf.frequency_response(np.array([8e3]))[0])
        h2 = abs(lpf.frequency_response(np.array([16e3]))[0])
        drop_db = 20 * np.log10(h1 / h2)
        assert drop_db == pytest.approx(6.02 * order, abs=1.0)

    def test_monotone_magnitude(self):
        lpf = ButterworthLowpass(4, 5e3, 100e3)
        freqs = np.linspace(0, 45e3, 200)
        mags = np.abs(lpf.frequency_response(freqs))
        assert np.all(np.diff(mags) <= 1e-9)

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError, match="Nyquist"):
            butterworth_sos(3, 60e3, 100e3)


class TestSosfilt:
    def test_matches_frequency_response_on_tone(self):
        fs = 1e6
        lpf = ButterworthLowpass(4, 50e3, fs)
        for f in (10e3, 50e3, 150e3):
            x = tone(f, 2e-3, fs)
            y = Waveform(sosfilt(lpf.sos, x.samples), fs)
            # compare steady-state RMS against |H(f)|
            tail = y.samples[len(y) // 2 :]
            expected = abs(lpf.frequency_response(np.array([f]))[0])
            measured = np.sqrt(2.0) * np.sqrt(np.mean(tail**2))
            assert measured == pytest.approx(expected, rel=0.02)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            sosfilt(np.zeros((2, 5)), np.zeros(10))

    def test_apply_requires_matching_rate(self):
        lpf = ButterworthLowpass(3, 1e3, 1e5)
        with pytest.raises(ValueError, match="rate"):
            lpf.apply(Waveform([1.0, 2.0], 2e5))


class TestApplyFFT:
    def test_passband_tone_preserved(self):
        fs = 1e6
        lpf = ButterworthLowpass(5, 100e3, fs)
        x = tone(10e3, 2e-3, fs)
        y = lpf.apply_fft(x)
        assert y.rms() == pytest.approx(x.rms(), rel=0.01)

    def test_stopband_tone_crushed(self):
        fs = 1e6
        lpf = ButterworthLowpass(5, 10e3, fs)
        x = tone(200e3, 2e-3, fs)
        y = lpf.apply_fft(x)
        assert y.rms() < 1e-4 * x.rms()

    def test_zero_phase_no_delay(self):
        # a slow ramp passes without the group delay causal filtering adds
        fs = 1e6
        lpf = ButterworthLowpass(5, 100e3, fs)
        x = Waveform(np.linspace(0, 1, 1000), fs)
        y = lpf.apply_fft(x)
        mid = slice(300, 700)
        assert np.allclose(y.samples[mid], x.samples[mid], atol=0.01)


class TestFIRLowpass:
    def test_dc_gain_unity(self):
        fir = FIRLowpass(31, 1e3, 100e3)
        assert np.sum(fir.taps) == pytest.approx(1.0)

    def test_requires_odd_taps(self):
        with pytest.raises(ValueError, match="odd"):
            FIRLowpass(10, 1e3, 100e3)

    def test_stopband_attenuation(self):
        fs = 1e6
        fir = FIRLowpass(101, 20e3, fs)
        h = abs(fir.frequency_response(np.array([200e3]))[0])
        assert 20 * np.log10(h) < -40

    def test_group_delay(self):
        fir = FIRLowpass(21, 1e3, 1e5)
        assert fir.group_delay_samples == 10.0

    def test_apply_passband(self):
        fs = 1e6
        fir = FIRLowpass(101, 100e3, fs)
        x = tone(5e3, 4e-3, fs)
        y = fir.apply(x)
        mid = slice(200, -200)
        assert np.sqrt(np.mean(y.samples[mid] ** 2)) == pytest.approx(
            np.sqrt(np.mean(x.samples[mid] ** 2)), rel=0.02
        )
