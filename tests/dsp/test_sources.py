"""Tests for repro.dsp.sources."""

import math

import numpy as np
import pytest

from repro.dsp.sources import (
    chirp,
    dbm_to_vpeak,
    dc,
    silence,
    tone,
    two_tone,
    vpeak_to_dbm,
    white_noise,
)
from repro.dsp.spectral import amplitude_spectrum


class TestPowerConversions:
    def test_0dbm_is_316mv(self):
        # 1 mW into 50 ohm: v_peak = sqrt(2 * 1e-3 * 50) = 0.3162 V
        assert dbm_to_vpeak(0.0) == pytest.approx(0.31623, rel=1e-4)

    def test_10dbm_is_1v(self):
        assert dbm_to_vpeak(10.0) == pytest.approx(1.0, rel=1e-3)

    def test_roundtrip(self):
        for p in (-30.0, -10.0, 0.0, 13.0):
            assert vpeak_to_dbm(dbm_to_vpeak(p)) == pytest.approx(p, abs=1e-9)

    def test_zero_voltage_is_minus_inf(self):
        assert vpeak_to_dbm(0.0) == -math.inf


class TestTone:
    def test_amplitude_and_frequency(self):
        wf = tone(1e3, duration=10e-3, sample_rate=100e3, amplitude=2.0)
        assert wf.peak() == pytest.approx(2.0, rel=1e-3)
        spec = amplitude_spectrum(wf)
        assert spec.freqs[np.argmax(spec.amplitudes)] == pytest.approx(1e3, abs=spec.resolution_hz)

    def test_power_dbm_parameter(self):
        wf = tone(1e3, 10e-3, 100e3, power_dbm=10.0)
        assert wf.mean_power_dbm() == pytest.approx(10.0, abs=0.05)

    def test_phase_offset(self):
        wf = tone(1e3, 1e-3, 1e6, phase=np.pi / 2)
        assert wf.samples[0] == pytest.approx(1.0, abs=1e-6)  # sin(pi/2)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            tone(1e3, 0.0, 1e6)


class TestTwoTone:
    def test_contains_both_frequencies(self):
        wf = two_tone(1e3, 2e3, 20e-3, 100e3, amplitude=1.0)
        spec = amplitude_spectrum(wf)
        assert spec.amplitude_at(1e3) == pytest.approx(1.0, rel=0.02)
        assert spec.amplitude_at(2e3) == pytest.approx(1.0, rel=0.02)

    def test_equal_frequencies_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            two_tone(1e3, 1e3, 1e-3, 1e6)

    def test_power_each(self):
        wf = two_tone(1e3, 2e3, 20e-3, 100e3, power_dbm_each=0.0)
        spec = amplitude_spectrum(wf)
        assert spec.power_dbm_at(1e3) == pytest.approx(0.0, abs=0.1)
        assert spec.power_dbm_at(2e3) == pytest.approx(0.0, abs=0.1)


class TestChirp:
    def test_energy_spread_across_band(self):
        wf = chirp(1e3, 10e3, 100e-3, 100e3)
        spec = amplitude_spectrum(wf)
        in_band = (spec.freqs >= 1e3) & (spec.freqs <= 10e3)
        power_in = np.sum(spec.amplitudes[in_band] ** 2)
        power_total = np.sum(spec.amplitudes**2)
        assert power_in / power_total > 0.9

    def test_amplitude_bound(self):
        wf = chirp(1e3, 5e3, 10e-3, 100e3, amplitude=0.5)
        assert wf.peak() <= 0.5 + 1e-9


class TestNoiseAndDC:
    def test_white_noise_rms(self):
        rng = np.random.default_rng(0)
        wf = white_noise(1.0, 10e3, rms=0.1, rng=rng)
        assert wf.rms() == pytest.approx(0.1, rel=0.05)

    def test_white_noise_reproducible(self):
        a = white_noise(1e-3, 1e6, 0.1, np.random.default_rng(42))
        b = white_noise(1e-3, 1e6, 0.1, np.random.default_rng(42))
        assert np.array_equal(a.samples, b.samples)

    def test_negative_rms_rejected(self):
        with pytest.raises(ValueError):
            white_noise(1e-3, 1e6, -0.1)

    def test_silence(self):
        wf = silence(1e-3, 1e6)
        assert wf.rms() == 0.0
        assert len(wf) == 1000

    def test_dc(self):
        wf = dc(2.5, 1e-3, 1e6)
        assert np.all(wf.samples == 2.5)
