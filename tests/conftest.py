"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.analysis.concurrency.runtime_sanitizer import lock_sanitizer
from repro.analysis.sanitizer import SANITIZER_MARKER, fp_sanitizer
from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.lna import LNA900
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        f"{SANITIZER_MARKER}: run this test without the floating-point "
        "sanitizer (NaN/Inf creation will not raise)",
    )
    config.addinivalue_line(
        "markers",
        "no_lock_sanitizer: keep this test outside the REPRO_SANITIZE_LOCKS "
        "lock-order sanitizer window (it patches threading.Lock itself)",
    )


@pytest.fixture(autouse=True)
def _fp_sanitizer(request):
    """Run every test with NaN/Inf creation raising FloatingPointError.

    Opt out per-test with ``@pytest.mark.allow_nonfinite`` when the test
    intentionally exercises non-finite arithmetic.
    """
    if request.node.get_closest_marker(SANITIZER_MARKER) is not None:
        yield
        return
    with fp_sanitizer():
        yield


@pytest.fixture(autouse=True)
def _lock_sanitizer(request):
    """Opt-in lock-order sanitizing for the whole suite.

    With ``REPRO_SANITIZE_LOCKS=1`` every test runs inside
    :func:`~repro.analysis.concurrency.runtime_sanitizer.lock_sanitizer`:
    locks constructed during the test are instrumented and an inverted
    acquisition order fails the test immediately instead of deadlocking.
    Tests that exercise the sanitizer itself opt out via the
    ``no_lock_sanitizer`` marker so nested patching stays predictable.
    """
    if os.environ.get("REPRO_SANITIZE_LOCKS") != "1":
        yield
        return
    if request.node.get_closest_marker("no_lock_sanitizer") is not None:
        yield
        return
    with lock_sanitizer(fail_fast=True):
        yield


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def nominal_lna():
    """The 900 MHz LNA at its nominal process point."""
    return LNA900()


@pytest.fixture
def behavioral_amp():
    """A representative behavioral amplifier DUT."""
    return BehavioralAmplifier(
        center_frequency=900e6, gain_db=16.0, nf_db=2.0, iip3_dbm=3.0, iip2_dbm=23.0
    )


@pytest.fixture
def fast_config():
    """A small, noise-free signature-path configuration for fast tests."""
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=10e6,
        lpf_order=5,
        digitizer_rate=20e6,
        digitizer_noise_vrms=0.0,
        digitizer_bits=None,
        capture_seconds=5e-6,
        envelope_oversample=4,
        include_device_noise=False,
    )


@pytest.fixture
def fast_board(fast_config):
    return SignatureTestBoard(fast_config)


@pytest.fixture
def ideal_mixer_config(fast_config):
    """Fast config with ideal multipliers (for closed-form comparisons)."""
    fast_config.mixer1 = Mixer(0.5, MixerHarmonics.ideal())
    fast_config.mixer2 = Mixer(0.5, MixerHarmonics.ideal())
    return fast_config


@pytest.fixture
def short_stimulus():
    """A fixed 16-breakpoint PWL stimulus spanning 5 us."""
    levels = np.array(
        [-0.3, -0.25, -0.1, 0.05, 0.2, 0.3, 0.25, 0.1,
         -0.05, -0.2, -0.3, -0.15, 0.0, 0.15, 0.3, 0.2]
    )
    return PiecewiseLinearStimulus(levels, duration=5e-6, v_limit=0.4)
