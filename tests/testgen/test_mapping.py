"""Tests for repro.testgen.mapping (Equations 8-9 + rank selection)."""

import numpy as np
import pytest

from repro.testgen.mapping import LinearSignatureMap


class TestExactCase:
    def test_recovers_exact_transformation(self):
        # construct A_p = A_true A_s exactly: residuals must vanish
        rng = np.random.default_rng(0)
        a_s = rng.normal(size=(8, 5))
        a_true = rng.normal(size=(3, 8))
        a_p = a_true @ a_s
        m = LinearSignatureMap.from_sensitivities(a_p, a_s)
        assert np.allclose(m.residuals, 0.0, atol=1e-9)
        # the map reproduces spec perturbations for any process move
        dx = rng.normal(size=5)
        assert np.allclose(m.predict_delta(a_s @ dx), a_p @ dx, atol=1e-9)

    def test_unexplainable_spec_has_full_residual(self):
        # a spec depending only on a parameter the signature ignores
        a_s = np.array([[1.0, 0.0], [2.0, 0.0]])  # signature blind to x2
        a_p = np.array([[0.0, 3.0]])  # spec driven by x2 alone
        m = LinearSignatureMap.from_sensitivities(a_p, a_s)
        assert m.residuals[0] == pytest.approx(3.0)

    def test_partial_residual(self):
        a_s = np.array([[1.0, 0.0]])
        a_p = np.array([[4.0, 3.0]])  # x1 part explainable, x2 part not
        m = LinearSignatureMap.from_sensitivities(a_p, a_s)
        assert m.residuals[0] == pytest.approx(3.0)


class TestRankSelection:
    def _noisy_system(self):
        """A_s with one strong and one very weak direction."""
        a_s = np.array(
            [
                [1.0, 0.0],
                [1.0, 1e-6],  # second direction barely observable
            ]
        )
        a_p = np.array([[1.0, 1.0]])
        return a_p, a_s

    def test_full_rank_when_noise_free(self):
        a_p, a_s = self._noisy_system()
        m = LinearSignatureMap.from_sensitivities(a_p, a_s, sigma_m=0.0)
        assert m.rank == 2
        assert m.residuals[0] == pytest.approx(0.0, abs=1e-6)

    def test_truncates_weak_direction_under_noise(self):
        a_p, a_s = self._noisy_system()
        # with real measurement noise, inverting the 1e-6 direction would
        # amplify noise by 1e6: better to eat the residual
        m = LinearSignatureMap.from_sensitivities(a_p, a_s, sigma_m=0.01)
        assert m.rank == 1
        assert m.row_norms[0] < 10.0

    def test_explicit_rank(self):
        a_p, a_s = self._noisy_system()
        m = LinearSignatureMap.from_sensitivities(a_p, a_s, rank=1)
        assert m.rank == 1
        with pytest.raises(ValueError):
            LinearSignatureMap.from_sensitivities(a_p, a_s, rank=5)

    def test_auto_rank_minimizes_total_error(self):
        a_p, a_s = self._noisy_system()
        sigma = 0.01
        auto = LinearSignatureMap.from_sensitivities(a_p, a_s, sigma_m=sigma)
        best = min(
            LinearSignatureMap.from_sensitivities(a_p, a_s, rank=r)
            .total_error_variances(sigma)
            .mean()
            for r in (1, 2)
        )
        assert auto.total_error_variances(sigma).mean() == pytest.approx(best)

    def test_zero_matrix(self):
        m = LinearSignatureMap.from_sensitivities(
            np.ones((2, 3)), np.zeros((4, 3))
        )
        assert m.rank == 0
        assert np.allclose(m.matrix, 0.0)
        assert np.allclose(m.residuals, np.linalg.norm(np.ones((2, 3)), axis=1))


class TestPredictDelta:
    def test_batch_prediction(self):
        rng = np.random.default_rng(1)
        a_s = rng.normal(size=(6, 4))
        a_p = rng.normal(size=(2, 4))
        m = LinearSignatureMap.from_sensitivities(a_p, a_s)
        batch = rng.normal(size=(10, 6))
        out = m.predict_delta(batch)
        assert out.shape == (10, 2)
        assert np.allclose(out[3], m.predict_delta(batch[3]))

    def test_dimension_checks(self):
        m = LinearSignatureMap.from_sensitivities(np.ones((2, 3)), np.ones((5, 3)))
        with pytest.raises(ValueError):
            m.predict_delta(np.ones(4))
        with pytest.raises(ValueError):
            m.predict_delta(np.ones((2, 4)))
        with pytest.raises(ValueError):
            m.predict_delta(np.ones((2, 2, 2)))


class TestErrorVariances:
    def test_equation_10_composition(self):
        rng = np.random.default_rng(2)
        a_s = rng.normal(size=(6, 4))
        a_p = rng.normal(size=(3, 4))
        m = LinearSignatureMap.from_sensitivities(a_p, a_s)
        sigma = 0.05
        var = m.total_error_variances(sigma)
        assert np.allclose(var, m.residuals**2 + sigma**2 * m.row_norms**2)

    def test_negative_sigma_rejected(self):
        m = LinearSignatureMap.from_sensitivities(np.ones((1, 2)), np.ones((3, 2)))
        with pytest.raises(ValueError):
            m.total_error_variances(-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            LinearSignatureMap.from_sensitivities(np.ones((2, 3)), np.ones((4, 5)))
