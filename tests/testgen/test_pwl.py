"""Tests for repro.testgen.pwl (stimulus encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testgen.pwl import StimulusEncoding


class TestCodec:
    def test_roundtrip(self):
        enc = StimulusEncoding(n_breakpoints=8, duration=1e-6, v_limit=0.5)
        gene = np.linspace(-0.4, 0.4, 8)
        stim = enc.decode(gene)
        assert np.allclose(enc.encode(stim), gene)

    def test_decode_validates_length(self):
        enc = StimulusEncoding(n_breakpoints=8, duration=1e-6)
        with pytest.raises(ValueError):
            enc.decode(np.zeros(9))

    def test_encode_validates_breakpoints(self):
        from repro.dsp.waveform import PiecewiseLinearStimulus

        enc = StimulusEncoding(n_breakpoints=8, duration=1e-6)
        other = PiecewiseLinearStimulus(np.zeros(4), 1e-6)
        with pytest.raises(ValueError):
            enc.encode(other)

    def test_bounds(self):
        enc = StimulusEncoding(n_breakpoints=4, duration=1e-6, v_limit=0.3)
        lower, upper = enc.bounds()
        assert np.all(lower == -0.3)
        assert np.all(upper == 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            StimulusEncoding(n_breakpoints=1, duration=1e-6)
        with pytest.raises(ValueError):
            StimulusEncoding(n_breakpoints=8, duration=0.0)


class TestSeeds:
    def test_all_seeds_within_limits(self):
        enc = StimulusEncoding(n_breakpoints=16, duration=5e-6, v_limit=0.4)
        seeds = enc.seed_genes(np.random.default_rng(0))
        assert np.all(np.abs(seeds) <= 0.4 + 1e-12)
        assert seeds.shape[1] == 16

    def test_amplitude_ladder_present(self):
        # the first generation must bracket the drive level: peak
        # amplitudes of the seeds should span a wide range
        enc = StimulusEncoding(n_breakpoints=16, duration=5e-6, v_limit=0.4)
        seeds = enc.seed_genes(np.random.default_rng(1))
        peaks = np.max(np.abs(seeds), axis=1)
        assert peaks.min() < 0.35 * 0.4
        assert peaks.max() > 0.8 * 0.4

    @given(n=st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_seed_gene_length_matches_encoding(self, n):
        enc = StimulusEncoding(n_breakpoints=n, duration=1e-6, v_limit=1.0)
        seeds = enc.seed_genes(np.random.default_rng(n))
        assert seeds.shape[1] == n
        for gene in seeds:
            stim = enc.decode(gene)
            assert stim.n_breakpoints == n
