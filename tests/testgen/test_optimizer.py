"""Tests for repro.testgen.optimizer (end-to-end stimulus optimization).

Uses the cheap behavioral device family so the whole GA loop runs in
seconds.
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignaturePathConfig
from repro.testgen.genetic import GAConfig
from repro.testgen.optimizer import SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding


def behavioral_space():
    return ParameterSpace(
        [
            ProcessParameter("gain_db", 16.0, 0.08),
            ProcessParameter("nf_db", 2.5, 0.10),
            ProcessParameter("iip3_dbm", 3.0, 0.10),
        ]
    )


def factory(params):
    return BehavioralAmplifier(
        center_frequency=900e6,
        gain_db=params["gain_db"],
        nf_db=params["nf_db"],
        iip3_dbm=params["iip3_dbm"],
    )


def small_config():
    return SignaturePathConfig(
        digitizer_noise_vrms=1e-3,
        digitizer_bits=None,
        capture_seconds=5e-6,
        include_device_noise=False,
    )


def make_optimizer(**kw):
    defaults = dict(
        board_config=small_config(),
        device_factory=factory,
        space=behavioral_space(),
        encoding=StimulusEncoding(n_breakpoints=8, duration=5e-6, v_limit=0.4),
        ga_config=GAConfig(population_size=8, generations=2),
        rel_step=0.03,
    )
    defaults.update(kw)
    return SignatureStimulusOptimizer(**defaults)


class TestPieces:
    def test_performance_matrix_in_sigma_units(self):
        opt = make_optimizer()
        a_p = opt.performance_matrix()
        assert a_p.shape == (3, 3)
        # gain spec responds one-for-one to the gain parameter: in sigma
        # units the (0,0) entry is the parameter's own sigma in dB
        sigma_gain = 16.0 * 0.08 / np.sqrt(3.0)
        assert a_p[0, 0] == pytest.approx(sigma_gain, rel=0.02)
        # NF parameter cannot move the gain spec
        assert a_p[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_sigma_m_derived_from_board(self):
        opt = make_optimizer()
        n = int(round(5e-6 * 20e6))
        assert opt.sigma_m == pytest.approx(1e-3 * np.sqrt(2.0 / n))

    def test_signature_matrix_shape(self):
        opt = make_optimizer()
        stim = opt.encoding.decode(np.full(8, 0.2))
        a_s = opt.signature_matrix(stim)
        assert a_s.shape[1] == 3
        assert np.linalg.norm(a_s[:, 0]) > 0  # gain observable

    def test_overdrive_ratio_monotone_in_amplitude(self):
        opt = make_optimizer()
        weak = opt.overdrive_ratio(opt.encoding.decode(np.full(8, 0.05)))
        strong = opt.overdrive_ratio(opt.encoding.decode(np.full(8, 0.4)))
        assert strong > weak > 0

    def test_objective_finite(self):
        opt = make_optimizer()
        f = opt.objective(np.full(8, 0.2))
        assert np.isfinite(f)
        assert f >= 0


class TestOptimization:
    def test_full_run(self):
        opt = make_optimizer()
        result = opt.optimize(np.random.default_rng(0))
        assert result.objective_value >= 0
        assert result.stimulus.n_breakpoints == 8
        assert result.per_spec_error_std.shape == (3,)
        assert result.mapping.rank >= 1
        assert "predicted std" in result.summary()

    def test_behavioral_family_fully_observable(self):
        # gain and iip3 are directly observable; their predicted errors
        # must be far below the raw spec spreads
        opt = make_optimizer(ga_config=GAConfig(population_size=8, generations=2))
        result = opt.optimize(np.random.default_rng(1))
        gain_sigma = 16.0 * 0.08 / np.sqrt(3)
        assert result.per_spec_error_std[0] < 0.2 * gain_sigma

    def test_reproducible(self):
        r1 = make_optimizer().optimize(np.random.default_rng(7))
        r2 = make_optimizer().optimize(np.random.default_rng(7))
        assert np.array_equal(r1.gene, r2.gene)
        assert r1.objective_value == r2.objective_value

    def test_wideband_margin_tighter_than_tuned(self):
        tuned = make_optimizer()
        wideband_cfg = small_config()
        wideband_cfg.dut_coupling = "wideband"
        wideband = make_optimizer(board_config=wideband_cfg)
        assert wideband.overdrive_margin < tuned.overdrive_margin

    def test_overdrive_penalty_applies_in_wideband(self):
        cfg = small_config()
        cfg.dut_coupling = "wideband"
        opt = make_optimizer(board_config=cfg)
        hot = opt.objective(np.full(8, 0.4))
        # the same drive is legal for the tuned path
        cool = make_optimizer().objective(np.full(8, 0.4))
        assert hot > cool + 1.0


class TestScenarioBoards:
    """The optimizer accepts a prebuilt scenario board via ``board=``."""

    def test_bist_path_optimizes(self):
        from repro.loadboard.scenario_paths import (
            BistPathConfig,
            BistSignaturePath,
        )

        cfg = BistPathConfig(adc_noise_vrms=1e-3, include_device_noise=False)
        path = BistSignaturePath(cfg)
        opt = make_optimizer(
            board_config=cfg,
            board=path,
            encoding=StimulusEncoding(
                n_breakpoints=8, duration=cfg.capture_seconds, v_limit=0.4
            ),
        )
        assert opt.board is path
        # sigma_m sizes from the BIST aliases (adc rate / noise)
        n = int(round(cfg.capture_seconds * cfg.adc_rate))
        assert opt.sigma_m == pytest.approx(1e-3 * np.sqrt(2.0 / n))
        result = opt.optimize(np.random.default_rng(0))
        assert np.isfinite(result.objective_value)
        assert result.per_spec_error_std.shape == (3,)

    def test_multisite_board_optimizes(self):
        from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig

        cfg = small_config()
        board = MultiSiteBoard(cfg, MultiSiteConfig(n_sites=2))
        opt = make_optimizer(board_config=cfg, board=board)
        assert opt.board is board
        result = opt.optimize(np.random.default_rng(0))
        assert np.isfinite(result.objective_value)

    def test_default_board_unchanged(self):
        from repro.loadboard.signature_path import SignatureTestBoard

        assert isinstance(make_optimizer().board, SignatureTestBoard)
