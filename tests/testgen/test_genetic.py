"""Tests for repro.testgen.genetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testgen.genetic import GAConfig, GeneticAlgorithm


def sphere(x):
    return float(np.sum(x**2))


class TestGAConfig:
    def test_defaults_match_paper(self):
        assert GAConfig().generations == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=2)
        with pytest.raises(ValueError):
            GAConfig(generations=0)
        with pytest.raises(ValueError):
            GAConfig(tournament_size=1)
        with pytest.raises(ValueError):
            GAConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GAConfig(elite_count=24, population_size=24)


class TestConvergence:
    def test_sphere_improves(self):
        rng = np.random.default_rng(0)
        ga = GeneticAlgorithm(
            sphere,
            lower=[-5.0] * 4,
            upper=[5.0] * 4,
            config=GAConfig(population_size=30, generations=20),
            rng=rng,
        )
        result = ga.run()
        assert result.best_fitness < 0.5
        assert result.improvement > 0

    def test_shifted_optimum_found(self):
        rng = np.random.default_rng(1)
        target = np.array([1.5, -2.0, 0.5])
        ga = GeneticAlgorithm(
            lambda x: float(np.sum((x - target) ** 2)),
            lower=[-5.0] * 3,
            upper=[5.0] * 3,
            config=GAConfig(population_size=40, generations=30),
            rng=rng,
        )
        result = ga.run()
        assert np.allclose(result.best_gene, target, atol=0.5)

    def test_history_best_monotone_with_elitism(self):
        rng = np.random.default_rng(2)
        ga = GeneticAlgorithm(
            sphere,
            lower=[-5.0] * 3,
            upper=[5.0] * 3,
            config=GAConfig(population_size=20, generations=15, elite_count=2),
            rng=rng,
        )
        result = ga.run()
        bests = [b for b, _ in result.history]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:]))

    def test_evaluation_count(self):
        rng = np.random.default_rng(3)
        cfg = GAConfig(population_size=10, generations=4)
        ga = GeneticAlgorithm(sphere, [-1.0], [1.0], cfg, rng)
        result = ga.run()
        assert result.evaluations == 10 * 5  # initial + 4 generations


class TestBounds:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_best_gene_always_within_bounds(self, seed):
        rng = np.random.default_rng(seed)
        lower = np.array([-1.0, 0.0, 2.0])
        upper = np.array([1.0, 0.5, 3.0])
        ga = GeneticAlgorithm(
            lambda x: -float(np.sum(x)),  # pushes genes to the upper bound
            lower,
            upper,
            GAConfig(population_size=12, generations=5),
            rng,
        )
        result = ga.run()
        assert np.all(result.best_gene >= lower - 1e-12)
        assert np.all(result.best_gene <= upper + 1e-12)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(sphere, [0.0, 1.0], [1.0, 0.5])
        with pytest.raises(ValueError):
            GeneticAlgorithm(sphere, [0.0], [1.0, 2.0])


class TestSeeding:
    def test_seed_population_used(self):
        # a seed sitting exactly at the optimum must survive via elitism
        rng = np.random.default_rng(4)
        ga = GeneticAlgorithm(
            sphere,
            [-5.0] * 3,
            [5.0] * 3,
            GAConfig(population_size=10, generations=3, elite_count=1),
            rng,
        )
        seeds = np.zeros((1, 3))
        result = ga.run(initial_population=seeds)
        assert result.best_fitness == pytest.approx(0.0, abs=1e-12)

    def test_seed_shape_validation(self):
        ga = GeneticAlgorithm(sphere, [-1.0] * 3, [1.0] * 3)
        with pytest.raises(ValueError):
            ga.run(initial_population=np.zeros((2, 5)))

    def test_seeds_clipped_into_bounds(self):
        rng = np.random.default_rng(5)
        ga = GeneticAlgorithm(
            sphere,
            [-1.0] * 2,
            [1.0] * 2,
            GAConfig(population_size=6, generations=1),
            rng,
        )
        result = ga.run(initial_population=np.array([[10.0, -10.0]]))
        assert np.all(np.abs(result.best_gene) <= 1.0)

    def test_reproducible_with_same_rng_seed(self):
        def run(seed):
            return GeneticAlgorithm(
                sphere,
                [-2.0] * 3,
                [2.0] * 3,
                GAConfig(population_size=10, generations=5),
                np.random.default_rng(seed),
            ).run()

        a, b = run(42), run(42)
        assert np.array_equal(a.best_gene, b.best_gene)
        assert a.history == b.history
