"""Tests for repro.testgen.objective (Equation 10)."""

import numpy as np
import pytest

from repro.dsp.spectral import fft_magnitude_signature
from repro.dsp.waveform import Waveform
from repro.testgen.objective import (
    prediction_error_variances,
    signature_noise_std,
    signature_test_objective,
)


class TestSignatureNoiseStd:
    def test_formula(self):
        assert signature_noise_std(1e-3, 100) == pytest.approx(
            1e-3 * np.sqrt(2.0 / 100)
        )

    def test_monte_carlo_agreement(self):
        # empirical per-bin noise std of the FFT-magnitude signature of a
        # signal-plus-noise record matches the formula in signal bins
        rng = np.random.default_rng(0)
        n = 256
        fs = 1e6
        t = np.arange(n) / fs
        clean = 0.5 * np.sin(2 * np.pi * 62.5e3 * t)  # bin 16, coherent
        sigma = 5e-3
        sigs = []
        for _ in range(400):
            rec = Waveform(clean + rng.normal(0, sigma, n), fs)
            sigs.append(fft_magnitude_signature(rec))
        sigs = np.array(sigs)
        measured = sigs[:, 16].std()
        assert measured == pytest.approx(signature_noise_std(sigma, n), rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            signature_noise_std(-1.0, 10)
        with pytest.raises(ValueError):
            signature_noise_std(1.0, 0)


class TestObjective:
    def _system(self):
        rng = np.random.default_rng(1)
        a_s = rng.normal(size=(10, 4))
        a_p = rng.normal(size=(3, 4))
        return a_p, a_s

    def test_mean_of_variances(self):
        a_p, a_s = self._system()
        var = prediction_error_variances(a_p, a_s, sigma_m=0.01)
        assert signature_test_objective(a_p, a_s, 0.01) == pytest.approx(var.mean())

    def test_zero_for_perfectly_explained_noise_free(self):
        rng = np.random.default_rng(2)
        a_s = rng.normal(size=(6, 4))
        a_p = rng.normal(size=(3, 6)) @ a_s
        assert signature_test_objective(a_p, a_s, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_noise_raises_objective(self):
        a_p, a_s = self._system()
        f0 = signature_test_objective(a_p, a_s, 0.0)
        f1 = signature_test_objective(a_p, a_s, 0.1)
        assert f1 > f0

    def test_more_sensitive_signature_wins(self):
        # scaling A_s up (stronger signature response per process sigma)
        # lowers the noise term and therefore the objective
        a_p, a_s = self._system()
        weak = signature_test_objective(a_p, a_s, 0.05)
        strong = signature_test_objective(a_p, 10.0 * a_s, 0.05)
        assert strong < weak

    def test_spec_scales(self):
        a_p, a_s = self._system()
        scaled = prediction_error_variances(
            a_p, a_s, 0.01, spec_scales=[2.0, 1.0, 1.0]
        )
        unscaled = prediction_error_variances(a_p, a_s, 0.01)
        # halving the first spec's scale divides its variance by ~4
        assert scaled[0] == pytest.approx(unscaled[0] / 4.0, rel=0.5)

    def test_spec_scales_validation(self):
        a_p, a_s = self._system()
        with pytest.raises(ValueError):
            prediction_error_variances(a_p, a_s, 0.01, spec_scales=[1.0])
        with pytest.raises(ValueError):
            prediction_error_variances(a_p, a_s, 0.01, spec_scales=[1.0, -1.0, 1.0])
