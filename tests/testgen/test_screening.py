"""Tests for repro.testgen.screening (parameter screening, Section 4.1)."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.lna import LNA900, lna_parameter_space
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.testgen.screening import screen_parameters


class TestSyntheticScreening:
    def _space(self):
        return ParameterSpace(
            [
                ProcessParameter("gain_db", 16.0, 0.10),
                ProcessParameter("nf_db", 2.5, 0.10),
                # a knob the device ignores completely
                ProcessParameter("package_color", 1.0, 0.20),
            ]
        )

    @staticmethod
    def _factory(params):
        return BehavioralAmplifier(900e6, params["gain_db"], params["nf_db"], 3.0)

    def test_irrelevant_parameter_dropped(self):
        reduced, report = screen_parameters(self._factory, self._space())
        assert "package_color" in report.dropped
        assert "gain_db" in report.kept
        assert "package_color" not in reduced

    def test_scores_ordered_sensibly(self):
        _, report = screen_parameters(self._factory, self._space())
        assert report.scores["gain_db"] > report.scores["package_color"]
        assert report.scores["package_color"] == pytest.approx(0.0, abs=1e-9)

    def test_ranking_descending(self):
        _, report = screen_parameters(self._factory, self._space())
        ranking = report.ranking()
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_summary_text(self):
        _, report = screen_parameters(self._factory, self._space())
        text = report.summary()
        assert "package_color" in text
        assert "drop" in text

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            screen_parameters(self._factory, self._space(), rel_threshold=1.0)

    def test_all_dead_space_rejected(self):
        space = ParameterSpace([ProcessParameter("package_color", 1.0, 0.2)])

        def factory(params):
            return BehavioralAmplifier(900e6, 16.0, 2.5, 3.0)

        with pytest.raises(ValueError, match="no parameter"):
            screen_parameters(factory, space)


class TestLNAScreening:
    def test_lna_keeps_the_paper_parameters(self):
        # at a modest threshold the LNA keeps its bias/load/NF drivers
        reduced, report = screen_parameters(
            LNA900, lna_parameter_space(), rel_threshold=0.02
        )
        for name in ("r_load", "re", "r1", "r2", "rb", "ikf"):
            assert name in report.kept, report.summary()

    def test_vaf_near_the_bottom(self):
        # the paper's "negligible impact" candidates: in our LNA the Early
        # voltage barely moves anything
        _, report = screen_parameters(LNA900, lna_parameter_space())
        ranking = [name for name, _ in report.ranking()]
        assert ranking.index("vaf") >= len(ranking) - 2

    def test_curvature_keeps_the_tank_capacitor(self):
        # the tank sits at resonance: d gain / d c_tank = 0 at nominal,
        # but one sigma of detuning still costs gain through curvature.
        # A linear screen would score c_tank ~ 0; ours must not.
        _, report = screen_parameters(LNA900, lna_parameter_space())
        assert report.scores["c_tank"] > 5.0 * report.scores["vaf"]

    def test_aggressive_threshold_shrinks_space(self):
        reduced, report = screen_parameters(
            LNA900, lna_parameter_space(), rel_threshold=0.2
        )
        assert len(reduced) < 10
        assert len(reduced) >= 3
