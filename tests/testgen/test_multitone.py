"""Tests for repro.testgen.multitone."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.spectral import amplitude_spectrum
from repro.testgen.multitone import MultitoneEncoding, MultitoneStimulus


class TestMultitoneStimulus:
    def test_tones_land_on_their_frequencies(self):
        stim = MultitoneStimulus(
            amplitudes=np.array([0.1, 0.05]),
            phases=np.zeros(2),
            frequencies=np.array([1e6, 3e6]),
            duration=10e-6,
            v_limit=0.4,
        )
        wf = stim.to_waveform(40e6)
        spec = amplitude_spectrum(wf)
        assert spec.amplitude_at(1e6) == pytest.approx(0.1, rel=0.02)
        assert spec.amplitude_at(3e6) == pytest.approx(0.05, rel=0.02)

    def test_amplitude_sum_capped_at_v_limit(self):
        stim = MultitoneStimulus(
            amplitudes=np.array([0.5, 0.5]),
            phases=np.zeros(2),
            frequencies=np.array([1e6, 2e6]),
            duration=10e-6,
            v_limit=0.4,
        )
        assert stim.peak_bound() == pytest.approx(0.4)
        wf = stim.to_waveform(40e6)
        assert wf.peak() <= 0.4 + 1e-9

    def test_newman_phases_lower_crest(self):
        n = 8
        freqs = (1 + 2 * np.arange(n)) / 10e-6
        amps = np.full(n, 0.04)
        k = np.arange(n)
        zero_phase = MultitoneStimulus(amps, np.zeros(n), freqs, 10e-6, 1.0)
        newman = MultitoneStimulus(amps, np.pi * k**2 / n, freqs, 10e-6, 1.0)
        fs = 40e6
        assert newman.crest_factor(fs) < zero_phase.crest_factor(fs)

    def test_nyquist_guard(self):
        stim = MultitoneStimulus(
            np.array([0.1]), np.zeros(1), np.array([10e6]), 1e-5, 1.0
        )
        with pytest.raises(ValueError, match="Nyquist"):
            stim.to_waveform(15e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultitoneStimulus(np.array([-0.1]), np.zeros(1), np.array([1e6]), 1e-5, 1.0)
        with pytest.raises(ValueError):
            MultitoneStimulus(np.zeros(0), np.zeros(0), np.zeros(0), 1e-5, 1.0)
        with pytest.raises(ValueError):
            MultitoneStimulus(np.array([0.1, 0.1]), np.zeros(1), np.array([1e6]), 1e-5, 1.0)


class TestMultitoneEncoding:
    def test_frequencies_on_bin_grid(self):
        enc = MultitoneEncoding(n_tones=4, duration=5e-6, first_bin=1, bin_step=2)
        freqs = enc.frequencies()
        bins = freqs * 5e-6
        assert np.allclose(bins, np.round(bins))
        assert np.allclose(bins, [1, 3, 5, 7])

    def test_codec_roundtrip(self):
        enc = MultitoneEncoding(n_tones=4, duration=5e-6, v_limit=0.4)
        gene = np.concatenate(
            [np.array([0.05, 0.02, 0.03, 0.01]), np.array([0.1, 1.0, 2.0, 3.0])]
        )
        stim = enc.decode(gene)
        back = enc.encode(stim)
        assert np.allclose(back, gene)

    def test_gene_length(self):
        enc = MultitoneEncoding(n_tones=6)
        assert enc.n_breakpoints == 12
        lower, upper = enc.bounds()
        assert len(lower) == len(upper) == 12
        assert np.all(upper[:6] == enc.v_limit)
        assert np.all(upper[6:] == pytest.approx(2 * np.pi))

    def test_decode_validates_length(self):
        enc = MultitoneEncoding(n_tones=4)
        with pytest.raises(ValueError):
            enc.decode(np.zeros(7))

    @given(n=st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_seeds_decode_within_limits(self, n):
        enc = MultitoneEncoding(n_tones=n, duration=5e-6, v_limit=0.4)
        seeds = enc.seed_genes(np.random.default_rng(n))
        for gene in seeds:
            stim = enc.decode(gene)
            assert stim.peak_bound() <= 0.4 + 1e-9


class TestBoardIntegration:
    def test_board_accepts_multitone(self):
        from repro.circuits.behavioral import BehavioralAmplifier
        from repro.loadboard.signature_path import (
            SignaturePathConfig,
            SignatureTestBoard,
        )

        enc = MultitoneEncoding(n_tones=4, duration=5e-6, v_limit=0.3)
        gene = np.concatenate([np.full(4, 0.05), np.zeros(4)])
        stim = enc.decode(gene)
        cfg = SignaturePathConfig(
            digitizer_noise_vrms=0.0, digitizer_bits=None, include_device_noise=False
        )
        board = SignatureTestBoard(cfg)
        device = BehavioralAmplifier(900e6, 16.0, 2.0, 3.0)
        sig = board.signature(device, stim)
        assert np.linalg.norm(sig) > 0

    def test_optimizer_accepts_multitone_encoding(self):
        from repro.circuits.behavioral import BehavioralAmplifier
        from repro.circuits.parameters import ParameterSpace, ProcessParameter
        from repro.loadboard.signature_path import SignaturePathConfig
        from repro.testgen.genetic import GAConfig
        from repro.testgen.optimizer import SignatureStimulusOptimizer

        space = ParameterSpace(
            [
                ProcessParameter("gain_db", 16.0, 0.08),
                ProcessParameter("nf_db", 2.5, 0.10),
                ProcessParameter("iip3_dbm", 3.0, 0.10),
            ]
        )

        def factory(params):
            return BehavioralAmplifier(
                900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
            )

        opt = SignatureStimulusOptimizer(
            board_config=SignaturePathConfig(
                digitizer_noise_vrms=1e-3,
                digitizer_bits=None,
                include_device_noise=False,
            ),
            device_factory=factory,
            space=space,
            encoding=MultitoneEncoding(n_tones=4, duration=5e-6, v_limit=0.4),
            ga_config=GAConfig(population_size=8, generations=1),
            rel_step=0.03,
        )
        result = opt.optimize(np.random.default_rng(0))
        assert result.objective_value >= 0
        assert result.stimulus.n_tones == 4
