"""Tests for repro.testgen.sensitivity."""

import numpy as np
import pytest

from repro.circuits.parameters import ParameterSpace, uniform_percent
from repro.testgen.sensitivity import (
    finite_difference_jacobian,
    performance_sensitivity,
    signature_sensitivity,
)


def space2():
    return ParameterSpace(
        [uniform_percent("a", 2.0), uniform_percent("b", 10.0)]
    )


class TestFiniteDifference:
    def test_linear_function_exact(self):
        space = space2()

        def f(params):
            # linear in the *fractional* deviations
            da = params["a"] / 2.0 - 1.0
            db = params["b"] / 10.0 - 1.0
            return np.array([3.0 * da + 1.0 * db, -2.0 * db])

        jac, base = finite_difference_jacobian(f, space, rel_step=0.05)
        assert np.allclose(jac, [[3.0, 1.0], [0.0, -2.0]], atol=1e-9)
        assert np.allclose(base, 0.0)

    def test_central_cancels_quadratic(self):
        space = space2()

        def f(params):
            da = params["a"] / 2.0 - 1.0
            return np.array([da + 10.0 * da**2])

        fwd, _ = finite_difference_jacobian(f, space, rel_step=0.1, central=False)
        ctr, _ = finite_difference_jacobian(f, space, rel_step=0.1, central=True)
        assert abs(fwd[0, 0] - 1.0) > 0.5  # forward bias from curvature
        assert ctr[0, 0] == pytest.approx(1.0, abs=1e-9)

    def test_shape(self):
        space = space2()
        jac, base = finite_difference_jacobian(
            lambda p: np.arange(5.0), space, 0.05
        )
        assert jac.shape == (5, 2)
        assert base.shape == (5,)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            finite_difference_jacobian(lambda p: np.zeros(1), space2(), 0.0)

    def test_rejects_non_vector_output(self):
        with pytest.raises(ValueError, match="1-D"):
            finite_difference_jacobian(lambda p: np.zeros((2, 2)), space2(), 0.05)


class TestDeviceSensitivities:
    def test_performance_sensitivity_lna_signs(self):
        from repro.circuits.lna import LNA900, lna_parameter_space

        space = lna_parameter_space()
        a_p, base = performance_sensitivity(LNA900, space)
        assert a_p.shape == (3, len(space))
        # gain rises with the load resistor
        assert a_p[0, space.index_of("r_load")] > 0
        # NF rises with base resistance, gain does not care
        assert a_p[1, space.index_of("rb")] > 0
        assert a_p[0, space.index_of("rb")] == pytest.approx(0.0, abs=1e-9)
        # nominal specs returned as baseline
        assert base[0] == pytest.approx(LNA900().gain_db())

    def test_signature_sensitivity_wraps_jacobian(self):
        space = space2()

        def sig(params):
            return np.array([params["a"], params["b"], params["a"] * params["b"]])

        a_s, base = signature_sensitivity(sig, space, rel_step=0.01, central=True)
        assert a_s.shape == (3, 2)
        # d(a)/d(da) = nominal a = 2
        assert a_s[0, 0] == pytest.approx(2.0, rel=1e-6)
        assert a_s[1, 1] == pytest.approx(10.0, rel=1e-6)
