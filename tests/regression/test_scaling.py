"""Tests for repro.regression.scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.regression.scaling import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_untouched(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)
        assert np.std(z[:, 1]) == pytest.approx(1.0)

    def test_single_sample_transform(self):
        x = np.random.default_rng(1).normal(size=(50, 3))
        sc = StandardScaler().fit(x)
        row = sc.transform(x[7])
        assert row.shape == (3,)
        assert np.allclose(row, sc.transform(x)[7])

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 5))
        sc = StandardScaler().fit(x)
        assert np.allclose(sc.inverse_transform(sc.transform(x)), x)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_checked(self):
        sc = StandardScaler().fit(np.zeros((5, 3)) + np.arange(3))
        with pytest.raises(ValueError):
            sc.transform(np.zeros((2, 4)))

    def test_fit_requires_2d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))

    @given(
        x=arrays(
            dtype=float,
            shape=st.tuples(
                st.integers(min_value=2, max_value=20),
                st.integers(min_value=1, max_value=5),
            ),
            elements=st.floats(min_value=-1e6, max_value=1e6),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, x):
        sc = StandardScaler().fit(x)
        back = sc.inverse_transform(sc.transform(x))
        assert np.allclose(back, x, rtol=1e-6, atol=1e-6)
