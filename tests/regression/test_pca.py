"""Tests for repro.regression.pca."""

import numpy as np
import pytest

from repro.regression.pca import PCA


def low_rank_data(rng, n=100, d=20, rank=3, noise=0.0):
    basis = rng.normal(size=(rank, d))
    coeffs = rng.normal(size=(n, rank)) * np.array([10.0, 3.0, 1.0])[:rank]
    x = coeffs @ basis
    if noise:
        x = x + rng.normal(0, noise, size=x.shape)
    return x


class TestPCA:
    def test_components_orthonormal(self):
        rng = np.random.default_rng(0)
        pca = PCA(4).fit(rng.normal(size=(50, 10)))
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(4), atol=1e-9)

    def test_variance_ordering(self):
        rng = np.random.default_rng(1)
        pca = PCA().fit(low_rank_data(rng))
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_low_rank_data_fully_explained(self):
        rng = np.random.default_rng(2)
        x = low_rank_data(rng, rank=3)
        pca = PCA(3).fit(x)
        assert np.sum(pca.explained_variance_ratio()) == pytest.approx(1.0, abs=1e-9)

    def test_reconstruction_exact_for_full_rank(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(30, 5))
        pca = PCA().fit(x)
        back = pca.inverse_transform(pca.transform(x))
        assert np.allclose(back, x, atol=1e-9)

    def test_truncated_reconstruction_error_small_on_low_rank(self):
        rng = np.random.default_rng(4)
        x = low_rank_data(rng, rank=2, noise=0.01)
        pca = PCA(2).fit(x)
        back = pca.inverse_transform(pca.transform(x))
        rel = np.linalg.norm(back - x) / np.linalg.norm(x)
        assert rel < 0.02

    def test_single_sample_transform(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(40, 6))
        pca = PCA(2).fit(x)
        row = pca.transform(x[0])
        assert row.shape == (2,)
        assert np.allclose(row, pca.transform(x)[0])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((2, 3)))

    def test_feature_count_checked(self):
        pca = PCA(2).fit(np.random.default_rng(6).normal(size=(10, 4)))
        with pytest.raises(ValueError):
            pca.transform(np.zeros((3, 5)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(2).fit(np.zeros((1, 3)))

    def test_n_components_clipped(self):
        rng = np.random.default_rng(7)
        pca = PCA(100).fit(rng.normal(size=(10, 4)))
        assert pca.components_.shape[0] <= 4
