"""Tests for repro.regression.pipeline and model_select."""

import numpy as np
import pytest

from repro.regression.linear import LinearRegression, RidgeRegression
from repro.regression.model_select import (
    cross_val_rmse,
    kfold_indices,
    select_best_model,
)
from repro.regression.pca import PCA
from repro.regression.pipeline import Pipeline
from repro.regression.polynomial import PolynomialRidge
from repro.regression.scaling import StandardScaler


class TestPipeline:
    def test_fit_predict_chain(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 6))
        y = 2.0 * x[:, 0] + 1.0
        pipe = Pipeline([StandardScaler(), PCA(6), LinearRegression()])
        pipe.fit(x, y)
        assert np.std(pipe.predict(x) - y) < 0.05

    def test_transforms_applied_at_predict(self):
        # a pipeline with PCA must map new data through the SAME components
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 4))
        y = x[:, 0]
        pipe = Pipeline([PCA(4), LinearRegression()]).fit(x, y)
        x_new = rng.normal(size=(10, 4))
        assert np.allclose(pipe.predict(x_new), x_new[:, 0], atol=1e-6)

    def test_requires_regressor_last(self):
        with pytest.raises(TypeError):
            Pipeline([LinearRegression(), StandardScaler()])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_fit_rejects_1d_signatures(self):
        pipe = Pipeline([LinearRegression()])
        with pytest.raises(ValueError, match="2-D"):
            pipe.fit(np.zeros(10), np.zeros(10))

    def test_fit_rejects_mismatched_sample_counts(self):
        pipe = Pipeline([LinearRegression()])
        with pytest.raises(ValueError, match="10 signatures vs 9 spec values"):
            pipe.fit(np.zeros((10, 3)), np.zeros(9))

    def test_predict_rejects_1d_and_wrong_feature_count(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 4))
        pipe = Pipeline([StandardScaler(), LinearRegression()]).fit(x, x[:, 0])
        with pytest.raises(ValueError, match="2-D"):
            pipe.predict(x[0])
        with pytest.raises(ValueError, match="fitted on 4 features but got 3"):
            pipe.predict(x[:, :3])


class TestKFold:
    def test_partition_covers_everything_once(self):
        rng = np.random.default_rng(0)
        folds = kfold_indices(23, 5, rng)
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_train_test_disjoint(self):
        rng = np.random.default_rng(1)
        for train, test in kfold_indices(20, 4, rng):
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 20

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            kfold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            kfold_indices(3, 5, rng)


class TestCrossVal:
    def test_cv_rmse_reasonable(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 2))
        y = x[:, 0] + rng.normal(0, 0.1, 60)
        score = cross_val_rmse(
            lambda: LinearRegression(), x, y, k=5, rng=np.random.default_rng(0)
        )
        assert score == pytest.approx(0.1, rel=0.5)

    def test_failing_model_scores_inf(self):
        class Broken:
            def fit(self, x, y):
                raise ValueError("nope")

            def predict(self, x):
                return np.zeros(len(x))

        x = np.zeros((10, 2))
        y = np.zeros(10)
        assert cross_val_rmse(Broken, x, y, 2, np.random.default_rng(0)) == float(
            "inf"
        )


class TestSelectBestModel:
    def test_selects_correct_family(self):
        # a strongly quadratic target: poly ridge must beat plain ridge
        rng = np.random.default_rng(4)
        x = rng.uniform(-2, 2, size=(100, 2))
        y = x[:, 0] ** 2 + 0.1 * x[:, 1]
        name, model, scores = select_best_model(
            {
                "linear": lambda: RidgeRegression(1e-6),
                "poly2": lambda: PolynomialRidge(2, 1e-6),
            },
            x,
            y,
            k=5,
            rng=np.random.default_rng(0),
        )
        assert name == "poly2"
        assert scores["poly2"] < scores["linear"]
        # winner is refitted on all data
        assert np.std(model.predict(x) - y) < 0.05

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_best_model({}, np.zeros((10, 1)), np.zeros(10))

    def test_all_failing_raises(self):
        class Broken:
            def fit(self, x, y):
                raise ValueError("nope")

            def predict(self, x):
                return None

        with pytest.raises(RuntimeError, match="failed"):
            select_best_model(
                {"a": Broken}, np.zeros((10, 1)), np.zeros(10), k=2,
                rng=np.random.default_rng(0),
            )
