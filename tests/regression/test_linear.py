"""Tests for repro.regression.linear."""

import numpy as np
import pytest

from repro.regression.linear import LinearRegression, RidgeRegression


class TestLinearRegression:
    def test_exact_recovery(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = x @ w + 4.0
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.coef_, w, atol=1e-6)
        assert model.intercept_ == pytest.approx(4.0, abs=1e-6)

    def test_prediction(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, 3.0, 5.0])
        model = LinearRegression().fit(x, y)
        assert model.predict(np.array([[3.0]]))[0] == pytest.approx(7.0)

    def test_single_sample_prediction(self):
        x = np.random.default_rng(1).normal(size=(20, 2))
        y = x[:, 0]
        model = LinearRegression().fit(x, y)
        single = model.predict(x[3])
        assert np.isscalar(single) or single.ndim == 0

    def test_underdetermined_does_not_crash(self):
        # more features than samples: the tiny ridge floor keeps it solvable
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 20))
        y = rng.normal(size=5)
        model = LinearRegression().fit(x, y)
        assert np.isfinite(model.predict(x)).all()


class TestRidgeRegression:
    def test_shrinkage_with_alpha(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(40, 4))
        y = x @ np.array([5.0, 0.0, 0.0, 0.0]) + rng.normal(0, 0.1, 40)
        small = RidgeRegression(alpha=1e-6).fit(x, y)
        large = RidgeRegression(alpha=1e3).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalized(self):
        # even with huge alpha, the intercept tracks the target mean
        rng = np.random.default_rng(4)
        x = rng.normal(size=(60, 3))
        y = 100.0 + 0.01 * x[:, 0]
        model = RidgeRegression(alpha=1e6).fit(x, y)
        assert model.intercept_ == pytest.approx(100.0, abs=0.1)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((1, 2)), np.zeros(1))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((2, 2)))

    def test_predict_feature_count(self):
        model = RidgeRegression().fit(np.zeros((5, 2)) + np.arange(2), np.arange(5.0))
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 3)))

    def test_noise_robustness_vs_ols(self):
        # with many noisy useless features, ridge generalizes better
        rng = np.random.default_rng(5)
        n_train, n_feat = 30, 25
        x = rng.normal(size=(n_train, n_feat))
        y = 2.0 * x[:, 0] + rng.normal(0, 0.5, n_train)
        x_test = rng.normal(size=(200, n_feat))
        y_test = 2.0 * x_test[:, 0]
        ols_err = np.std(LinearRegression().fit(x, y).predict(x_test) - y_test)
        ridge_err = np.std(RidgeRegression(10.0).fit(x, y).predict(x_test) - y_test)
        assert ridge_err < ols_err
