"""Tests for repro.regression.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.regression.metrics import bias, mae, r2_score, rmse, std_err


class TestBasics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0
        assert std_err(y, y) == 0.0
        assert mae(y, y) == 0.0
        assert bias(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_constant_offset(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = y + 0.5
        assert rmse(y, pred) == pytest.approx(0.5)
        assert bias(y, pred) == pytest.approx(0.5)
        # std(err) removes the bias: the paper's scatter metric
        assert std_err(y, pred) == pytest.approx(0.0, abs=1e-12)

    def test_r2_of_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_r2_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 2.0, 1.0])
        assert r2_score(y, pred) < 0.0

    def test_constant_target_cases(self):
        y = np.full(3, 5.0)
        assert r2_score(y, y) == 0.0
        assert r2_score(y, y + 1.0) == -np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            rmse([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            rmse([], [])
        with pytest.raises(ValueError):
            rmse(np.zeros((2, 2)), np.zeros((2, 2)))


VEC = arrays(
    dtype=float,
    shape=st.integers(min_value=2, max_value=50),
    elements=st.floats(min_value=-1e3, max_value=1e3),
)


class TestProperties:
    @given(err=VEC)
    @settings(max_examples=50, deadline=None)
    def test_rmse_dominates_bias_and_stderr(self, err):
        y = np.zeros_like(err)
        # rmse^2 = bias^2 + std_err^2
        assert rmse(y, err) ** 2 == pytest.approx(
            bias(y, err) ** 2 + std_err(y, err) ** 2, rel=1e-6, abs=1e-9
        )

    @given(err=VEC)
    @settings(max_examples=50, deadline=None)
    def test_mae_below_rmse(self, err):
        y = np.zeros_like(err)
        assert mae(y, err) <= rmse(y, err) + 1e-9

    @given(err=VEC, scale=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_rmse_scales_linearly(self, err, scale):
        y = np.zeros_like(err)
        assert rmse(y, scale * err) == pytest.approx(scale * rmse(y, err), rel=1e-9)
