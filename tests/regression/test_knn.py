"""Tests for repro.regression.knn."""

import numpy as np
import pytest

from repro.regression.knn import KNNRegressor


class TestKNN:
    def test_exact_on_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        model = KNNRegressor(k=5).fit(x, y)
        # exact matches get all the weight
        assert np.allclose(model.predict(x), y)

    def test_interpolates_smooth_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = np.sin(2 * x[:, 0]) + x[:, 1]
        model = KNNRegressor(k=5).fit(x, y)
        x_test = rng.uniform(-0.8, 0.8, size=(50, 2))
        y_test = np.sin(2 * x_test[:, 0]) + x_test[:, 1]
        assert np.std(model.predict(x_test) - y_test) < 0.1

    def test_uniform_weights_average(self):
        x = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        model = KNNRegressor(k=2, weights="uniform").fit(x, y)
        # nearest two to 0.4 are x=0 and x=1
        assert model.predict(np.array([[0.4]]))[0] == pytest.approx(1.0)

    def test_distance_weights_favor_closer(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNNRegressor(k=2, weights="distance").fit(x, y)
        pred = model.predict(np.array([[0.1]]))[0]
        assert pred < 5.0  # pulled toward the nearby y=0 sample

    def test_k_clipped_to_training_size(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1.0, 3.0])
        model = KNNRegressor(k=10, weights="uniform").fit(x, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(2.0)

    def test_single_sample_predict(self):
        model = KNNRegressor(k=1).fit(np.array([[0.0], [1.0]]), np.array([5.0, 7.0]))
        out = model.predict(np.array([0.1]))
        assert out == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        with pytest.raises(ValueError):
            KNNRegressor(weights="gaussian")
        with pytest.raises(RuntimeError):
            KNNRegressor().predict(np.zeros((1, 1)))
        model = KNNRegressor().fit(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            model.predict(np.zeros((1, 3)))
