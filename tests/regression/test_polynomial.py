"""Tests for repro.regression.polynomial."""

import numpy as np
import pytest

from repro.regression.polynomial import PolynomialFeatures, PolynomialRidge


class TestPolynomialFeatures:
    def test_degree2_feature_count(self):
        # d features -> d + d(d+1)/2 outputs at degree 2
        x = np.zeros((3, 4))
        pf = PolynomialFeatures(degree=2).fit(x)
        assert pf.n_output_features == 4 + 10

    def test_degree1_is_identity(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 3))
        out = PolynomialFeatures(degree=1).fit_transform(x)
        assert np.allclose(out, x)

    def test_monomials_correct(self):
        x = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(x)
        # order: x1, x2, x1^2, x1 x2, x2^2
        assert np.allclose(out, [[2.0, 3.0, 4.0, 6.0, 9.0]])

    def test_interaction_only(self):
        x = np.array([[2.0, 3.0]])
        pf = PolynomialFeatures(degree=2, interaction_only=True).fit(x)
        out = pf.transform(x)
        # x1, x2, x1 x2 (squares excluded)
        assert np.allclose(out, [[2.0, 3.0, 6.0]])

    def test_degree3(self):
        x = np.array([[2.0]])
        out = PolynomialFeatures(degree=3).fit_transform(x)
        assert np.allclose(out, [[2.0, 4.0, 8.0]])

    def test_single_sample(self):
        pf = PolynomialFeatures(2).fit(np.zeros((3, 2)))
        row = pf.transform(np.array([1.0, 2.0]))
        assert row.shape == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(0)
        pf = PolynomialFeatures(2).fit(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            pf.transform(np.zeros((2, 3)))
        with pytest.raises(RuntimeError):
            PolynomialFeatures(2).transform(np.zeros((2, 2)))


class TestPolynomialRidge:
    def test_recovers_quadratic(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(100, 2))
        y = 1.0 + 2.0 * x[:, 0] - 0.5 * x[:, 1] ** 2 + 0.3 * x[:, 0] * x[:, 1]
        model = PolynomialRidge(degree=2, alpha=1e-8).fit(x, y)
        x_test = rng.uniform(-2, 2, size=(50, 2))
        y_test = 1.0 + 2.0 * x_test[:, 0] - 0.5 * x_test[:, 1] ** 2 + 0.3 * x_test[:, 0] * x_test[:, 1]
        assert np.allclose(model.predict(x_test), y_test, atol=1e-5)

    def test_beats_linear_on_curved_target(self):
        from repro.regression.linear import RidgeRegression

        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(80, 1))
        y = x[:, 0] ** 2
        lin_pred = RidgeRegression(1e-8).fit(x, y).predict(x)
        poly_pred = PolynomialRidge(2, 1e-8).fit(x, y).predict(x)
        assert np.std(poly_pred - y) < 0.1 * np.std(lin_pred - y)
