"""Tests for repro.regression.mars."""

import numpy as np
import pytest

from repro.regression.mars import HingeBasis, MARSRegressor


class TestHingeBasis:
    def test_positive_hinge(self):
        h = HingeBasis(feature=0, knot=1.0, sign=+1)
        x = np.array([[0.0], [1.0], [3.0]])
        assert np.allclose(h.evaluate(x), [0.0, 0.0, 2.0])

    def test_negative_hinge(self):
        h = HingeBasis(feature=0, knot=1.0, sign=-1)
        x = np.array([[0.0], [1.0], [3.0]])
        assert np.allclose(h.evaluate(x), [1.0, 0.0, 0.0])


class TestMARSRegressor:
    def test_fits_hinge_target_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(200, 1))
        y = 3.0 * np.maximum(x[:, 0] - 0.0, 0.0) + 1.0
        model = MARSRegressor(max_terms=6, n_knots=9).fit(x, y)
        pred = model.predict(x)
        assert np.std(pred - y) < 0.1

    def test_beats_mean_on_nonlinear_target(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(150, 2))
        y = np.abs(x[:, 0]) + 0.5 * x[:, 1]
        model = MARSRegressor(max_terms=10).fit(x, y)
        resid = np.std(model.predict(x) - y)
        assert resid < 0.3 * np.std(y)

    def test_constant_target_stays_constant(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 3))
        y = np.full(50, 7.0)
        model = MARSRegressor().fit(x, y)
        assert np.allclose(model.predict(x), 7.0, atol=1e-6)
        assert model.n_terms == 0  # GCV blocks useless terms

    def test_max_terms_respected(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(100, 4))
        y = np.sin(3 * x[:, 0]) + np.cos(3 * x[:, 1])
        model = MARSRegressor(max_terms=6, min_improvement=0.0).fit(x, y)
        assert model.n_terms <= 6

    def test_single_sample_predict(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(60, 2))
        y = x[:, 0]
        model = MARSRegressor().fit(x, y)
        out = model.predict(x[0])
        assert np.ndim(out) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MARSRegressor(max_terms=1)
        with pytest.raises(ValueError):
            MARSRegressor(n_knots=0)
        with pytest.raises(ValueError):
            MARSRegressor().fit(np.zeros((2, 1)), np.zeros(2))
        with pytest.raises(RuntimeError):
            MARSRegressor().predict(np.zeros((1, 1)))
