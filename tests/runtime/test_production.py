"""Tests for repro.runtime.production (end-to-end production flow)."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.runtime.calibration import CalibrationSession
from repro.runtime.production import ProductionRunResult, ProductionTestFlow
from repro.runtime.specs import lna_limits
from repro.testgen.pwl import StimulusEncoding


@pytest.fixture(scope="module")
def flow_setup():
    """A small but complete calibrated production flow."""
    rng = np.random.default_rng(42)
    space = ParameterSpace(
        [
            ProcessParameter("gain_db", 16.0, 0.08),
            ProcessParameter("nf_db", 2.2, 0.10),
            ProcessParameter("iip3_dbm", 3.0, 0.10),
        ]
    )

    def factory(params):
        return BehavioralAmplifier(
            900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
        )

    config = SignaturePathConfig(
        digitizer_noise_vrms=1e-3, digitizer_bits=None, include_device_noise=False
    )
    board = SignatureTestBoard(config)
    stim = StimulusEncoding(8, config.capture_seconds, 0.4).decode(
        np.array([-0.2, -0.1, 0.0, 0.1, 0.2, 0.15, 0.05, -0.15])
    )

    train_points = space.sample(rng, 40)
    train_devices = [factory(space.to_dict(p)) for p in train_points]
    train_specs = np.vstack([d.specs().as_vector() for d in train_devices])
    train_sigs = np.vstack(
        [board.signature(d, stim, rng=rng) for d in train_devices]
    )
    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    return space, factory, board, stim, calibration


class TestProductionFlow:
    def test_single_device(self, flow_setup):
        space, factory, board, stim, calibration = flow_setup
        flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
        device = factory(space.to_dict(space.nominal_vector()))
        rec = flow.test_device(device, np.random.default_rng(0), device_id=7)
        assert rec.device_id == 7
        assert rec.passed is True
        assert rec.predicted.gain_db == pytest.approx(16.0, abs=0.5)
        assert rec.test_time == board.config.total_test_time()

    def test_bad_device_fails(self, flow_setup):
        space, factory, board, stim, calibration = flow_setup
        flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
        # train distribution is around 16 dB; an 11 dB device must fail
        dud = factory({"gain_db": 11.0, "nf_db": 2.2, "iip3_dbm": 3.0})
        rec = flow.test_device(dud, np.random.default_rng(1))
        assert rec.passed is False

    def test_run_statistics(self, flow_setup):
        space, factory, board, stim, calibration = flow_setup
        rng = np.random.default_rng(2)
        devices = [factory(space.to_dict(p)) for p in space.sample(rng, 10)]
        flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
        result = flow.run(devices, rng)
        assert result.n_devices == 10
        assert 0.0 <= result.yield_fraction <= 1.0
        assert result.mean_test_time > 0
        assert result.throughput_per_hour() > 100.0
        assert result.predicted_matrix().shape == (10, 3)

    def test_no_limits_means_no_verdict(self, flow_setup):
        space, factory, board, stim, calibration = flow_setup
        flow = ProductionTestFlow(board, stim, calibration, limits=None)
        rec = flow.test_device(
            factory(space.to_dict(space.nominal_vector())), np.random.default_rng(3)
        )
        assert rec.passed is None

    def test_empty_run_statistics_raise(self):
        result = ProductionRunResult()
        with pytest.raises(ValueError):
            result.mean_test_time
        with pytest.raises(ValueError):
            result.yield_fraction


class TestEdgeLots:
    @pytest.mark.parametrize("executor", [None, "thread:2", "process:2"])
    def test_empty_lot(self, flow_setup, executor):
        space, factory, board, stim, calibration = flow_setup
        flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
        result = flow.run([], np.random.default_rng(0), executor=executor)
        assert result.n_devices == 0
        assert result.records == []
        assert result.predicted_matrix().shape == (0, 3)

    @pytest.mark.parametrize("executor", [None, "thread:2", "process:2"])
    def test_single_device_matches_serial(self, flow_setup, executor):
        space, factory, board, stim, calibration = flow_setup
        flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
        device = factory(space.to_dict(space.nominal_vector()))
        reference = flow.run([device], np.random.default_rng(4))
        result = flow.run([device], np.random.default_rng(4), executor=executor)
        assert result.n_devices == 1
        rec, ref = result.records[0], reference.records[0]
        assert rec.device_id == 0
        assert np.array_equal(rec.signature, ref.signature)
        assert rec.predicted.as_vector() == pytest.approx(
            ref.predicted.as_vector()
        )
