"""Tests for repro.runtime.economics."""

import pytest

from repro.runtime.economics import FlowEconomics, compare_flows
from repro.runtime.economics import TesterCostModel as CostModel


class TestTesterCostModel:
    def test_cost_per_second_positive(self):
        ate = CostModel.conventional_rf_ate()
        assert ate.cost_per_second > 0

    def test_expensive_tester_costs_more(self):
        ate = CostModel.conventional_rf_ate()
        cheap = CostModel.low_cost_tester()
        assert ate.cost_per_second > 3.0 * cheap.cost_per_second

    def test_utilization_scales_cost(self):
        full = CostModel("t", 1e6, utilization=1.0)
        half = CostModel("t", 1e6, utilization=0.5)
        assert half.cost_per_second == pytest.approx(2.0 * full.cost_per_second)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel("t", -1.0)
        with pytest.raises(ValueError):
            CostModel("t", 1e6, utilization=0.0)
        with pytest.raises(ValueError):
            CostModel("t", 1e6, depreciation_years=0.0)


class TestFlowEconomics:
    def test_throughput(self):
        flow = FlowEconomics(CostModel.low_cost_tester(), 0.5)
        assert flow.throughput_per_hour == pytest.approx(7200.0)

    def test_cost_per_device(self):
        tester = CostModel("t", 1e6, depreciation_years=1.0, utilization=1.0)
        flow = FlowEconomics(tester, 1.0)
        assert flow.cost_per_device == pytest.approx(tester.cost_per_second)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowEconomics(CostModel.low_cost_tester(), 0.0)
        with pytest.raises(ValueError):
            FlowEconomics(CostModel.low_cost_tester(), 1.0, sites=0)
        with pytest.raises(ValueError):
            FlowEconomics(CostModel.low_cost_tester(), 1.0, site_cost_fraction=2.0)


class TestMultiSite:
    def test_throughput_scales_with_sites(self):
        tester = CostModel.low_cost_tester()
        single = FlowEconomics(tester, 0.1, sites=1)
        quad = FlowEconomics(tester, 0.1, sites=4)
        assert quad.throughput_per_hour == pytest.approx(
            4.0 * single.throughput_per_hour
        )

    def test_cost_per_device_improves_sublinearly(self):
        # 4 sites quarter the tester time but add 30% capital:
        # cost per device falls, but by less than 4x
        tester = CostModel.low_cost_tester()
        single = FlowEconomics(tester, 0.1, sites=1)
        quad = FlowEconomics(tester, 0.1, sites=4, site_cost_fraction=0.1)
        assert quad.cost_per_device < single.cost_per_device
        assert quad.cost_per_device > single.cost_per_device / 4.0


class TestCostFormula:
    def test_cost_per_second_is_annualized_capital_plus_operating(self):
        from repro.runtime.economics import SECONDS_PER_YEAR

        tester = CostModel(
            name="t",
            capital_cost=500_000.0,
            depreciation_years=5.0,
            utilization=0.5,
            annual_operating_cost=50_000.0,
        )
        expected = (500_000.0 / 5.0 + 50_000.0) / (SECONDS_PER_YEAR * 0.5)
        assert tester.cost_per_second == pytest.approx(expected, rel=1e-12)

    def test_free_site_hardware_divides_cost_by_sites(self):
        tester = CostModel.low_cost_tester()
        single = FlowEconomics(tester, 0.1, sites=1)
        quad = FlowEconomics(tester, 0.1, sites=4, site_cost_fraction=0.0)
        assert quad.cost_per_device == pytest.approx(
            single.cost_per_device / 4.0, rel=1e-12
        )
        assert quad.throughput_per_hour == pytest.approx(
            4.0 * single.throughput_per_hour, rel=1e-12
        )


class TestCompareFlows:
    def test_paper_scenario(self):
        # conventional: ~1 s of sequential spec tests; signature: 15 ms
        cmp = compare_flows(conventional_seconds=1.0, signature_seconds=0.015)
        assert cmp.time_speedup == pytest.approx(1.0 / 0.015, rel=1e-6)
        assert cmp.cost_reduction > cmp.time_speedup  # cheaper tester too
        text = cmp.summary()
        assert "speedup" in text
        assert "cost reduction" in text

    def test_default_testers_used(self):
        cmp = compare_flows(0.8, 0.02)
        assert cmp.conventional.tester.name == "conventional RF ATE"
        assert cmp.signature.tester.name == "low-cost signature tester"
