"""Cross-backend determinism suite for the parallel execution engine.

The executor contract (docs/parallelism.md): serial, thread, and
process backends return *bit-identical* results for the same master
seed, because batch call sites derive one independent RNG stream per
task via ``SeedSequence.spawn`` and results are kept in input order.
This suite locks that contract for the three wired hot paths -- GA
fitness evaluation, the production flow, and Monte-Carlo training-set
capture -- plus the executor primitives themselves.
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cpus,
    default_chunksize,
    get_executor,
    spawn_generators,
    spawn_seeds,
)
from repro.runtime.calibration import CalibrationSession, measure_signatures
from repro.runtime.production import ProductionTestFlow
from repro.runtime.specs import lna_limits
from repro.testgen.genetic import GAConfig, GeneticAlgorithm
from repro.testgen.pwl import StimulusEncoding

#: force >1 worker so the pooled code paths actually run on 1-CPU boxes
BACKENDS = {
    "serial": lambda: SerialExecutor(),
    "thread": lambda: ThreadExecutor(max_workers=4),
    "process": lambda: ProcessExecutor(max_workers=4),
}


def _square(x):
    return x * x


def _rosenbrock(gene):
    return float(
        np.sum(100.0 * (gene[1:] - gene[:-1] ** 2) ** 2 + (1.0 - gene[:-1]) ** 2)
    )


class TestExecutorPrimitives:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_order_preserved(self, backend):
        with BACKENDS[backend]() as ex:
            assert ex.map_tasks(_square, range(37)) == [i * i for i in range(37)]

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_empty_batch(self, backend):
        with BACKENDS[backend]() as ex:
            assert ex.map_tasks(_square, []) == []

    @pytest.mark.parametrize("chunksize", [None, 1, 5, 100])
    def test_chunksize_never_changes_results(self, chunksize):
        with ProcessExecutor(max_workers=2) as ex:
            out = ex.map_tasks(_square, range(23), chunksize=chunksize)
        assert out == [i * i for i in range(23)]

    def test_default_chunksize_bounds(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(3, 4) == 1
        assert default_chunksize(64, 4) == 4
        assert default_chunksize(1000, 1) == 250

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1

    def test_unpicklable_fn_falls_back_to_serial(self):
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                out = ex.map_tasks(lambda x: x + 1, range(8))
            assert out == list(range(1, 9))
            # the executor stays serial (and usable) for its lifetime
            assert ex.map_tasks(_square, [3]) == [9]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            SerialExecutor().map_tasks(lambda x: 1 // x, [1, 0])


class TestGetExecutor:
    def test_none_is_serial(self):
        assert isinstance(get_executor(None), SerialExecutor)

    def test_instance_passthrough(self):
        ex = ThreadExecutor(max_workers=2)
        assert get_executor(ex) is ex

    def test_names_and_worker_suffix(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        ex = get_executor("process:3")
        assert isinstance(ex, ProcessExecutor)
        assert ex.max_workers == 3
        assert get_executor("process", max_workers=2).max_workers == 2

    def test_invalid_specs(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            get_executor("cluster")
        with pytest.raises(ValueError):
            get_executor("process:3", max_workers=2)
        with pytest.raises(ValueError):
            get_executor(SerialExecutor(), max_workers=2)
        with pytest.raises(ValueError):
            get_executor("serial:4")
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)


class TestSpawnStreams:
    def test_same_seed_same_streams(self):
        a = [g.standard_normal(4) for g in spawn_generators(123, 5)]
        b = [g.standard_normal(4) for g in spawn_generators(123, 5)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_streams_are_independent(self):
        a, b = spawn_generators(123, 2)
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_generator_source_is_deterministic_and_consumes_one_draw(self):
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        s1 = [s.generate_state(2).tolist() for s in spawn_seeds(r1, 3)]
        s2 = [s.generate_state(2).tolist() for s in spawn_seeds(r2, 3)]
        assert s1 == s2
        # both generators advanced identically (exactly one draw)
        assert r1.integers(0, 2**63) == r2.integers(0, 2**63)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestGACrossBackend:
    def _run(self, executor):
        return GeneticAlgorithm(
            _rosenbrock,
            lower=[-2.0] * 4,
            upper=[2.0] * 4,
            config=GAConfig(population_size=12, generations=4),
            rng=np.random.default_rng(2002),
            executor=executor,
        ).run()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial_bit_for_bit(self, backend):
        ref = self._run(SerialExecutor())
        with BACKENDS[backend]() as ex:
            out = self._run(ex)
        assert np.array_equal(ref.best_gene, out.best_gene)
        assert ref.best_fitness == out.best_fitness
        assert ref.history == out.history
        assert ref.evaluations == out.evaluations


@pytest.fixture(scope="module")
def small_flow():
    """A compact calibrated production flow plus a device lot."""
    rng = np.random.default_rng(77)
    space = ParameterSpace(
        [
            ProcessParameter("gain_db", 16.0, 0.08),
            ProcessParameter("nf_db", 2.2, 0.10),
            ProcessParameter("iip3_dbm", 3.0, 0.10),
        ]
    )

    def factory(params):
        return BehavioralAmplifier(
            900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
        )

    config = SignaturePathConfig(
        digitizer_noise_vrms=1e-3, digitizer_bits=None, include_device_noise=False
    )
    board = SignatureTestBoard(config)
    stim = StimulusEncoding(8, config.capture_seconds, 0.4).decode(
        np.array([-0.2, -0.1, 0.0, 0.1, 0.2, 0.15, 0.05, -0.15])
    )
    train_devices = [factory(space.to_dict(p)) for p in space.sample(rng, 30)]
    train_specs = np.vstack([d.specs().as_vector() for d in train_devices])
    train_sigs = measure_signatures(board, stim, train_devices, rng)
    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
    lot = [factory(space.to_dict(p)) for p in space.sample(rng, 16)]
    return board, stim, flow, lot


class TestProductionCrossBackend:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_records_identical_to_serial(self, small_flow, backend):
        _, _, flow, lot = small_flow
        ref = flow.run(lot, np.random.default_rng(5), executor=SerialExecutor())
        with BACKENDS[backend]() as ex:
            out = flow.run(lot, np.random.default_rng(5), executor=ex)
        assert [r.device_id for r in out.records] == list(range(len(lot)))
        for a, b in zip(ref.records, out.records):
            assert a.device_id == b.device_id
            assert np.array_equal(a.signature, b.signature)
            assert np.array_equal(a.predicted.as_vector(), b.predicted.as_vector())
            assert a.passed == b.passed
            assert a.test_time == b.test_time

    def test_backend_name_spec_accepted(self, small_flow):
        _, _, flow, lot = small_flow
        ref = flow.run(lot, np.random.default_rng(6))
        out = flow.run(lot, np.random.default_rng(6), executor="process:2",
                       chunksize=3)
        assert np.array_equal(ref.predicted_matrix(), out.predicted_matrix())

    def test_same_seed_reproducible(self, small_flow):
        _, _, flow, lot = small_flow
        a = flow.run(lot, np.random.default_rng(9))
        b = flow.run(lot, np.random.default_rng(9))
        assert np.array_equal(a.predicted_matrix(), b.predicted_matrix())


class TestTrainingSetCrossBackend:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_signature_matrix_identical_to_serial(self, small_flow, backend):
        board, stim, _, lot = small_flow
        ref = measure_signatures(board, stim, lot, np.random.default_rng(3))
        with BACKENDS[backend]() as ex:
            out = measure_signatures(
                board, stim, lot, np.random.default_rng(3),
                executor=ex, chunksize=5,
            )
        assert np.array_equal(ref, out)

    def test_empty_device_list(self, small_flow):
        board, stim, _, _ = small_flow
        out = measure_signatures(board, stim, [], np.random.default_rng(0))
        assert out.size == 0
