"""Tests for repro.runtime.trafficgen (seeded wafer-map traffic)."""

import numpy as np
import pytest

from repro.runtime.trafficgen import LotOrder, TrafficGenerator, WaferMapProfile


def _spec_matrix(devices):
    return np.vstack([d.specs().as_vector() for d in devices])


class TestWaferMapProfile:
    def test_die_positions_fill_the_circle(self):
        profile = WaferMapProfile(grid=12)
        positions = profile.die_positions()
        # every die inside the unit circle, corners clipped off
        assert 0 < len(positions) < profile.grid**2
        assert all(x * x + y * y <= 1.0 + 1e-12 for x, y in positions)

    def test_wafer_devices_match_die_count(self):
        profile = WaferMapProfile(grid=8)
        devices = profile.wafer_devices(np.random.default_rng(0))
        assert len(devices) == len(profile.die_positions())

    def test_radial_gradient_shows_in_the_population(self):
        # gain_radial_db < 0: center dies must beat edge dies on average
        profile = WaferMapProfile(grid=12)
        positions = profile.die_positions()
        center_gain, edge_gain = [], []
        for seed in range(5):
            devices = profile.wafer_devices(np.random.default_rng(seed))
            for (x, y), device in zip(positions, devices):
                r2 = x * x + y * y
                if r2 < 0.25:
                    center_gain.append(device.specs().gain_db)
                elif r2 > 0.75:
                    edge_gain.append(device.specs().gain_db)
        assert np.mean(center_gain) > np.mean(edge_gain)

    def test_noise_floor_is_clamped(self):
        # absurd NF spread must never produce a sub-physical noise figure
        profile = WaferMapProfile(grid=6, nf_nominal_db=0.0, nf_sigma_db=5.0)
        devices = profile.wafer_devices(np.random.default_rng(3))
        assert min(d.specs().nf_db for d in devices) >= 0.1

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            WaferMapProfile(grid=0).die_positions()


class TestTrafficGenerator:
    def test_identically_built_generators_replay_the_campaign(self):
        def make():
            return TrafficGenerator(
                WaferMapProfile(grid=6), master_seed=11, lot_size=5, n_cells=3
            )

        first = list(make().lots(7))
        second = list(make().lots(7))
        for a, b in zip(first, second):
            assert a.lot_index == b.lot_index
            assert a.cell_id == b.cell_id
            assert a.wafer_index == b.wafer_index
            assert np.array_equal(_spec_matrix(a.devices), _spec_matrix(b.devices))
            assert a.seed.entropy == b.seed.entropy
            assert a.seed.spawn_key == b.seed.spawn_key

    def test_repeated_lots_calls_do_not_drift(self):
        # SeedSequence.spawn mutates its parent; the generator must not
        gen = TrafficGenerator(WaferMapProfile(grid=6), master_seed=4, lot_size=4)
        first = list(gen.lots(5))
        second = list(gen.lots(5))
        for a, b in zip(first, second):
            assert a.seed.spawn_key == b.seed.spawn_key
            assert np.array_equal(_spec_matrix(a.devices), _spec_matrix(b.devices))

    def test_stream_prefix_equals_bounded_lots(self):
        gen = TrafficGenerator(WaferMapProfile(grid=6), master_seed=9, lot_size=4)
        bounded = list(gen.lots(6))
        unbounded = []
        for order in gen.stream():
            unbounded.append(order)
            if len(unbounded) == 6:
                break
        for a, b in zip(bounded, unbounded):
            assert a.seed.spawn_key == b.seed.spawn_key
            assert np.array_equal(_spec_matrix(a.devices), _spec_matrix(b.devices))

    def test_lot_sizes_and_cell_round_robin(self):
        profile = WaferMapProfile(grid=6)
        wafer_dies = len(profile.die_positions())
        lot_size, n_cells = 7, 3
        gen = TrafficGenerator(profile, master_seed=2, lot_size=lot_size,
                               n_cells=n_cells)
        orders = list(gen.lots(12))
        assert [o.lot_index for o in orders] == list(range(12))
        assert [o.cell_id for o in orders] == [i % n_cells for i in range(12)]
        per_wafer = -(-wafer_dies // lot_size)  # ceil division
        for order in orders:
            assert order.wafer_index == order.lot_index // per_wafer
            if (order.lot_index + 1) % per_wafer:
                assert len(order.devices) == lot_size
            else:  # last lot of a wafer may be short, never empty
                assert 0 < len(order.devices) <= lot_size

    def test_lot_size_independent_wafer_population(self):
        # resizing lots repartitions the same wafers, it does not
        # resynthesize them: first-wafer devices must agree
        profile = WaferMapProfile(grid=6)
        wafer_dies = len(profile.die_positions())
        small = TrafficGenerator(profile, master_seed=5, lot_size=4)
        large = TrafficGenerator(profile, master_seed=5, lot_size=wafer_dies)
        from_small = [
            d for o in small.lots(-(-wafer_dies // 4)) for d in o.devices
        ][:wafer_dies]
        from_large = next(iter(large.lots(1))).devices
        assert np.array_equal(_spec_matrix(from_small), _spec_matrix(from_large))

    def test_validation(self):
        profile = WaferMapProfile()
        with pytest.raises(ValueError):
            TrafficGenerator(profile, 0, lot_size=0)
        with pytest.raises(ValueError):
            TrafficGenerator(profile, 0, n_cells=0)
        with pytest.raises(ValueError):
            list(TrafficGenerator(profile, 0).lots(-1))

    def test_lot_order_is_submit_ready(self):
        gen = TrafficGenerator(WaferMapProfile(grid=6), master_seed=1, lot_size=3)
        order = next(iter(gen.lots(1)))
        assert isinstance(order, LotOrder)
        assert isinstance(order.seed, np.random.SeedSequence)
        assert len(order.devices) == 3
