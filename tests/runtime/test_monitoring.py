"""Tests for repro.runtime.monitoring (golden-device drift monitor)."""

import numpy as np
import pytest

from repro.runtime.monitoring import GoldenSignatureMonitor


def make_monitor(m=32, sigma=1e-4, **kw):
    rng = np.random.default_rng(0)
    reference = rng.uniform(0.05, 0.2, m)
    return GoldenSignatureMonitor(reference, noise_sigma=sigma, **kw), reference


class TestScoring:
    def test_in_control_on_noise_only(self):
        monitor, ref = make_monitor()
        rng = np.random.default_rng(1)
        for _ in range(20):
            state = monitor.check(ref + rng.normal(0, 1e-4, len(ref)))
            assert state.in_control
        assert monitor.checks_until_alarm() is None

    def test_raw_score_near_one_for_pure_noise(self):
        monitor, ref = make_monitor()
        rng = np.random.default_rng(2)
        scores = [
            monitor.check(ref + rng.normal(0, 1e-4, len(ref))).raw_score
            for _ in range(50)
        ]
        assert np.mean(scores) == pytest.approx(1.0, rel=0.1)

    def test_step_drift_alarms(self):
        monitor, ref = make_monitor()
        rng = np.random.default_rng(3)
        # healthy phase
        for _ in range(5):
            monitor.check(ref + rng.normal(0, 1e-4, len(ref)))
        # the source drops 0.1 dB: ~1.2% multiplicative change,
        # enormous against 1e-4 noise on 0.1-level bins
        drifted = ref * 10 ** (-0.1 / 20)
        for _ in range(5):
            monitor.check(drifted + rng.normal(0, 1e-4, len(ref)))
        assert not monitor.in_control
        assert monitor.checks_until_alarm() is not None
        assert monitor.checks_until_alarm() > 5  # alarmed only after the step

    def test_gradual_drift_eventually_alarms(self):
        monitor, ref = make_monitor(sigma=1e-3)
        rng = np.random.default_rng(4)
        scale = 1.0
        alarmed = False
        for _ in range(60):
            scale *= 0.998  # slow aging
            state = monitor.check(ref * scale + rng.normal(0, 1e-3, len(ref)))
            alarmed = alarmed or not state.in_control
        assert alarmed

    def test_ewma_smooths_single_outlier(self):
        monitor, ref = make_monitor(smoothing=0.2)
        rng = np.random.default_rng(5)
        for _ in range(10):
            monitor.check(ref + rng.normal(0, 1e-4, len(ref)))
        # one mildly wild capture (vibration during the check):
        # 8 noise-sigmas of offset on every bin
        state = monitor.check(ref + 8e-4)
        # raw score breaches the limit but the EWMA keeps the chart calm
        assert state.raw_score > monitor.control_limit
        assert state.in_control


class TestValidation:
    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            GoldenSignatureMonitor(np.zeros(0), 1e-4)
        with pytest.raises(ValueError):
            GoldenSignatureMonitor(np.ones(4), 0.0)
        with pytest.raises(ValueError):
            GoldenSignatureMonitor(np.ones(4), 1e-4, smoothing=0.0)
        with pytest.raises(ValueError):
            GoldenSignatureMonitor(np.ones(4), 1e-4, control_limit=0.0)

    def test_length_mismatch(self):
        monitor, _ = make_monitor(m=8)
        with pytest.raises(ValueError):
            monitor.check(np.zeros(9))

    def test_in_control_before_checks(self):
        monitor, _ = make_monitor()
        assert monitor.in_control
