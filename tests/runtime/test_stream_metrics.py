"""Tests for repro.runtime.metrics and the stream health monitor.

Every instrument takes plain-float timestamps from an injected clock,
so these tests drive them with synthetic time and never sleep.
"""

import json

import numpy as np
import pytest

from repro.runtime.metrics import LatencyTracker, MetricsSnapshot, ThroughputMeter
from repro.runtime.monitoring import StreamHealthMonitor


def _snapshot(**overrides):
    base = dict(
        devices_emitted=100,
        lots_completed=4,
        lots_in_flight=1,
        devices_in_flight=25,
        queue_depth=1,
        queue_capacity=8,
        duts_per_second=50.0,
        duts_per_second_windowed=50.0,
        latency_p50_s=0.010,
        latency_p99_s=0.025,
        latency_mean_s=0.012,
        latency_worst_s=0.030,
        elapsed_s=2.0,
    )
    base.update(overrides)
    return MetricsSnapshot(**base)


class TestThroughputMeter:
    def test_cumulative_rate(self):
        meter = ThroughputMeter()
        for t in (0.0, 1.0, 2.0, 3.0):
            meter.record(t)
        # 4 devices across a 3 s span = 1 inter-arrival per second
        assert meter.total == 4
        assert meter.cumulative_rate() == pytest.approx(1.0)

    def test_batch_counts(self):
        meter = ThroughputMeter()
        meter.record(0.0, count=5)
        meter.record(2.0, count=5)
        assert meter.total == 10
        assert meter.cumulative_rate() == pytest.approx(9 / 2.0)
        meter.record(3.0, count=0)  # no-op
        assert meter.total == 10

    def test_windowed_rate_tracks_recent_speed(self):
        meter = ThroughputMeter(window=4)
        # slow warm-up, then 10x faster: the window must see the fast part
        for t in (0.0, 10.0):
            meter.record(t)
        for t in (10.1, 10.2, 10.3, 10.4):
            meter.record(t)
        assert meter.windowed_rate() == pytest.approx(10.0, rel=1e-6)
        assert meter.cumulative_rate() < 1.0

    def test_degenerate_cases(self):
        meter = ThroughputMeter()
        assert meter.cumulative_rate() == 0.0
        assert meter.windowed_rate() == 0.0
        meter.record(1.0)
        assert meter.cumulative_rate() == 0.0  # one point is not a rate
        meter.record(1.0)  # same instant: zero span stays rate 0
        assert meter.cumulative_rate() == 0.0
        with pytest.raises(ValueError):
            ThroughputMeter(window=1)


class TestLatencyTracker:
    def test_quantiles_over_known_data(self):
        tracker = LatencyTracker()
        for latency in np.linspace(0.0, 1.0, 101):
            tracker.record(latency)
        assert tracker.p50 == pytest.approx(0.50, abs=1e-9)
        assert tracker.p99 == pytest.approx(0.99, abs=1e-9)
        assert tracker.quantile(0.0) == pytest.approx(0.0)
        assert tracker.worst == pytest.approx(1.0)
        assert tracker.mean == pytest.approx(0.5)
        assert tracker.count == 101

    def test_ring_is_bounded_but_totals_stay_exact(self):
        tracker = LatencyTracker(window=10)
        for latency in range(100):
            tracker.record(float(latency))
        # quantiles see only the last 10 observations...
        assert tracker.quantile(0.0) == pytest.approx(90.0)
        # ...while count / mean / worst cover the whole stream
        assert tracker.count == 100
        assert tracker.mean == pytest.approx(np.mean(np.arange(100.0)))
        assert tracker.worst == pytest.approx(99.0)

    def test_empty_and_validation(self):
        tracker = LatencyTracker()
        assert tracker.p50 == 0.0
        assert tracker.mean == 0.0
        with pytest.raises(ValueError):
            tracker.quantile(1.5)
        with pytest.raises(ValueError):
            LatencyTracker(window=0)


class TestMetricsSnapshot:
    def test_json_roundtrip(self):
        snapshot = _snapshot()
        assert json.loads(snapshot.to_json()) == snapshot.to_dict()
        assert snapshot.to_dict()["devices_emitted"] == 100

    def test_summary_reads_like_a_dashboard_line(self):
        line = _snapshot().summary()
        assert "100 DUTs" in line
        assert "50.0 DUTs/s" in line
        assert "p99 25.0 ms" in line
        assert "queue 1/8" in line


class TestStreamHealthMonitor:
    def test_healthy_by_default(self):
        monitor = StreamHealthMonitor()
        assert monitor.healthy
        state = monitor.observe(_snapshot())
        assert state.healthy
        assert state.reasons == ()

    def test_throughput_floor_uses_ewma(self):
        monitor = StreamHealthMonitor(min_duts_per_second=10.0, smoothing=0.5)
        assert monitor.observe(
            _snapshot(duts_per_second_windowed=50.0)
        ).healthy
        # one slow snapshot halves the EWMA (25 > 10): still healthy
        assert monitor.observe(_snapshot(duts_per_second_windowed=0.0)).healthy
        # a sustained stall drags it under the floor
        state = monitor.observe(_snapshot(duts_per_second_windowed=0.0))
        state = monitor.observe(_snapshot(duts_per_second_windowed=0.0))
        assert not state.healthy
        assert any("throughput" in reason for reason in state.reasons)
        assert not monitor.healthy

    def test_queue_saturation_needs_patience(self):
        monitor = StreamHealthMonitor(max_queue_fraction=0.75, queue_patience=3)
        saturated = _snapshot(queue_depth=7, queue_capacity=8)
        assert monitor.observe(saturated).healthy
        assert monitor.observe(saturated).healthy
        state = monitor.observe(saturated)  # third consecutive check
        assert not state.healthy
        assert any("queue" in reason for reason in state.reasons)

    def test_queue_drain_resets_patience(self):
        monitor = StreamHealthMonitor(max_queue_fraction=0.75, queue_patience=2)
        saturated = _snapshot(queue_depth=8, queue_capacity=8)
        monitor.observe(saturated)
        monitor.observe(_snapshot(queue_depth=0))  # drained: counter resets
        assert monitor.observe(saturated).healthy

    def test_latency_ceiling(self):
        monitor = StreamHealthMonitor(max_latency_p99_s=0.020)
        state = monitor.observe(_snapshot(latency_p99_s=0.050))
        assert not state.healthy
        assert any("p99" in reason for reason in state.reasons)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamHealthMonitor(min_duts_per_second=-1.0)
        with pytest.raises(ValueError):
            StreamHealthMonitor(max_queue_fraction=0.0)
        with pytest.raises(ValueError):
            StreamHealthMonitor(smoothing=0.0)
        with pytest.raises(ValueError):
            StreamHealthMonitor(queue_patience=0)
