"""Tests for repro.runtime.service and the stream datatypes.

The contracts under test, in order of importance:

* bit-equality -- streamed records match the offline
  ``ProductionTestFlow.run`` for the same (devices, master seed) pair,
  on every executor backend;
* graceful shutdown -- ``close()`` drains every accepted lot, rejects
  new submissions with :class:`ServiceClosed`, and never drops a
  record, including the empty-stream and single-device edge cases;
* backpressure -- a full bounded ingest queue surfaces as
  :class:`SubmitTimeout`, not as unbounded memory;
* failure transparency -- a capture error mid-stream is re-raised at
  ``close()``, not swallowed by the dispatcher thread.
"""

import queue
import threading

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.runtime.calibration import CalibrationSession
from repro.runtime.production import ProductionTestFlow
from repro.runtime.service import StreamingTestService
from repro.runtime.specs import lna_limits
from repro.runtime.stream import (
    Lot,
    ServiceClosed,
    StreamRecord,
    SubmitTimeout,
    batched,
    iter_lot_chunks,
)
from repro.testgen.pwl import StimulusEncoding

BACKENDS = [None, "thread:2", "process:2"]


@pytest.fixture(scope="module")
def flow_setup():
    """A small but complete calibrated production flow."""
    rng = np.random.default_rng(42)
    space = ParameterSpace(
        [
            ProcessParameter("gain_db", 16.0, 0.08),
            ProcessParameter("nf_db", 2.2, 0.10),
            ProcessParameter("iip3_dbm", 3.0, 0.10),
        ]
    )

    def factory(params):
        return BehavioralAmplifier(
            900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
        )

    config = SignaturePathConfig(
        digitizer_noise_vrms=1e-3, digitizer_bits=None, include_device_noise=False
    )
    board = SignatureTestBoard(config)
    stim = StimulusEncoding(8, config.capture_seconds, 0.4).decode(
        np.array([-0.2, -0.1, 0.0, 0.1, 0.2, 0.15, 0.05, -0.15])
    )

    train_points = space.sample(rng, 40)
    train_devices = [factory(space.to_dict(p)) for p in train_points]
    train_specs = np.vstack([d.specs().as_vector() for d in train_devices])
    train_sigs = np.vstack(
        [board.signature(d, stim, rng=rng) for d in train_devices]
    )
    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
    return space, factory, flow


def _lot_devices(flow_setup, n, seed=0):
    space, factory, _ = flow_setup
    rng = np.random.default_rng(seed)
    return [factory(space.to_dict(p)) for p in space.sample(rng, n)]


def _assert_records_match(stream_records, offline_records):
    assert len(stream_records) == len(offline_records)
    for stream_record, reference in zip(stream_records, offline_records):
        assert stream_record.record.device_id == reference.device_id
        assert np.array_equal(stream_record.record.signature, reference.signature)
        assert np.array_equal(
            stream_record.record.predicted.as_vector(),
            reference.predicted.as_vector(),
        )
        assert stream_record.record.passed == reference.passed


class TestBitEquality:
    @pytest.mark.parametrize("executor", BACKENDS)
    def test_streamed_matches_offline(self, flow_setup, executor):
        flow = flow_setup[2]
        devices = _lot_devices(flow_setup, 7)
        offline = flow.run(devices, np.random.default_rng(11))
        with StreamingTestService(flow, executor=executor, chunksize=2) as svc:
            svc.submit(devices, np.random.default_rng(11))
            svc.close()
            _assert_records_match(list(svc.records()), offline.records)

    def test_multi_lot_interleaving_preserves_per_lot_results(self, flow_setup):
        flow = flow_setup[2]
        lots = {i: _lot_devices(flow_setup, 3 + i, seed=i) for i in range(3)}
        with StreamingTestService(flow, executor="thread:2") as svc:
            for i, devices in lots.items():
                svc.submit(devices, np.random.default_rng(100 + i), cell_id=i)
            svc.close()
            streamed = list(svc.records())
        for i, devices in lots.items():
            offline = flow.run(devices, np.random.default_rng(100 + i))
            mine = [r for r in streamed if r.lot_id == i]
            assert all(r.cell_id == i for r in mine)
            _assert_records_match(mine, offline.records)


class TestGracefulShutdown:
    @pytest.mark.parametrize("executor", BACKENDS)
    def test_empty_stream(self, flow_setup, executor):
        flow = flow_setup[2]
        with StreamingTestService(flow, executor=executor) as svc:
            svc.close()
            assert list(svc.records()) == []
            snapshot = svc.metrics()
        assert snapshot.devices_emitted == 0
        assert snapshot.lots_completed == 0
        assert snapshot.lots_in_flight == 0

    @pytest.mark.parametrize("executor", BACKENDS)
    def test_single_device_stream(self, flow_setup, executor):
        flow = flow_setup[2]
        devices = _lot_devices(flow_setup, 1)
        offline = flow.run(devices, np.random.default_rng(5))
        with StreamingTestService(flow, executor=executor) as svc:
            svc.submit(devices, np.random.default_rng(5))
            svc.close()
            _assert_records_match(list(svc.records()), offline.records)

    def test_close_drains_every_accepted_lot(self, flow_setup):
        flow = flow_setup[2]
        n_lots, lot_size = 6, 4
        with StreamingTestService(flow, max_pending_lots=2) as svc:
            for i in range(n_lots):
                svc.submit(_lot_devices(flow_setup, lot_size, seed=i), i)
            svc.close()
            records = list(svc.records())
            snapshot = svc.metrics()
        assert len(records) == n_lots * lot_size
        assert snapshot.lots_completed == n_lots
        assert snapshot.devices_in_flight == 0

    def test_submit_after_close_is_rejected(self, flow_setup):
        flow = flow_setup[2]
        svc = StreamingTestService(flow)
        svc.close()
        assert svc.closed
        with pytest.raises(ServiceClosed):
            svc.submit(_lot_devices(flow_setup, 2), 0)

    def test_close_is_idempotent(self, flow_setup):
        flow = flow_setup[2]
        svc = StreamingTestService(flow)
        svc.submit(_lot_devices(flow_setup, 2), 0)
        svc.close()
        svc.close()
        assert len(list(svc.records())) == 2

    def test_concurrent_drain_never_drops_a_record(self, flow_setup):
        flow = flow_setup[2]
        n_lots, lot_size = 5, 3
        got = []
        with StreamingTestService(flow, executor="thread:2") as svc:
            drainer = threading.Thread(
                target=lambda: got.extend(svc.records()), daemon=True
            )
            drainer.start()
            for i in range(n_lots):
                svc.submit(_lot_devices(flow_setup, lot_size, seed=i), i)
            svc.close()
            drainer.join(timeout=30)
        assert not drainer.is_alive()
        assert len(got) == n_lots * lot_size
        assert sorted({r.lot_id for r in got}) == list(range(n_lots))


class _GatedBoard:
    """Board proxy that blocks captures until the test opens the gate."""

    def __init__(self, board, gate):
        self._board = board
        self._gate = gate

    def __getattr__(self, name):
        return getattr(self._board, name)

    def signature_batch(self, *args, **kwargs):
        self._gate.wait(timeout=30)
        return self._board.signature_batch(*args, **kwargs)


class _BrokenBoard:
    """Board proxy whose captures always fail."""

    def __init__(self, board):
        self._board = board

    def __getattr__(self, name):
        return getattr(self._board, name)

    def signature_batch(self, *args, **kwargs):
        raise RuntimeError("capture exploded")


def _proxied_flow(flow, board):
    return ProductionTestFlow(
        board, flow.stimulus, flow.calibration, limits=flow.limits
    )


class TestBackpressure:
    def test_full_queue_times_out(self, flow_setup):
        flow = flow_setup[2]
        gate = threading.Event()
        slow = _proxied_flow(flow, _GatedBoard(flow.board, gate))
        svc = StreamingTestService(slow, max_pending_lots=1)
        try:
            # lot 1 occupies the dispatcher (blocked on the gate), lot 2
            # fills the one-slot inbox, so lot 3 must hit the timeout
            svc.submit(_lot_devices(flow_setup, 2, seed=0), 0)
            svc.submit(_lot_devices(flow_setup, 2, seed=1), 1, timeout=30)
            with pytest.raises(SubmitTimeout):
                svc.submit(_lot_devices(flow_setup, 2, seed=2), 2, timeout=0.05)
        finally:
            gate.set()
            svc.close()
        # backpressure rejected the lot; the accepted ones still drained
        assert len(list(svc.records())) == 4

    def test_capture_failure_surfaces_on_close(self, flow_setup):
        flow = flow_setup[2]
        broken = _proxied_flow(flow, _BrokenBoard(flow.board))
        svc = StreamingTestService(broken)
        svc.submit(_lot_devices(flow_setup, 2), 0)
        with pytest.raises(RuntimeError, match="capture exploded"):
            svc.close()

    def test_records_timeout_signals_stalled_stream(self, flow_setup):
        flow = flow_setup[2]
        gate = threading.Event()
        slow = _proxied_flow(flow, _GatedBoard(flow.board, gate))
        svc = StreamingTestService(slow)
        try:
            svc.submit(_lot_devices(flow_setup, 2), 0)
            with pytest.raises(queue.Empty):
                next(svc.records(timeout=0.05))
        finally:
            gate.set()
            svc.close()


class TestServiceMetrics:
    def test_quiescent_snapshot_is_consistent(self, flow_setup):
        flow = flow_setup[2]
        with StreamingTestService(flow, max_pending_lots=3) as svc:
            for i in range(2):
                svc.submit(_lot_devices(flow_setup, 4, seed=i), i)
            svc.close()
            list(svc.records())
            snapshot = svc.metrics()
        assert snapshot.devices_emitted == 8
        assert snapshot.lots_completed == 2
        assert snapshot.lots_in_flight == 0
        assert snapshot.devices_in_flight == 0
        assert snapshot.queue_capacity == 3
        assert snapshot.duts_per_second > 0
        assert 0 < snapshot.latency_p50_s <= snapshot.latency_worst_s

    def test_injected_clock_drives_timestamps(self, flow_setup):
        flow = flow_setup[2]
        with StreamingTestService(flow, clock=lambda: 5.0) as svc:
            svc.submit(_lot_devices(flow_setup, 2), 0)
            svc.close()
            records = list(svc.records())
            snapshot = svc.metrics()
        assert snapshot.elapsed_s == 0.0
        assert all(r.latency == 0.0 for r in records)

    def test_constructor_validation(self, flow_setup):
        flow = flow_setup[2]
        with pytest.raises(ValueError):
            StreamingTestService(flow, max_pending_lots=0)
        with pytest.raises(ValueError):
            StreamingTestService(flow, chunksize=0)


class TestStreamTypes:
    def test_lot_seed_count_must_match_devices(self):
        with pytest.raises(ValueError):
            Lot(lot_id=0, devices=[object()], seeds=[])

    def test_seeded_lot_freezes_per_device_streams(self):
        lot = Lot.seeded(3, [object(), object()], seed=7, cell_id=1)
        assert len(lot) == 2
        assert lot.cell_id == 1
        assert all(
            isinstance(s, np.random.SeedSequence) for s in lot.seeds
        )
        replay = Lot.seeded(3, [object(), object()], seed=7)
        assert [s.entropy for s in lot.seeds] == [s.entropy for s in replay.seeds]

    def test_iter_lot_chunks_covers_in_order(self):
        lot = Lot.seeded(0, [f"d{i}" for i in range(5)], seed=1)
        chunks = list(iter_lot_chunks(lot, 2))
        assert [ids for ids, _, _ in chunks] == [[0, 1], [2, 3], [4]]
        assert [devs for _, devs, _ in chunks] == [
            ["d0", "d1"], ["d2", "d3"], ["d4"]
        ]
        with pytest.raises(ValueError):
            list(iter_lot_chunks(lot, 0))

    def test_batched_waves(self):
        assert list(batched(range(5), 2)) == [[0, 1], [2, 3], [4]]
        assert list(batched([], 3)) == []
        with pytest.raises(ValueError):
            list(batched(range(3), 0))

    def test_stream_record_exposes_device_id(self, flow_setup):
        flow = flow_setup[2]
        rec = flow.test_device(
            _lot_devices(flow_setup, 1)[0], np.random.default_rng(0), device_id=9
        )
        wrapped = StreamRecord(lot_id=2, cell_id=1, record=rec, latency=0.5)
        assert wrapped.device_id == 9
