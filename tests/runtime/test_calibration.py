"""Tests for repro.runtime.calibration."""

import numpy as np
import pytest

from repro.circuits.device import SpecSet
from repro.runtime.calibration import (
    CalibrationSession,
    default_candidates,
)


def _basis():
    """Fixed 2-D mixing basis, identical on every call (seeded)."""
    return np.random.default_rng(99).normal(size=(2, 12))


def synthetic_dataset(rng, n=60):
    """Signatures lying on a fixed 2-D manifold; specs are functions of it.

    The mixing basis is shared across calls so training and validation
    sets live on the same manifold, as real signatures do.
    """
    basis = _basis()
    u = rng.uniform(0.5, 1.5, size=(n, 2))
    signatures = u @ basis + rng.normal(0, 1e-3, size=(n, basis.shape[1]))
    specs = np.column_stack(
        [
            20.0 * np.log10(u[:, 0]) + 16.0,  # "gain"
            2.0 + 0.3 * u[:, 1],  # "nf"
            3.0 + 5.0 * np.log10(u[:, 0] / u[:, 1]),  # "iip3"
        ]
    )
    return signatures, specs


class TestDefaultCandidates:
    def test_contains_model_families(self):
        zoo = default_candidates(100)
        names = " ".join(zoo)
        assert "ridge" in names
        assert "poly" in names
        assert "knn" in names
        assert "mars" in names

    def test_all_constructible(self):
        for factory in default_candidates(28).values():
            model = factory()
            assert hasattr(model, "fit")


class TestCalibrationSession:
    def test_learns_synthetic_mapping(self):
        rng = np.random.default_rng(0)
        sig_train, spec_train = synthetic_dataset(rng, n=80)
        sig_val, spec_val = synthetic_dataset(rng, n=30)
        model = CalibrationSession().fit(sig_train, spec_train, rng=rng)
        pred = model.predict_matrix(sig_val)
        for j in range(3):
            err = np.std(pred[:, j] - spec_val[:, j])
            spread = np.std(spec_val[:, j])
            assert err < 0.2 * spread

    def test_predict_single(self):
        rng = np.random.default_rng(1)
        sigs, specs = synthetic_dataset(rng)
        model = CalibrationSession().fit(sigs, specs, rng=rng)
        out = model.predict(sigs[0])
        assert isinstance(out, SpecSet)

    def test_custom_spec_names(self):
        rng = np.random.default_rng(2)
        sigs, specs = synthetic_dataset(rng)
        session = CalibrationSession(spec_names=("gain_db", "iip3_dbm"))
        model = session.fit(sigs, specs[:, [0, 2]], rng=rng)
        assert model.predict_matrix(sigs[:5]).shape == (5, 2)

    def test_summary_mentions_chosen_models(self):
        rng = np.random.default_rng(3)
        sigs, specs = synthetic_dataset(rng)
        model = CalibrationSession().fit(sigs, specs, rng=rng)
        text = model.summary()
        for name in ("gain_db", "nf_db", "iip3_dbm"):
            assert name in text

    def test_validation(self):
        rng = np.random.default_rng(4)
        session = CalibrationSession()
        with pytest.raises(ValueError, match="2-D"):
            session.fit(np.zeros(10), np.zeros((10, 3)), rng=rng)
        with pytest.raises(ValueError, match="row counts"):
            session.fit(np.zeros((10, 4)), np.zeros((9, 3)), rng=rng)
        with pytest.raises(ValueError, match="spec columns"):
            session.fit(np.zeros((10, 4)), np.zeros((10, 2)), rng=rng)
        with pytest.raises(ValueError, match="at least 8"):
            session.fit(np.zeros((5, 4)), np.zeros((5, 3)), rng=rng)
