"""Empty-lot and single-device edge cases across every executor backend.

The batched (``signature_batch``), serial, and pooled paths must agree
not just on values but on *shapes*: an empty lot is an ``(0, m)``
matrix whose bin count matches a populated capture, never a degenerate
``(0, 0)``.
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.runtime.calibration import measure_signatures
from repro.runtime.executor import SerialExecutor

BACKENDS = [None, "thread:2", "process:2", SerialExecutor()]


@pytest.fixture(scope="module")
def bench():
    config = SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=0.45e6,
        lpf_order=5,
        digitizer_rate=2e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=64e-6,
        envelope_oversample=2,
        dut_coupling="tuned",
    )
    board = SignatureTestBoard(config)
    stimulus = PiecewiseLinearStimulus(
        np.random.default_rng(5).uniform(-0.8, 0.8, size=5),
        duration=config.capture_seconds,
    )
    device = BehavioralAmplifier(900e6, 12.0, 2.0, -5.0)
    return board, stimulus, device


@pytest.mark.parametrize("executor", BACKENDS, ids=["serial", "thread", "process", "instance"])
class TestMeasureSignatures:
    def test_empty_lot_keeps_bin_count(self, bench, executor):
        board, stimulus, device = bench
        one = measure_signatures(
            board, stimulus, [device], np.random.default_rng(0), executor=executor
        )
        empty = measure_signatures(
            board, stimulus, [], np.random.default_rng(0), executor=executor
        )
        assert empty.shape == (0, one.shape[1])
        narrow = measure_signatures(
            board,
            stimulus,
            [],
            np.random.default_rng(0),
            n_bins=9,
            executor=executor,
        )
        assert narrow.shape == (0, 9)

    def test_single_device_matches_serial_bit_for_bit(self, bench, executor):
        board, stimulus, device = bench
        reference = measure_signatures(
            board, stimulus, [device], np.random.default_rng(1)
        )
        sigs = measure_signatures(
            board, stimulus, [device], np.random.default_rng(1), executor=executor
        )
        assert sigs.shape == reference.shape == (1, reference.shape[1])
        assert np.array_equal(sigs, reference)


class TestBoardBatchShapes:
    def test_signature_batch_empty_is_0_by_m(self, bench):
        board, stimulus, device = bench
        one = board.signature_batch([device], stimulus)
        empty = board.signature_batch([], stimulus)
        assert empty.shape == (0, one.shape[1])
        assert board.signature_batch([], stimulus, n_bins=7).shape == (0, 7)

    def test_capture_batch_empty_is_empty_list(self, bench):
        board, stimulus, _ = bench
        assert board.capture_batch([], stimulus) == []
