"""Tests for repro.runtime.artifacts (test-program persistence)."""

import numpy as np
import pytest

from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.runtime.artifacts import load_test_program, save_test_program
from repro.runtime.artifacts import TestProgram as Program
from repro.runtime.calibration import CalibrationSession
from repro.runtime.specs import lna_limits


@pytest.fixture(scope="module")
def program():
    """A small but genuine fitted program."""
    rng = np.random.default_rng(0)
    basis = rng.normal(size=(2, 10))
    u = rng.uniform(0.8, 1.2, size=(40, 2))
    sigs = u @ basis + rng.normal(0, 1e-3, size=(40, 10))
    specs = np.column_stack(
        [16 + 8 * np.log10(u[:, 0]), 2 + 0.3 * u[:, 1], 3 + u[:, 0] - u[:, 1]]
    )
    calibration = CalibrationSession().fit(sigs, specs, rng=rng)
    stimulus = PiecewiseLinearStimulus(rng.uniform(-0.3, 0.3, 16), 5e-6, 0.4)
    return Program(
        stimulus=stimulus,
        calibration=calibration,
        limits=lna_limits(),
        metadata={"dut": "unit-test", "rev": "A"},
    ), sigs


class TestRoundtrip:
    def test_save_load_identical_predictions(self, program, tmp_path):
        prog, sigs = program
        path = save_test_program(prog, tmp_path / "prog.rtp")
        loaded = load_test_program(path)
        before = prog.calibration.predict_matrix(sigs[:5])
        after = loaded.calibration.predict_matrix(sigs[:5])
        assert np.array_equal(before, after)

    def test_stimulus_survives(self, program, tmp_path):
        prog, _ = program
        path = save_test_program(prog, tmp_path / "prog.rtp")
        loaded = load_test_program(path)
        assert np.array_equal(loaded.stimulus.levels, prog.stimulus.levels)
        assert loaded.stimulus.duration == prog.stimulus.duration

    def test_metadata_and_limits_survive(self, program, tmp_path):
        prog, _ = program
        loaded = load_test_program(save_test_program(prog, tmp_path / "p.rtp"))
        assert loaded.metadata == {"dut": "unit-test", "rev": "A"}
        assert set(loaded.limits.limits) == set(prog.limits.limits)

    def test_describe(self, program):
        prog, _ = program
        text = prog.describe()
        assert "stimulus" in text
        assert "gain_db" in text
        assert "dut: unit-test" in text


class TestValidation:
    def test_wrong_magic_rejected(self, tmp_path):
        bad = tmp_path / "not_a_program.rtp"
        bad.write_bytes(b"hello world, definitely not a program")
        with pytest.raises(ValueError, match="not a repro test-program"):
            load_test_program(bad)

    def test_wrong_version_rejected(self, program, tmp_path):
        prog, _ = program
        path = save_test_program(prog, tmp_path / "p.rtp")
        data = bytearray(path.read_bytes())
        data[len(b"repro-test-program") + 1] = 99  # bump version byte
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            load_test_program(path)

    def test_save_type_checked(self, tmp_path):
        with pytest.raises(TypeError):
            save_test_program("not a program", tmp_path / "p.rtp")
