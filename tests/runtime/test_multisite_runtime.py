"""Multi-site boards through the runtime layer.

Site-aligned chunking is the load-bearing contract: crosstalk couples
positional insertion groups, so ``_chunk_bounds`` must never split one
-- ``measure_signatures``, ``ProductionTestFlow.run`` and the
streaming service all stay bit-identical to the whole-lot capture for
any executor and any requested chunk size.  On top of that, every
record must carry the site that captured it, and the stream metrics
must expose per-site counts and the modeled contention wait.
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.device import SpecSet
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig
from repro.regression.linear import RidgeRegression
from repro.regression.pipeline import Pipeline
from repro.regression.scaling import StandardScaler
from repro.runtime.calibration import (
    CalibrationModel,
    _chunk_bounds,
    measure_signatures,
)
from repro.runtime.executor import ThreadExecutor, get_executor
from repro.runtime.production import ProductionTestFlow
from repro.runtime.service import StreamingTestService
from repro.runtime.specs import lna_limits


def _cfg():
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=0.45e6,
        lpf_order=5,
        digitizer_rate=2e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=64e-6,
        envelope_oversample=2,
        dut_coupling="tuned",
    )


def _board(n_sites=2, **site_overrides):
    sites = dict(
        n_sites=n_sites,
        crosstalk_coupling=0.02,
        lo_retune_seconds=1e-3,
        digitizer_readout_seconds=2e-3,
    )
    sites.update(site_overrides)
    return MultiSiteBoard(_cfg(), MultiSiteConfig(**sites))


def _lot(n, seed=3):
    rng = np.random.default_rng(seed)
    return [
        BehavioralAmplifier(
            900e6,
            float(rng.uniform(8.0, 18.0)),
            float(rng.uniform(0.5, 3.5)),
            float(rng.uniform(-12.0, -2.0)),
        )
        for _ in range(n)
    ]


@pytest.fixture
def stim():
    rng = np.random.default_rng(5)
    return PiecewiseLinearStimulus(rng.uniform(-0.7, 0.7, 6), 64e-6)


def _ridge_flow(board, stim, seed=41):
    """A small calibrated flow through the given board."""
    rng = np.random.default_rng(seed)
    train = _lot(12, seed=seed)
    sigs = measure_signatures(
        board, stim, train, np.random.default_rng(int(rng.integers(0, 2**63)))
    )
    spec_matrix = np.vstack([d.specs().as_vector() for d in train])
    pipelines = {}
    for j, name in enumerate(SpecSet.NAMES):
        pipeline = Pipeline([StandardScaler(), RidgeRegression(alpha=1.0)])
        pipeline.fit(sigs, spec_matrix[:, j])
        pipelines[name] = pipeline
    calibration = CalibrationModel(
        spec_names=SpecSet.NAMES,
        pipelines=pipelines,
        chosen={name: "ridge_1" for name in SpecSet.NAMES},
        cv_scores={name: {"ridge_1": 0.0} for name in SpecSet.NAMES},
    )
    return ProductionTestFlow(board, stim, calibration, limits=lna_limits())


class TestChunkAlignment:
    def test_chunk_bounds_round_up_to_alignment(self):
        ex = get_executor("thread:2")
        bounds = _chunk_bounds(10, ex, 3, 4)
        assert bounds == [(0, 4), (4, 8), (8, 10)]
        for a, b in bounds[:-1]:
            assert (b - a) % 4 == 0

    def test_alignment_one_is_unchanged(self):
        ex = get_executor("thread:2")
        assert _chunk_bounds(10, ex, 3, 1) == _chunk_bounds(10, ex, 3)

    def test_measure_signatures_chunking_invariant_with_crosstalk(self, stim):
        board = _board(n_sites=3)
        devices = _lot(8)
        whole = measure_signatures(
            board, stim, devices, np.random.default_rng(7)
        )
        for chunksize in (1, 2, 5):
            chunked = measure_signatures(
                board,
                stim,
                devices,
                np.random.default_rng(7),
                executor=ThreadExecutor(2),
                chunksize=chunksize,
            )
            assert np.array_equal(chunked, whole)


class TestProductionFlow:
    def test_records_carry_site_index(self, stim):
        board = _board(n_sites=2)
        flow = _ridge_flow(board, stim)
        result = flow.run(_lot(5, seed=9), np.random.default_rng(13))
        assert [r.site_index for r in result.records] == [0, 1, 0, 1, 0]

    def test_site_index_survives_chunked_executors(self, stim):
        board = _board(n_sites=2)
        flow = _ridge_flow(board, stim)
        devices = _lot(6, seed=9)
        serial = flow.run(devices, np.random.default_rng(13))
        pooled = flow.run(
            devices,
            np.random.default_rng(13),
            executor="thread:2",
            chunksize=3,  # rounded up to a multiple of n_sites
        )
        for a, b in zip(pooled.records, serial.records):
            assert a.site_index == b.site_index
            assert np.array_equal(a.signature, b.signature)
            assert a.passed == b.passed

    def test_test_time_is_amortized_insertion_time(self, stim):
        board = _board(n_sites=4)
        flow = _ridge_flow(board, stim)
        result = flow.run(_lot(4, seed=9), np.random.default_rng(13))
        assert result.records[0].test_time == pytest.approx(
            board.device_test_time()
        )
        assert board.device_test_time() < board.insertion_test_time()

    def test_single_site_records_default_to_site_zero(self, stim):
        from repro.loadboard.signature_path import SignatureTestBoard

        flow = _ridge_flow(SignatureTestBoard(_cfg()), stim)
        result = flow.run(_lot(3, seed=9), np.random.default_rng(13))
        assert all(r.site_index == 0 for r in result.records)


class TestStreamingMetrics:
    def test_per_site_counts_and_contention_wait(self, stim):
        board = _board(n_sites=2)
        flow = _ridge_flow(board, stim)
        with StreamingTestService(flow) as service:
            service.submit(_lot(5, seed=9), np.random.default_rng(21))
            service.submit(_lot(2, seed=10), np.random.default_rng(22))
            service.close()
            records = list(service.records())
            snapshot = service.metrics()
        assert len(records) == 7
        assert snapshot.site_devices_emitted == {0: 4, 1: 3}
        assert sum(snapshot.site_devices_emitted.values()) == 7
        expected_wait = 7 * board.arbitration_seconds() / board.n_sites
        assert snapshot.contention_wait_s == pytest.approx(expected_wait)
        for stream_record in records:
            assert stream_record.record.site_index in (0, 1)

    def test_streamed_records_match_offline_multisite_flow(self, stim):
        board = _board(n_sites=2)
        flow = _ridge_flow(board, stim)
        devices = _lot(6, seed=9)
        offline = flow.run(devices, np.random.default_rng(33))
        with StreamingTestService(flow, executor="thread:2") as service:
            service.submit(devices, np.random.default_rng(33))
            service.close()
            streamed = list(service.records())
        assert len(streamed) == len(offline.records)
        for stream_record, reference in zip(streamed, offline.records):
            assert np.array_equal(
                stream_record.record.signature, reference.signature
            )
            assert stream_record.record.site_index == reference.site_index

    def test_single_site_board_reports_no_site_metrics(self, stim):
        from repro.loadboard.signature_path import SignatureTestBoard

        flow = _ridge_flow(SignatureTestBoard(_cfg()), stim)
        with StreamingTestService(flow) as service:
            service.submit(_lot(2, seed=9), np.random.default_rng(21))
            service.close()
            list(service.records())
            snapshot = service.metrics()
        assert snapshot.site_devices_emitted is None
        assert snapshot.contention_wait_s == 0.0
