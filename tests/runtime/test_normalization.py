"""Tests for repro.runtime.normalization (golden-device normalization)."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.runtime.normalization import GoldenDeviceNormalizer


class TestNormalizerMath:
    def test_ratio_definition(self):
        golden = np.array([2.0, 4.0, 8.0])
        norm = GoldenDeviceNormalizer(golden)
        out = norm.normalize(np.array([2.0, 2.0, 2.0]))
        assert np.allclose(out, [1.0, 0.5, 0.25])

    def test_multiplicative_error_cancels(self):
        rng = np.random.default_rng(0)
        golden = rng.uniform(0.1, 1.0, 32)
        sig = rng.uniform(0.1, 1.0, 32)
        tester_response = rng.uniform(0.5, 2.0, 32)  # frequency-dependent gain
        norm_a = GoldenDeviceNormalizer(golden)
        norm_b = GoldenDeviceNormalizer(golden * tester_response)
        assert np.allclose(
            norm_a.normalize(sig), norm_b.normalize(sig * tester_response)
        )

    def test_empty_bins_use_global_reference(self):
        golden = np.array([1.0, 0.0, 1e-9])
        norm = GoldenDeviceNormalizer(golden, floor=1e-3)
        out = norm.normalize(np.array([0.5, 0.5, 0.5]))
        # bins 1 and 2 are below the floor: scaled by the peak (1.0)
        assert np.allclose(out, [0.5, 0.5, 0.5])

    def test_batch(self):
        golden = np.array([1.0, 2.0])
        norm = GoldenDeviceNormalizer(golden)
        batch = norm.normalize_batch(np.array([[1.0, 2.0], [2.0, 4.0]]))
        assert np.allclose(batch, [[1.0, 1.0], [2.0, 2.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            GoldenDeviceNormalizer(np.zeros(4))
        with pytest.raises(ValueError):
            GoldenDeviceNormalizer(np.ones(4), floor=2.0)
        norm = GoldenDeviceNormalizer(np.ones(4))
        with pytest.raises(ValueError):
            norm.normalize(np.ones(5))
        with pytest.raises(ValueError):
            norm.normalize_batch(np.ones((2, 5)))


class TestTesterTransfer:
    """End to end: the same device on two slightly different testers."""

    def _board(self, power_offset_db=0.0, mixer_gain=0.5):
        from repro.dsp.mixer import Mixer, MixerHarmonics

        cfg = SignaturePathConfig(
            carrier_power_dbm=10.0 + power_offset_db,
            digitizer_noise_vrms=0.0,
            digitizer_bits=None,
            include_device_noise=False,
            mixer2=Mixer(mixer_gain, MixerHarmonics.paper_model()),
        )
        return SignatureTestBoard(cfg)

    def test_normalization_removes_tester_gain_difference(self):
        rng = np.random.default_rng(1)
        stim = PiecewiseLinearStimulus(rng.uniform(-0.1, 0.1, 16), 5e-6, 0.4)
        golden = BehavioralAmplifier(900e6, 16.0, 2.0, 30.0)
        dut = BehavioralAmplifier(900e6, 16.8, 2.1, 30.0)

        board_cal = self._board()
        board_prod = self._board(mixer_gain=0.45)  # -0.9 dB of path gain

        raw_cal = board_cal.signature(dut, stim)
        raw_prod = board_prod.signature(dut, stim)
        # without normalization, the tester difference dwarfs device info
        raw_drift = np.linalg.norm(raw_prod - raw_cal) / np.linalg.norm(raw_cal)
        assert raw_drift > 0.05

        norm_cal = GoldenDeviceNormalizer.from_board(board_cal, golden, stim)
        norm_prod = GoldenDeviceNormalizer.from_board(board_prod, golden, stim)
        n_cal = norm_cal.normalize(raw_cal)
        n_prod = norm_prod.normalize(raw_prod)
        norm_drift = np.linalg.norm(n_prod - n_cal) / np.linalg.norm(n_cal)
        assert norm_drift < 0.01 * raw_drift
