"""Tests for the runtime lock-order sanitizer.

The static lock-order rule proves discipline over resolvable call
edges; these tests prove the runtime half: an inverted acquisition
order raises with the cycle named *before* the program can deadlock, a
clean workload stays clean (including ``Condition`` waits and reentrant
``RLock`` use on real threads), and hold-time budgets turn convoy locks
into reported violations.
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis.concurrency.runtime_sanitizer import (
    LockOrderViolation,
    SanitizedLock,
    SanitizedRLock,
    lock_sanitizer,
)
from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.runtime.calibration import CalibrationSession
from repro.runtime.production import ProductionTestFlow
from repro.runtime.service import StreamingTestService
from repro.runtime.specs import lna_limits
from repro.testgen.pwl import StimulusEncoding

# this module opens its own sanitizer windows; keep the suite-level
# REPRO_SANITIZE_LOCKS window from double-patching threading.Lock
pytestmark = pytest.mark.no_lock_sanitizer


class MiniService:
    """The inverted two-lock service shape from the static fixture.

    ``submit`` orders jobs -> metrics; ``metrics`` orders metrics ->
    jobs.  The static rule reports this as ``conc-lock-order-cycle``;
    the sanitizer must catch the same inversion live.
    """

    def __init__(self):
        self._jobs_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self.pending = 0
        self.emitted = 0

    def submit(self, item):
        with self._jobs_lock:
            with self._metrics_lock:
                self.pending += 1

    def metrics(self):
        with self._metrics_lock:
            with self._jobs_lock:
                return (self.pending, self.emitted)


class TestLockOrderDetection:
    def test_inversion_raises_with_cycle_named(self):
        with lock_sanitizer(fail_fast=True) as report:
            service = MiniService()
            service.submit("x")
            with pytest.raises(LockOrderViolation) as excinfo:
                service.metrics()
        assert len(excinfo.value.cycle) == 3
        assert "lock order cycle" in str(excinfo.value)
        assert "deadlock" in str(excinfo.value)
        # both lock names (creation sites in this file) appear
        for name in excinfo.value.cycle:
            assert "test_lock_sanitizer.py" in name
        assert report.violations

    def test_failed_acquire_unwinds_cleanly(self):
        with lock_sanitizer(fail_fast=True):
            service = MiniService()
            service.submit("x")
            with pytest.raises(LockOrderViolation):
                service.metrics()
            # the with-statements unwound: nothing is still held, and
            # the consistent order keeps working
            assert not service._jobs_lock.locked()
            assert not service._metrics_lock.locked()
            service.submit("y")
            assert service.pending == 2

    def test_fail_fast_off_records_for_check(self):
        with lock_sanitizer(fail_fast=False) as report:
            service = MiniService()
            service.submit("x")
            service.metrics()  # inversion recorded, not raised
        assert len(report.violations) == 1
        with pytest.raises(LockOrderViolation):
            report.check()

    def test_cycle_closed_by_a_second_thread(self):
        with lock_sanitizer(fail_fast=True) as report:
            service = MiniService()
            errors = []

            def worker():
                try:
                    service.submit("x")
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert not errors
            with pytest.raises(LockOrderViolation):
                service.metrics()
        assert ("order_edges" in report.to_dict()) and report.edges

    def test_consistent_order_is_clean(self):
        with lock_sanitizer(fail_fast=True) as report:
            a = threading.Lock()
            b = threading.Lock()

            def worker():
                for _ in range(50):
                    with a:
                        with b:
                            pass

            threads = [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert report.violations == []
        # a, b, plus each Thread's internal started-event lock
        assert report.n_locks >= 2
        assert len(report.edges) == 1
        report.check()  # must not raise


class TestHoldBudget:
    def test_long_hold_is_reported(self):
        with lock_sanitizer(fail_fast=False, max_hold_seconds=0.005) as report:
            lock = threading.Lock()
            with lock:
                time.sleep(0.02)
        assert any("held for" in v for v in report.violations)
        worst = dict(report.worst_holds())
        assert max(worst.values()) >= 0.02
        with pytest.raises(LockOrderViolation):
            report.check()

    def test_fast_hold_is_within_budget(self):
        with lock_sanitizer(fail_fast=False, max_hold_seconds=5.0) as report:
            lock = threading.Lock()
            with lock:
                pass
        assert report.violations == []


class TestSanitizedPrimitives:
    def test_patched_constructors_return_wrappers(self):
        with lock_sanitizer():
            assert isinstance(threading.Lock(), SanitizedLock)
            assert isinstance(threading.RLock(), SanitizedRLock)
        # restored on exit
        assert not isinstance(threading.Lock(), SanitizedLock)
        assert not isinstance(threading.RLock(), SanitizedRLock)

    def test_rlock_reentrancy_is_not_an_edge(self):
        with lock_sanitizer(fail_fast=True) as report:
            rlock = threading.RLock()
            with rlock:
                with rlock:
                    pass
        assert report.edges == []
        assert report.violations == []

    def test_condition_wait_across_threads(self):
        # Condition() builds on threading.RLock() -> SanitizedRLock;
        # wait() goes through _release_save/_acquire_restore
        with lock_sanitizer(fail_fast=True) as report:
            cond = threading.Condition()
            ready = []

            def worker():
                with cond:
                    while not ready:
                        cond.wait(timeout=5.0)

            t = threading.Thread(target=worker)
            t.start()
            time.sleep(0.01)
            with cond:
                ready.append(True)
                cond.notify_all()
            t.join(timeout=5.0)
            assert not t.is_alive()
        assert report.violations == []

    def test_nonblocking_acquire_never_raises(self):
        with lock_sanitizer(fail_fast=True) as report:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                # non-blocking try-acquire cannot deadlock: recorded as
                # a violation but not raised
                assert a.acquire(blocking=False)
                a.release()
        assert len(report.violations) == 1


class TestServiceUnderSanitizer:
    @pytest.fixture(scope="class")
    def flow(self):
        """A tiny calibrated flow (built outside the sanitizer window)."""
        rng = np.random.default_rng(7)
        space = ParameterSpace(
            [
                ProcessParameter("gain_db", 16.0, 0.08),
                ProcessParameter("nf_db", 2.2, 0.10),
                ProcessParameter("iip3_dbm", 3.0, 0.10),
            ]
        )

        def factory(params):
            return BehavioralAmplifier(
                900e6, params["gain_db"], params["nf_db"], params["iip3_dbm"]
            )

        config = SignaturePathConfig(
            digitizer_noise_vrms=1e-3,
            digitizer_bits=None,
            include_device_noise=False,
        )
        board = SignatureTestBoard(config)
        stim = StimulusEncoding(8, config.capture_seconds, 0.4).decode(
            np.array([-0.2, -0.1, 0.0, 0.1, 0.2, 0.15, 0.05, -0.15])
        )
        points = space.sample(rng, 16)
        devices = [factory(space.to_dict(p)) for p in points]
        specs = np.vstack([d.specs().as_vector() for d in devices])
        sigs = np.vstack([board.signature(d, stim, rng=rng) for d in devices])
        calibration = CalibrationSession().fit(sigs, specs, rng=rng)
        flow = ProductionTestFlow(board, stim, calibration, limits=lna_limits())
        return space, factory, flow

    def test_streaming_lifecycle_is_clean(self, flow):
        space, factory, production_flow = flow
        rng = np.random.default_rng(99)
        devices = [
            factory(space.to_dict(p)) for p in space.sample(rng, 6)
        ]
        with lock_sanitizer(fail_fast=True) as report:
            service = StreamingTestService(production_flow, executor="thread:2")
            service.submit(devices, np.random.default_rng(123))
            service.close()
            records = list(service.records())
        assert len(records) == len(devices)
        assert report.violations == []
        # the service and its queues really were instrumented
        assert report.n_locks >= 2
        report.check()
