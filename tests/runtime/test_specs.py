"""Tests for repro.runtime.specs."""

import pytest

from repro.circuits.device import SpecSet
from repro.runtime.specs import SpecificationLimit, SpecificationLimits, lna_limits


class TestSpecificationLimit:
    def test_min_only(self):
        lim = SpecificationLimit("gain_db", minimum=14.0)
        assert lim.check(15.0)
        assert not lim.check(13.0)

    def test_max_only(self):
        lim = SpecificationLimit("nf_db", maximum=2.5)
        assert lim.check(2.0)
        assert not lim.check(3.0)

    def test_window(self):
        lim = SpecificationLimit("gain_db", minimum=14.0, maximum=18.0)
        assert lim.check(16.0)
        assert not lim.check(19.0)

    def test_margin(self):
        lim = SpecificationLimit("gain_db", minimum=14.0, maximum=18.0)
        assert lim.margin(15.0) == pytest.approx(1.0)
        assert lim.margin(17.5) == pytest.approx(0.5)
        assert lim.margin(13.0) == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpecificationLimit("x")
        with pytest.raises(ValueError):
            SpecificationLimit("x", minimum=5.0, maximum=1.0)


class TestSpecificationLimits:
    def test_check_all(self):
        limits = lna_limits()
        good = SpecSet(gain_db=16.0, nf_db=2.0, iip3_dbm=3.0)
        bad_nf = SpecSet(gain_db=16.0, nf_db=3.5, iip3_dbm=3.0)
        assert limits.check(good)
        assert not limits.check(bad_nf)

    def test_failures_reported(self):
        limits = lna_limits()
        bad = SpecSet(gain_db=12.0, nf_db=3.5, iip3_dbm=3.0)
        failures = limits.failures(bad)
        assert set(failures) == {"gain_db", "nf_db"}
        assert all(m < 0 for m in failures.values())

    def test_worst_margin(self):
        limits = lna_limits(gain_min_db=14.0, nf_max_db=2.6, iip3_min_dbm=-1.0)
        s = SpecSet(gain_db=14.2, nf_db=2.0, iip3_dbm=3.0)
        assert limits.worst_margin(s) == pytest.approx(0.2)

    def test_key_name_consistency(self):
        with pytest.raises(ValueError):
            SpecificationLimits({"a": SpecificationLimit("b", minimum=0.0)})
