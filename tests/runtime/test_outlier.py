"""Tests for repro.runtime.outlier."""

import numpy as np
import pytest

from repro.runtime.outlier import SignatureOutlierScreen


def good_signatures(rng, n=100, m=20):
    """Signatures on a 2-D manifold plus small noise."""
    basis = np.random.default_rng(7).normal(size=(2, m))
    u = rng.uniform(0.8, 1.2, size=(n, 2))
    return u @ basis + rng.normal(0, 1e-3, size=(n, m)), basis


class TestFitting:
    def test_component_autoselection(self):
        rng = np.random.default_rng(0)
        sigs, _ = good_signatures(rng)
        screen = SignatureOutlierScreen().fit(sigs)
        assert 2 <= screen.n_components <= 8

    def test_explicit_components(self):
        rng = np.random.default_rng(1)
        sigs, _ = good_signatures(rng)
        screen = SignatureOutlierScreen(n_components=3).fit(sigs)
        assert screen.n_components == 3

    def test_requires_enough_training(self):
        with pytest.raises(ValueError):
            SignatureOutlierScreen().fit(np.zeros((4, 5)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SignatureOutlierScreen().score(np.zeros(5))


class TestScreening:
    def test_training_population_mostly_inliers(self):
        rng = np.random.default_rng(2)
        sigs, _ = good_signatures(rng, n=200)
        screen = SignatureOutlierScreen().fit(sigs)
        flags = screen.flag_batch(sigs)
        assert flags.mean() < 0.02

    def test_fresh_good_devices_pass(self):
        rng = np.random.default_rng(3)
        train, basis = good_signatures(rng, n=150)
        screen = SignatureOutlierScreen().fit(train)
        u = rng.uniform(0.8, 1.2, size=(50, 2))
        fresh = u @ basis + rng.normal(0, 1e-3, size=(50, basis.shape[1]))
        assert screen.flag_batch(fresh).mean() < 0.1

    def test_off_manifold_signature_flagged(self):
        # a catastrophic defect has a completely different spectral shape
        rng = np.random.default_rng(4)
        train, basis = good_signatures(rng, n=150)
        screen = SignatureOutlierScreen().fit(train)
        weird = rng.normal(0.0, 1.0, size=basis.shape[1])
        score = screen.score(weird)
        assert score.is_outlier
        assert score.residual > screen.threshold

    def test_in_subspace_extreme_flagged_by_mahalanobis(self):
        rng = np.random.default_rng(5)
        train, basis = good_signatures(rng, n=150)
        screen = SignatureOutlierScreen().fit(train)
        # 10x beyond the training range but exactly on the manifold
        extreme = np.array([10.0, 10.0]) @ basis
        score = screen.score(extreme)
        assert score.is_outlier
        assert score.mahalanobis > screen.threshold

    def test_dead_device_near_zero_signature_flagged(self):
        rng = np.random.default_rng(6)
        train, basis = good_signatures(rng, n=150)
        screen = SignatureOutlierScreen().fit(train)
        dead = np.zeros(basis.shape[1])
        assert screen.score(dead).is_outlier

    def test_score_batch_matches_single(self):
        rng = np.random.default_rng(7)
        train, _ = good_signatures(rng, n=100)
        screen = SignatureOutlierScreen().fit(train)
        batch = screen.score_batch(train[:5])
        for i in range(5):
            assert batch[i] == pytest.approx(screen.score(train[i]).score)

    def test_validation(self):
        with pytest.raises(ValueError):
            SignatureOutlierScreen(threshold=0.0)
        rng = np.random.default_rng(8)
        train, _ = good_signatures(rng)
        screen = SignatureOutlierScreen().fit(train)
        with pytest.raises(ValueError):
            screen.score(np.zeros((2, 20)))
