"""Tests for repro.runtime.diagnosis (parametric fault diagnosis)."""

import numpy as np
import pytest

from repro.circuits.lna import LNA900, lna_parameter_space
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.runtime.diagnosis import ParameterDiagnosisModel
from repro.testgen.pwl import StimulusEncoding


@pytest.fixture(scope="module")
def fitted():
    """A diagnosis model trained on 90 LNA instances."""
    rng = np.random.default_rng(71)
    space = lna_parameter_space()
    cfg = simulation_config()
    board = SignatureTestBoard(cfg)
    stim = StimulusEncoding(16, cfg.capture_seconds, 0.4).decode(
        rng.uniform(-0.3, 0.3, 16)
    )
    points = space.sample(rng, 90)
    sigs = np.vstack(
        [board.signature(LNA900(space.to_dict(p)), stim, rng=rng) for p in points]
    )
    model = ParameterDiagnosisModel(space).fit(sigs, points, rng=rng)
    return model, space, board, stim, rng


class TestObservability:
    def test_rb_is_blind(self, fitted):
        model, *_ = fitted
        # base resistance barely moves the signature: not diagnosable
        assert "rb" not in model.observable_parameters()
        assert model.observability["rb"] < 0.3

    def test_dominant_driver_observable(self, fitted):
        model, *_ = fitted
        observable = model.observable_parameters()
        # the load resistor is the one parameter with its own signature
        # direction; it must be estimable
        assert "r_load" in observable

    def test_identifiability_limit(self, fitted):
        # the tuned-path signature carries ~2 degrees of freedom (a1, a3),
        # so most of the 10 parameters are individually unidentifiable --
        # the model must report that honestly rather than hallucinate
        model, *_ = fitted
        assert len(model.observable_parameters()) <= 4

    def test_summary(self, fitted):
        model, *_ = fitted
        text = model.summary()
        assert "rb" in text
        assert "blind" in text


class TestDiagnosis:
    def _drifted_signature(self, fitted, name, step):
        model, space, board, stim, rng = fitted
        vec = space.nominal_vector()
        vec[space.index_of(name)] *= 1.0 + step
        device = LNA900(space.to_dict(vec))
        return board.signature(device, stim, rng=rng)

    @pytest.mark.parametrize("name", ["r_load", "r1"])
    def test_prime_suspect_found(self, fitted, name):
        model, *_ = fitted
        if name not in model.observable_parameters():
            pytest.skip(f"{name} not observable with this stimulus")
        hits = 0
        for step in (-0.18, 0.18):
            sig = self._drifted_signature(fitted, name, step)
            diag = model.diagnose(sig)
            if diag.prime_suspect == name:
                hits += 1
        assert hits >= 1  # at least one polarity pins the right component

    def test_nominal_device_scores_low(self, fitted):
        model, space, board, stim, rng = fitted
        sig = board.signature(LNA900(), stim, rng=rng)
        diag = model.diagnose(sig)
        # nominal device: every observable parameter within ~1.5 sigma
        assert all(abs(s) < 1.5 for s in diag.sigma_scores.values())

    def test_estimate_returns_all_parameters(self, fitted):
        model, space, board, stim, rng = fitted
        sig = board.signature(LNA900(), stim, rng=rng)
        est = model.estimate(sig)
        assert set(est) == set(space.names())

    def test_sign_of_estimate(self, fitted):
        model, *_ = fitted
        observable = model.observable_parameters()
        if "r_load" not in observable:
            pytest.skip("r_load not observable")
        up = self._drifted_signature(fitted, "r_load", 0.18)
        down = self._drifted_signature(fitted, "r_load", -0.18)
        assert model.estimate(up)["r_load"] > model.estimate(down)["r_load"]


class TestAmbiguityGroups:
    def test_synthetic_groups(self):
        from repro.circuits.parameters import ParameterSpace, uniform_percent
        from repro.runtime.diagnosis import ambiguity_groups

        space = ParameterSpace(
            [uniform_percent(n, 1.0) for n in ("a", "b", "c", "dead")]
        )
        # a and b share a direction; c is independent; dead does nothing
        d1 = np.array([1.0, 0.0, 0.0, 0.0])
        a_s = np.column_stack(
            [d1, -2.0 * d1, np.array([0.0, 1.0, 0.0, 0.0]), np.zeros(4)]
        )
        groups = ambiguity_groups(a_s, space)
        assert ("a", "b") in groups
        assert ("c",) in groups
        assert ("dead",) in groups  # the blind group

    def test_lna_bias_resistors_grouped(self):
        from repro.circuits.lna import LNA900, lna_parameter_space
        from repro.loadboard.signature_path import simulation_config
        from repro.runtime.diagnosis import ambiguity_groups
        from repro.testgen.optimizer import SignatureStimulusOptimizer
        from repro.testgen.pwl import StimulusEncoding

        space = lna_parameter_space()
        opt = SignatureStimulusOptimizer(
            simulation_config(), LNA900, space,
            StimulusEncoding(16, 5e-6, 0.4), rel_step=0.03,
        )
        rng = np.random.default_rng(0)
        stim = opt.encoding.decode(rng.uniform(-0.3, 0.3, 16))
        a_s = opt.signature_matrix(stim)
        groups = ambiguity_groups(a_s, space, collinearity=0.9)
        # the divider resistors act through the same gm direction
        together = [g for g in groups if "r1" in g]
        assert together and "r2" in together[0]

    def test_validation(self):
        from repro.circuits.parameters import ParameterSpace, uniform_percent
        from repro.runtime.diagnosis import ambiguity_groups

        space = ParameterSpace([uniform_percent("a", 1.0)])
        with pytest.raises(ValueError):
            ambiguity_groups(np.zeros((3, 2)), space)
        with pytest.raises(ValueError):
            ambiguity_groups(np.zeros((3, 1)), space, collinearity=0.0)


class TestPrimeSuspect:
    def test_no_observable_parameters_raises(self):
        from repro.runtime.diagnosis import ParameterDiagnosis

        diagnosis = ParameterDiagnosis(
            estimated_deviations={"rb": 0.1}, sigma_scores={}, ranked=()
        )
        with pytest.raises(ValueError, match="no observable"):
            diagnosis.prime_suspect

    def test_ranking_ordered_by_absolute_sigma_score(self, fitted):
        model, space, board, stim, rng = fitted
        vec = space.nominal_vector()
        vec[space.index_of("r_load")] *= 1.15
        sig = board.signature(LNA900(space.to_dict(vec)), stim, rng=rng)
        diagnosis = model.diagnose(sig)
        scores = [abs(diagnosis.sigma_scores[n]) for n in diagnosis.ranked]
        assert scores == sorted(scores, reverse=True)


class TestValidation:
    def test_shape_checks(self):
        space = lna_parameter_space()
        model = ParameterDiagnosisModel(space)
        with pytest.raises(ValueError):
            model.fit(np.zeros(10), np.zeros((10, 10)))
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 4)), np.zeros((9, 10)))
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 4)), np.zeros((10, 3)))

    def test_unfitted(self):
        model = ParameterDiagnosisModel(lna_parameter_space())
        with pytest.raises(RuntimeError):
            model.estimate(np.zeros(4))
        with pytest.raises(RuntimeError):
            model.observable_parameters()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ParameterDiagnosisModel(lna_parameter_space(), observability_threshold=0.0)
