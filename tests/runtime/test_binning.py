"""Tests for repro.runtime.binning (guard-banding and confusion)."""

import numpy as np
import pytest

from repro.runtime.binning import (
    BinningReport,
    confusion,
    guard_banded_limits,
    sweep_guard_band,
)
from repro.runtime.specs import SpecificationLimit, SpecificationLimits


def gain_only_limits(minimum=14.0):
    return SpecificationLimits(
        {"gain_db": SpecificationLimit("gain_db", minimum=minimum)}
    )


def lot(rng, n=500, err=0.2):
    """A lot with true gains around the 14 dB limit and noisy predictions."""
    true = np.column_stack(
        [
            rng.normal(15.0, 1.0, n),  # gain
            rng.normal(2.0, 0.1, n),  # nf (unlimited here)
            rng.normal(3.0, 0.5, n),  # iip3 (unlimited here)
        ]
    )
    predicted = true + rng.normal(0.0, err, size=true.shape)
    return true, predicted


class TestConfusion:
    def test_perfect_predictions_no_errors(self):
        rng = np.random.default_rng(0)
        true, _ = lot(rng)
        report = confusion(true, true, gain_only_limits())
        assert report.escapes == 0
        assert report.yield_loss == 0
        assert report.accuracy == 1.0

    def test_noisy_predictions_produce_both_error_kinds(self):
        rng = np.random.default_rng(1)
        true, predicted = lot(rng, err=0.5)
        report = confusion(true, predicted, gain_only_limits())
        assert report.escapes > 0
        assert report.yield_loss > 0
        assert report.true_pass + report.true_fail == report.n_devices

    def test_summary_text(self):
        rng = np.random.default_rng(2)
        true, predicted = lot(rng)
        text = confusion(true, predicted, gain_only_limits()).summary()
        assert "escapes" in text and "yield loss" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            confusion(np.zeros((3, 3)), np.zeros((4, 3)), gain_only_limits())
        with pytest.raises(ValueError):
            confusion(
                np.zeros((3, 2)), np.zeros((3, 2)), gain_only_limits()
            )

    def test_rates_with_empty_classes(self):
        report = BinningReport(
            n_devices=5, true_pass=5, true_fail=0, escapes=0, yield_loss=1
        )
        assert report.escape_rate == 0.0
        assert report.yield_loss_rate == pytest.approx(0.2)


class TestGuardBanding:
    def test_limits_tightened_in_right_direction(self):
        limits = SpecificationLimits(
            {
                "gain_db": SpecificationLimit("gain_db", minimum=14.0),
                "nf_db": SpecificationLimit("nf_db", maximum=3.0),
            }
        )
        banded = guard_banded_limits(
            limits, {"gain_db": 0.1, "nf_db": 0.2}, k=2.0
        )
        assert banded.limits["gain_db"].minimum == pytest.approx(14.2)
        assert banded.limits["nf_db"].maximum == pytest.approx(2.6)

    def test_missing_sigma_leaves_limit(self):
        limits = gain_only_limits()
        banded = guard_banded_limits(limits, {}, k=3.0)
        assert banded.limits["gain_db"].minimum == 14.0

    def test_window_collapse_rejected(self):
        limits = SpecificationLimits(
            {"gain_db": SpecificationLimit("gain_db", minimum=14.0, maximum=14.5)}
        )
        with pytest.raises(ValueError, match="closes"):
            guard_banded_limits(limits, {"gain_db": 1.0}, k=1.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            guard_banded_limits(gain_only_limits(), {"gain_db": 0.1}, k=-1.0)


class TestGuardBandSweep:
    def test_escapes_monotone_decreasing(self):
        rng = np.random.default_rng(3)
        true, predicted = lot(rng, n=2000, err=0.4)
        curve = sweep_guard_band(
            true,
            predicted,
            gain_only_limits(),
            {"gain_db": 0.4},
            k_values=(0.0, 1.0, 2.0, 3.0),
        )
        escapes = [r.escapes for _, r in curve]
        losses = [r.yield_loss for _, r in curve]
        assert all(e2 <= e1 for e1, e2 in zip(escapes, escapes[1:]))
        assert all(l2 >= l1 for l1, l2 in zip(losses, losses[1:]))
        # a 3-sigma guard band drives escapes to (near) zero
        assert escapes[-1] <= 0.02 * curve[0][1].true_fail + 1

    def test_default_decision_limits_are_the_true_limits(self):
        rng = np.random.default_rng(4)
        true, predicted = lot(rng)
        limits = gain_only_limits()
        plain = confusion(true, predicted, limits)
        explicit = confusion(true, predicted, limits, decision_limits=limits)
        assert plain == explicit

    def test_band_covering_the_error_eliminates_escapes(self):
        # |prediction error| <= e and a guard band of k*sigma >= e means a
        # truly-failing device can never sneak past the banded limit
        rng = np.random.default_rng(5)
        true, _ = lot(rng, n=1000)
        e = 0.3
        predicted = true + rng.uniform(-e, e, size=true.shape)
        banded = guard_banded_limits(gain_only_limits(), {"gain_db": e}, k=1.0)
        report = confusion(
            true, predicted, gain_only_limits(), decision_limits=banded
        )
        assert report.escapes == 0
        assert report.yield_loss > 0  # the price paid for zero escapes
