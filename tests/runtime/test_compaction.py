"""Tests for repro.runtime.compaction (the "test less" lever)."""

import numpy as np
import pytest

from repro.runtime.compaction import compact_test_set


def correlated_lot(rng, n=120):
    """Three specs where the third is a function of the first two."""
    gain = rng.normal(16.0, 1.0, n)
    nf = rng.normal(2.5, 0.2, n)
    # p1db tracks gain tightly (both ride the same bias current)
    p1db = gain - 22.0 + rng.normal(0.0, 0.02, n)
    return np.column_stack([gain, nf, p1db]), ("gain", "nf", "p1db")


class TestCompaction:
    def test_redundant_spec_dropped(self):
        rng = np.random.default_rng(0)
        specs, names = correlated_lot(rng)
        result = compact_test_set(
            specs,
            names,
            max_rmse={"p1db": 0.1, "nf": 0.05},
            rng=rng,
        )
        assert "p1db" in result.dropped
        assert result.prediction_errors["p1db"] < 0.1
        assert "gain" in result.kept

    def test_independent_spec_kept(self):
        rng = np.random.default_rng(1)
        specs, names = correlated_lot(rng)
        result = compact_test_set(
            specs, names, max_rmse={"nf": 0.05, "p1db": 0.1}, rng=rng
        )
        # NF is independent noise: not predictable within 0.05
        assert "nf" in result.kept

    def test_budget_respected(self):
        rng = np.random.default_rng(2)
        specs, names = correlated_lot(rng)
        # absurdly tight budget: nothing is droppable
        result = compact_test_set(
            specs, names, max_rmse={"p1db": 1e-6, "nf": 1e-6}, rng=rng
        )
        assert result.dropped == ()

    def test_no_budget_means_never_dropped(self):
        rng = np.random.default_rng(3)
        specs, names = correlated_lot(rng)
        result = compact_test_set(specs, names, max_rmse={"p1db": 0.1}, rng=rng)
        assert "gain" in result.kept
        assert "nf" in result.kept

    def test_time_savings_accounted(self):
        rng = np.random.default_rng(4)
        specs, names = correlated_lot(rng)
        result = compact_test_set(
            specs,
            names,
            max_rmse={"p1db": 0.1},
            test_times={"gain": 0.18, "nf": 0.4, "p1db": 0.62},
            rng=rng,
        )
        assert result.seconds_saved == pytest.approx(0.62)
        assert "insertion time saved" in result.summary()

    def test_min_kept(self):
        rng = np.random.default_rng(5)
        # two perfectly redundant specs
        a = rng.normal(0, 1, 100)
        specs = np.column_stack([a, a + 1e-6 * rng.normal(size=100)])
        result = compact_test_set(
            specs, ("x", "y"), max_rmse={"x": 0.1, "y": 0.1}, min_kept=1, rng=rng
        )
        assert len(result.kept) == 1

    def test_deterministic_for_a_fixed_seed(self):
        specs, names = correlated_lot(np.random.default_rng(7))
        budgets = {"p1db": 0.1, "nf": 0.05}
        first = compact_test_set(
            specs, names, budgets, rng=np.random.default_rng(11)
        )
        second = compact_test_set(
            specs, names, budgets, rng=np.random.default_rng(11)
        )
        assert first == second

    def test_slowest_redundant_test_dropped_first(self):
        rng = np.random.default_rng(8)
        gain = rng.normal(16.0, 1.0, 120)
        fast = gain - 1.0 + rng.normal(0.0, 0.02, 120)
        slow = gain + 2.0 + rng.normal(0.0, 0.02, 120)
        specs = np.column_stack([gain, fast, slow])
        result = compact_test_set(
            specs,
            ("gain", "fast", "slow"),
            max_rmse={"fast": 0.1, "slow": 0.1},
            test_times={"gain": 0.1, "fast": 0.2, "slow": 0.9},
            rng=rng,
        )
        # both are redundant; the expensive one goes first
        assert result.dropped[0] == "slow"
        assert result.seconds_saved == pytest.approx(1.1)

    def test_validation(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            compact_test_set(np.zeros((5, 2)), ("a", "b"), {}, rng=rng)
        specs, names = correlated_lot(rng)
        with pytest.raises(KeyError):
            compact_test_set(specs, names, {"zzz": 0.1}, rng=rng)
        with pytest.raises(ValueError):
            compact_test_set(specs, names, {}, min_kept=0, rng=rng)
