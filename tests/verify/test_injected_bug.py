"""Acceptance check: an injected LO2-offset bug must be caught and shrunk.

The paper's Eq. 5 claims the FFT-magnitude signature is phase-invariant
*because* the second LO runs at a small frequency offset.  A bug that
silently loses that offset (the offset ramp cancels, collapsing the
path to the same-LO Eq. 4 regime, where the signature scales with
cos(phase)) must be caught by the phase-invariance relation -- complete
with a shrunk counterexample config for the report.
"""

from unittest import mock

import repro.verify.relations  # noqa: F401 - populate the default registry
from repro.loadboard.envelope import EnvelopeSignal
from repro.verify.harness import DEFAULT_REGISTRY, run_relation


def test_lost_lo2_offset_caught_with_shrunk_counterexample():
    original = EnvelopeSignal.sine_carrier.__func__

    def buggy(cls, *args, **kwargs):
        kwargs["offset_hz"] = 0.0
        return original(cls, *args, **kwargs)

    rel = DEFAULT_REGISTRY.get(["signature-lo2-phase-invariance"])[0]
    with mock.patch.object(EnvelopeSignal, "sine_carrier", classmethod(buggy)):
        report = run_relation(rel, n_cases=6, shrink=True)

    assert report.n_failures > 0, "phase-invariance relation missed the bug"
    failure = report.failures[0]
    assert failure.shrunk_config is not None
    assert set(failure.shrunk_config) == set(rel.params)
    assert "phase invariance" in (failure.shrunk_message or failure.message)


def test_relation_clean_without_the_bug():
    rel = DEFAULT_REGISTRY.get(["signature-lo2-phase-invariance"])[0]
    report = run_relation(rel, n_cases=6, shrink=False)
    assert report.ok
