"""Golden-corpus build, drift detection, and the guarded update flow."""

import json
import os

import pytest

import repro.verify.harness as harness
from repro.verify.golden import (
    GOLDEN_DIR_ENV,
    GoldenUpdateRefused,
    build_corpus,
    check_all_corpora,
    check_corpus,
    corpus_names,
    golden_dir,
    update_golden,
)


def _write(corpus, directory):
    path = os.path.join(directory, f"{corpus['name']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(corpus, handle)
    return path


class TestGoldenDir:
    def test_default_is_committed_tests_golden(self):
        assert golden_dir().endswith(os.path.join("tests", "golden"))

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(GOLDEN_DIR_ENV, str(tmp_path))
        assert golden_dir() == str(tmp_path)
        # explicit argument beats the environment
        assert golden_dir("/elsewhere") == "/elsewhere"


class TestBuildAndCheck:
    def test_build_is_deterministic(self):
        a = build_corpus("sim-small")
        b = build_corpus("sim-small")
        assert a == b
        assert a["seed"] == 20020101
        assert len(a["signatures"]) == a["n_val"]

    def test_unknown_corpus_rejected(self):
        with pytest.raises(KeyError, match="unknown corpus"):
            build_corpus("no-such-corpus")

    def test_fresh_corpus_is_clean(self, tmp_path):
        _write(build_corpus("sim-small"), str(tmp_path))
        assert check_corpus("sim-small", directory=str(tmp_path)) == []

    def test_numeric_tamper_is_drift(self, tmp_path):
        corpus = build_corpus("sim-small")
        corpus["signatures"][0][0] += 1e-3
        _write(corpus, str(tmp_path))
        messages = check_corpus("sim-small", directory=str(tmp_path))
        assert len(messages) == 1
        assert "validation signatures" in messages[0]
        assert "max drift" in messages[0]

    def test_missing_file_is_drift(self, tmp_path):
        messages = check_corpus("sim-small", directory=str(tmp_path))
        assert messages and "missing" in messages[0]

    def test_check_all_covers_every_corpus(self, tmp_path):
        drift = check_all_corpora(directory=str(tmp_path))
        assert set(drift) == set(corpus_names())
        assert all(msgs for msgs in drift.values())  # all missing


class TestCommittedCorpora:
    def test_committed_files_exist(self):
        for name in corpus_names():
            assert os.path.exists(os.path.join(golden_dir(), f"{name}.json"))


class TestGuardedUpdate:
    def _campaign(self, ok):
        campaign = harness.CampaignReport(master_seed=0, n_cases=1)
        campaign.relations.append(
            harness.RelationReport(
                name="r",
                equation="",
                description="",
                n_cases=1,
                n_failures=0 if ok else 1,
            )
        )
        return campaign

    def test_update_refused_while_relations_fail(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            harness, "run_campaign", lambda **kw: self._campaign(ok=False)
        )
        with pytest.raises(GoldenUpdateRefused, match="relation campaign failed"):
            update_golden(directory=str(tmp_path))
        assert os.listdir(str(tmp_path)) == []  # nothing was written

    def test_update_writes_clean_corpora(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            harness, "run_campaign", lambda **kw: self._campaign(ok=True)
        )
        written = update_golden(directory=str(tmp_path), names=["sim-small"])
        assert written == [os.path.join(str(tmp_path), "sim-small.json")]
        assert check_corpus("sim-small", directory=str(tmp_path)) == []
