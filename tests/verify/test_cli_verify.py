"""The `python -m repro verify` CLI surface."""

import json

from repro.cli import main


def test_list_shows_relations_and_corpora(capsys):
    assert main(["verify", "--list"]) == 0
    out = capsys.readouterr().out
    assert "relation signature-lo2-phase-invariance" in out
    assert "relation db-linear-roundtrip" in out
    assert "golden corpus sim-small" in out


def test_quick_campaign_writes_report_and_passes(tmp_path, capsys):
    report_path = tmp_path / "campaign.json"
    rc = main(
        [
            "verify",
            "--configs",
            "2",
            "--relations",
            "db-linear-roundtrip",
            "--skip-golden",
            "--no-shrink",
            "--report",
            str(report_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "campaign PASSED" in out
    with open(report_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["ok"] is True
    assert data["n_cases"] == 2
    assert [r["name"] for r in data["relations"]] == ["db-linear-roundtrip"]


def test_golden_drift_exits_nonzero(tmp_path, capsys):
    # an empty --golden-dir means every corpus file is missing -> drift
    rc = main(
        [
            "verify",
            "--configs",
            "1",
            "--relations",
            "db-linear-roundtrip",
            "--no-shrink",
            "--golden-dir",
            str(tmp_path),
        ]
    )
    assert rc == 1
    assert "DRIFT" in capsys.readouterr().out
