"""Tests for the harness itself: params, registry, determinism, shrinking."""

import json

import numpy as np
import pytest

from repro.verify.harness import (
    MAX_RECORDED_FAILURES,
    CampaignReport,
    Registry,
    RelationReport,
    RelationViolation,
    booleans,
    check,
    check_allclose,
    check_array_equal,
    choice,
    floats,
    integers,
    log_floats,
    relation,
    run_campaign,
    run_relation,
)


class TestChecks:
    def test_check_passes_and_raises(self):
        check(True, "fine")
        with pytest.raises(RelationViolation, match="broken"):
            check(False, "broken")

    def test_check_allclose_reports_worst_deviation(self):
        check_allclose(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(RelationViolation, match="max deviation"):
            check_allclose(np.array([1.0, 2.5]), np.array([1.0, 2.0]))

    def test_check_allclose_shape_mismatch(self):
        with pytest.raises(RelationViolation, match="shape mismatch"):
            check_allclose(np.zeros(3), np.zeros(4))

    def test_check_array_equal_requires_bit_identity(self):
        check_array_equal(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(RelationViolation, match="bit-identical"):
            check_array_equal(np.array([1.0]), np.array([1.0 + 1e-15]))


class TestParams:
    def test_floats_sample_within_bounds(self):
        p = floats(-2.0, 3.0)
        rng = np.random.default_rng(0)
        draws = [p.sample(rng) for _ in range(100)]
        assert all(-2.0 <= d <= 3.0 for d in draws)

    def test_floats_requires_ordered_bounds(self):
        with pytest.raises(ValueError):
            floats(1.0, 1.0)

    def test_log_floats_requires_positive_bounds(self):
        with pytest.raises(ValueError):
            log_floats(0.0, 1.0)
        p = log_floats(1e-3, 1e3)
        rng = np.random.default_rng(1)
        assert all(1e-3 <= p.sample(rng) <= 1e3 for _ in range(50))

    def test_integers_inclusive_bounds(self):
        p = integers(2, 4)
        rng = np.random.default_rng(2)
        draws = {p.sample(rng) for _ in range(200)}
        assert draws == {2, 3, 4}

    def test_choice_and_booleans(self):
        p = choice("a", "b")
        rng = np.random.default_rng(3)
        assert {p.sample(rng) for _ in range(50)} == {"a", "b"}
        assert {booleans().sample(rng) for _ in range(50)} == {False, True}
        with pytest.raises(ValueError):
            choice()

    def test_float_shrink_goes_to_origin_first(self):
        p = floats(0.0, 10.0, origin=1.0)
        candidates = list(p.shrink_candidates(8.0))
        assert candidates[0] == 1.0
        assert candidates[1] == pytest.approx(4.5)

    def test_int_shrink_steps_toward_origin(self):
        p = integers(0, 10, origin=0)
        candidates = list(p.shrink_candidates(7))
        assert candidates[0] == 0
        assert 6 in candidates

    def test_choice_shrink_yields_only_simpler_options(self):
        p = choice("simple", "medium", "fancy")
        assert list(p.shrink_candidates("fancy")) == ["simple", "medium"]
        assert list(p.shrink_candidates("simple")) == []


class TestRegistry:
    def test_register_and_filter(self):
        reg = Registry()

        @relation(name="a", params={"x": floats(0, 1)}, registry=reg)
        def _rel_a(case, rng):
            """First relation."""

        @relation(name="b", params={"x": floats(0, 1)}, registry=reg)
        def _rel_b(case, rng):
            """Second relation."""

        assert reg.names() == ["a", "b"]
        assert len(reg) == 2 and "a" in reg
        assert [r.name for r in reg.get(["b"])] == ["b"]
        assert reg.get(["a"])[0].description == "First relation."

    def test_duplicate_name_rejected(self):
        reg = Registry()

        @relation(name="dup", params={}, registry=reg)
        def _rel_one(case, rng):
            pass

        with pytest.raises(ValueError, match="already registered"):

            @relation(name="dup", params={}, registry=reg)
            def _rel_two(case, rng):
                pass

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown relation"):
            Registry().get(["nope"])


class TestDeterminism:
    def test_cases_replay_bit_identically(self):
        seen = []
        reg = Registry()

        @relation(name="probe", params={"x": floats(0.0, 1.0)}, registry=reg)
        def _rel_probe(case, rng):
            seen.append((case["x"], float(rng.normal())))

        run_relation(reg.get(["probe"])[0], n_cases=5, master_seed=7)
        first, seen[:] = list(seen), []
        run_relation(reg.get(["probe"])[0], n_cases=5, master_seed=7)
        assert seen == first

    def test_master_seed_changes_cases(self):
        seen = []
        reg = Registry()

        @relation(name="probe", params={"x": floats(0.0, 1.0)}, registry=reg)
        def _rel_probe(case, rng):
            seen.append(case["x"])

        run_relation(reg.get(["probe"])[0], n_cases=5, master_seed=1)
        first, seen[:] = list(seen), []
        run_relation(reg.get(["probe"])[0], n_cases=5, master_seed=2)
        assert seen != first

    def test_cases_keyed_on_name_not_registry_order(self):
        # the same relation draws the same cases whether or not other
        # relations are registered before it
        def make(reg, seen):
            @relation(name="stable", params={"x": floats(0.0, 1.0)}, registry=reg)
            def _rel_stable(case, rng):
                seen.append(case["x"])

        alone, crowded = Registry(), Registry()
        seen_alone, seen_crowded = [], []
        make(alone, seen_alone)

        @relation(name="aaa-first", params={}, registry=crowded)
        def _rel_first(case, rng):
            pass

        make(crowded, seen_crowded)
        run_campaign(registry=alone, n_cases=4, master_seed=3, shrink=False)
        run_campaign(registry=crowded, n_cases=4, master_seed=3, shrink=False)
        assert seen_alone == seen_crowded


class TestShrinker:
    def test_int_threshold_shrinks_to_boundary(self):
        reg = Registry()

        @relation(name="big-n", params={"n": integers(0, 50)}, registry=reg)
        def _rel_big_n(case, rng):
            check(case["n"] < 17, f"fails for n={case['n']}")

        report = run_relation(reg.get(["big-n"])[0], n_cases=30, master_seed=0)
        assert report.n_failures > 0
        failure = report.failures[0]
        assert failure.shrunk_config == {"n": 17}
        assert failure.shrink_evaluations > 0
        assert "n=17" in failure.shrunk_message

    def test_shrunk_case_still_fails(self):
        reg = Registry()

        @relation(
            name="multi",
            params={"a": floats(0.0, 1.0), "b": integers(0, 9)},
            registry=reg,
        )
        def _rel_multi(case, rng):
            check(not (case["a"] > 0.5 and case["b"] >= 3), "joint failure")

        report = run_relation(reg.get(["multi"])[0], n_cases=40, master_seed=0)
        assert report.n_failures > 0
        shrunk = report.failures[0].shrunk_config
        # the shrunk config must itself violate the relation
        assert shrunk["a"] > 0.5 and shrunk["b"] >= 3
        assert shrunk["b"] == 3  # int fully minimized to the boundary
        orig = report.failures[0].config
        assert shrunk["a"] <= orig["a"]

    def test_shrink_disabled(self):
        reg = Registry()

        @relation(name="always", params={"x": floats(0, 1)}, registry=reg)
        def _rel_always(case, rng):
            check(False, "always fails")

        report = run_relation(
            reg.get(["always"])[0], n_cases=3, master_seed=0, shrink=False
        )
        assert report.failures[0].shrunk_config is None


class TestReports:
    def _failing_registry(self):
        reg = Registry()

        @relation(
            name="flaky",
            params={"x": floats(0.0, 1.0)},
            equation="Eq. 0",
            registry=reg,
        )
        def _rel_flaky(case, rng):
            check(case["x"] < 0.5, "x too big")

        return reg

    def test_failure_counting_and_recording_cap(self):
        reg = self._failing_registry()
        report = run_relation(
            reg.get(["flaky"])[0], n_cases=60, master_seed=0, shrink=False
        )
        # roughly half the uniform draws land above 0.5
        assert 10 < report.n_failures < 50
        assert len(report.failures) <= MAX_RECORDED_FAILURES
        assert not report.ok

    def test_campaign_report_roundtrips_to_json(self, tmp_path):
        reg = self._failing_registry()
        campaign = run_campaign(registry=reg, n_cases=4, master_seed=0)
        assert not campaign.ok
        path = campaign.write(str(tmp_path / "nested" / "report.json"))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["ok"] is False
        assert data["relations"][0]["name"] == "flaky"
        assert data["relations"][0]["equation"] == "Eq. 0"
        assert data["relations"][0]["failures"][0]["config"]

    def test_summary_mentions_counterexample(self):
        reg = self._failing_registry()
        campaign = run_campaign(registry=reg, n_cases=4, master_seed=0)
        text = campaign.summary()
        assert "FAIL" in text and "counterexample" in text
        assert "FAILED" in text

    def test_golden_drift_fails_campaign(self):
        campaign = CampaignReport(master_seed=0, n_cases=1)
        campaign.relations.append(
            RelationReport(name="r", equation="", description="", n_cases=1)
        )
        assert campaign.ok
        campaign.golden_drift = {"sim-small": ["drifted"]}
        assert not campaign.ok
        assert "DRIFT" in campaign.summary()

    def test_n_cases_validated(self):
        reg = self._failing_registry()
        with pytest.raises(ValueError):
            run_relation(reg.get(["flaky"])[0], n_cases=0)
