"""The built-in relation library: registration and a passing smoke campaign."""

import repro.verify.relations  # noqa: F401 - populate the default registry
from repro.verify.harness import DEFAULT_REGISTRY, run_campaign

EXPECTED = {
    "signature-lo2-phase-invariance",
    "capture-batch-equivalence",
    "executor-equivalence",
    "envelope-gain-linearity",
    "attenuation-monotonicity",
    "db-linear-roundtrip",
    "noise-determinism",
    "spec-permutation-stability",
    "streaming-offline-equivalence",
}


def test_relation_library_registered():
    assert EXPECTED <= set(DEFAULT_REGISTRY.names())
    assert len(DEFAULT_REGISTRY) >= 6  # the acceptance floor


def test_every_relation_declares_its_contract():
    for rel in DEFAULT_REGISTRY.get(sorted(EXPECTED)):
        assert rel.params, f"{rel.name} samples no configuration space"
        assert rel.equation or rel.description, f"{rel.name} is undocumented"


def test_smoke_campaign_passes():
    campaign = run_campaign(names=sorted(EXPECTED), n_cases=3, master_seed=99)
    failing = [r.name for r in campaign.relations if not r.ok]
    assert campaign.ok, f"relations violated: {failing}"
