"""Extension: predicting a *dynamic* parameter from the signature.

The paper predicts static specs (gain, NF, IIP3).  With the envelope-
dynamics DUT model, a device's modulation bandwidth shapes the signature
too (fast stimulus segments are smoothed, slow ones are not), so the
same calibration machinery can predict it -- a capability the follow-on
alternate-test literature exploits for devices with memory.
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.regression.metrics import r2_score
from repro.runtime.calibration import CalibrationSession
from repro.testgen.pwl import StimulusEncoding


@pytest.fixture(scope="module")
def bandwidth_family():
    """Amplifiers whose gain AND modulation bandwidth vary."""
    rng = np.random.default_rng(55)
    cfg = SignaturePathConfig(
        digitizer_noise_vrms=1e-3,
        digitizer_bits=None,
        include_device_noise=False,
    )
    board = SignatureTestBoard(cfg)
    # a busy stimulus: spectral content well past the bandwidth corners
    stim = StimulusEncoding(16, cfg.capture_seconds, 0.4).decode(
        rng.uniform(-0.25, 0.25, 16)
    )

    def make(gain_db, bw_hz):
        return BehavioralAmplifier(
            900e6, gain_db, 2.0, 10.0, envelope_bandwidth=bw_hz
        )

    def draw(n):
        gains = rng.uniform(14.0, 18.0, n)
        bws = rng.uniform(1e6, 6e6, n)  # corners inside the 10 MHz band
        devices = [make(g, b) for g, b in zip(gains, bws)]
        sigs = np.vstack([board.signature(d, stim, rng=rng) for d in devices])
        targets = np.column_stack([gains, bws / 1e6])
        return sigs, targets

    return draw


class TestDynamicPrediction:
    def test_bandwidth_predicted_from_signature(self, bandwidth_family):
        draw = bandwidth_family
        rng = np.random.default_rng(56)
        train_sigs, train_y = draw(70)
        val_sigs, val_y = draw(20)
        session = CalibrationSession(spec_names=("gain_db", "bw_mhz"))
        model = session.fit(train_sigs, train_y, rng=rng)
        pred = model.predict_matrix(val_sigs)
        assert r2_score(val_y[:, 0], pred[:, 0]) > 0.95  # gain, as always
        assert r2_score(val_y[:, 1], pred[:, 1]) > 0.8  # the dynamic spec

    def test_bandwidth_actually_shapes_signature(self, bandwidth_family):
        # sanity for the mechanism: two devices equal in every static
        # spec, different in bandwidth, must produce different signatures
        rng = np.random.default_rng(57)
        cfg = SignaturePathConfig(
            digitizer_noise_vrms=0.0, digitizer_bits=None, include_device_noise=False
        )
        board = SignatureTestBoard(cfg)
        stim = StimulusEncoding(16, cfg.capture_seconds, 0.4).decode(
            rng.uniform(-0.25, 0.25, 16)
        )
        slow = BehavioralAmplifier(900e6, 16.0, 2.0, 10.0, envelope_bandwidth=1.5e6)
        fast = BehavioralAmplifier(900e6, 16.0, 2.0, 10.0, envelope_bandwidth=6e6)
        s_slow = board.signature(slow, stim)
        s_fast = board.signature(fast, stim)
        rel = np.linalg.norm(s_slow - s_fast) / np.linalg.norm(s_fast)
        assert rel > 0.05
