"""Tests for the experiment drivers (reduced configurations).

The benchmarks run the full paper-scale experiments; here the drivers are
exercised end to end at a reduced size so the test suite stays fast while
still proving the pipelines work and the paper's qualitative shape holds.
"""

import numpy as np
import pytest

from repro.experiments.hardware import (
    HW_SPEC_NAMES,
    rf2401_device,
    rf2401_family_space,
    run_hardware_experiment,
)
from repro.experiments.lna_simulation import run_simulation_experiment
from repro.experiments.phase_study import run_phase_study
from repro.testgen.genetic import GAConfig


@pytest.fixture(scope="module")
def small_sim():
    """Reduced simulation experiment: ramp stimulus, 40/12 devices."""
    return run_simulation_experiment(
        seed=5,
        n_train=40,
        n_val=12,
        stimulus="ramp",
        use_cache=False,
    )


class TestSimulationExperiment:
    def test_shapes(self, small_sim):
        assert small_sim.true_specs.shape == (12, 3)
        assert small_sim.predicted_specs.shape == (12, 3)
        assert small_sim.train_true_specs.shape == (40, 3)

    def test_errors_recorded_for_all_specs(self, small_sim):
        for name in ("gain_db", "nf_db", "iip3_dbm"):
            assert np.isfinite(small_sim.std_errors[name])
            assert np.isfinite(small_sim.rms_errors[name])

    def test_gain_and_iip3_predictable(self, small_sim):
        # the qualitative claim of Figures 8-9: predictions track direct
        # simulation (R^2 close to 1) even with a crude ramp stimulus
        assert small_sim.r2["gain_db"] > 0.9
        assert small_sim.r2["iip3_dbm"] > 0.8

    def test_nf_hardest_to_predict(self, small_sim):
        # Figure 10's message: NF error is several times gain error
        assert small_sim.std_errors["nf_db"] > small_sim.std_errors["gain_db"]

    def test_scatter_accessor(self, small_sim):
        x, y = small_sim.scatter("gain_db")
        assert len(x) == len(y) == 12

    def test_summary_mentions_paper_values(self, small_sim):
        text = small_sim.summary()
        assert "paper 0.060" in text
        assert "paper 0.340" in text

    def test_baseline_stimulus_kinds(self):
        for kind in ("flat", "random"):
            res = run_simulation_experiment(
                seed=6, n_train=20, n_val=8, stimulus=kind, use_cache=False
            )
            assert np.isfinite(res.std_errors["gain_db"])
        with pytest.raises(ValueError, match="unknown baseline"):
            run_simulation_experiment(
                seed=6, n_train=20, n_val=8, stimulus="square", use_cache=False
            )

    def test_ga_path_produces_optimization_result(self):
        res = run_simulation_experiment(
            seed=7,
            n_train=20,
            n_val=8,
            ga_config=GAConfig(population_size=6, generations=1),
            use_cache=False,
        )
        assert res.optimization is not None
        assert res.optimization.stimulus.n_breakpoints == 16

    def test_cache_returns_same_object(self):
        a = run_simulation_experiment(seed=8, n_train=20, n_val=8, stimulus="ramp")
        b = run_simulation_experiment(seed=8, n_train=20, n_val=8, stimulus="ramp")
        assert a is b


class TestHardwareExperiment:
    def test_family_space(self):
        space = rf2401_family_space()
        assert set(space.names()) == {"gain_db", "nf_db", "iip3_dbm"}

    def test_device_factory(self):
        dev = rf2401_device({"gain_db": 15.0, "nf_db": 4.0, "iip3_dbm": -8.0})
        assert dev.specs().gain_db == 15.0

    def test_reduced_run(self):
        res = run_hardware_experiment(
            seed=11,
            n_calibration=14,
            n_validation=10,
            ga_config=GAConfig(population_size=6, generations=1),
            use_cache=False,
        )
        assert res.measured_specs.shape == (10, 2)
        assert res.predicted_specs.shape == (10, 2)
        for name in HW_SPEC_NAMES:
            assert np.isfinite(res.rms_errors[name])
        # predictions must track measurements through random path phase
        assert res.r2["gain_db"] > 0.7
        x, y = res.scatter("gain_db")
        assert len(x) == 10
        assert "paper 0.16" in res.summary()


class TestPhaseStudy:
    def test_equation4_shape(self):
        res = run_phase_study(n_phases=9)
        # rms follows |cos(phi)| including the nulls
        assert np.allclose(res.same_lo_rms, res.eq4_prediction, atol=0.02)
        k_null = np.argmin(np.abs(res.phases - np.pi / 2))
        assert res.same_lo_rms[k_null] < 1e-6

    def test_offset_fftmag_robust(self):
        res = run_phase_study(n_phases=9)
        assert res.worst_case()["offset_lo_fft_magnitude"] < 0.02
        assert res.worst_case()["same_lo_time_domain"] > 0.5

    def test_summary(self):
        res = run_phase_study(n_phases=5)
        assert "worst-case" in res.summary()
