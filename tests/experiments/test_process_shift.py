"""Tests for the lot-to-lot process-shift experiment."""

import numpy as np
import pytest

from repro.circuits.lna import lna_parameter_space
from repro.experiments.process_shift import (
    run_process_shift_experiment,
    shifted_space,
)


class TestShiftedSpace:
    def test_means_moved_by_sigma_fraction(self):
        base = lna_parameter_space()
        shifted = shifted_space(1.0)
        for p_base, p_shift in zip(base, shifted):
            expected = p_base.nominal * (1.0 + p_base.fractional_std)
            assert p_shift.nominal == pytest.approx(expected)
            assert p_shift.rel_variation == p_base.rel_variation

    def test_zero_shift_is_identity(self):
        base = lna_parameter_space()
        same = shifted_space(0.0)
        assert np.allclose(same.nominal_vector(), base.nominal_vector())

    def test_negative_shift(self):
        shifted = shifted_space(-2.0)
        base = lna_parameter_space()
        assert np.all(shifted.nominal_vector() < base.nominal_vector())


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        # a 3-sigma mean excursion: a genuine process event
        return run_process_shift_experiment(
            seed=9, shift_fraction=3.0, n_train=40, n_val=15
        )

    def test_shift_degrades_predictions(self, result):
        # the original calibration must be visibly worse on the
        # well-predicted specs
        assert (
            result.shifted_errors["gain_db"]
            > 2.0 * result.baseline_errors["gain_db"]
        )
        assert (
            result.shifted_errors["iip3_dbm"]
            > 1.5 * result.baseline_errors["iip3_dbm"]
        )

    def test_recalibration_recovers(self, result):
        assert (
            result.recalibrated_errors["gain_db"]
            < 0.6 * result.shifted_errors["gain_db"]
        )

    def test_lot_level_statistic_notices_the_shift(self, result):
        # individual devices stay plausible (the per-device flag rate is
        # low), but the lot's mean outlier score rises -- the statistic a
        # drift monitor would watch
        assert result.mean_score_shifted > 1.3 * result.mean_score_baseline
        assert result.false_alarm_rate < 0.2

    def test_moderate_shift_is_tolerated(self):
        # the nonlinear calibration learns device physics, not lot
        # statistics: a 1.5-sigma lot excursion barely hurts gain
        mild = run_process_shift_experiment(
            seed=9, shift_fraction=1.5, n_train=40, n_val=15
        )
        assert mild.shifted_errors["gain_db"] < 3.0 * mild.baseline_errors["gain_db"]

    def test_summary(self, result):
        text = result.summary()
        assert "process shift" in text
        assert "recal" in text

    def test_cache(self):
        a = run_process_shift_experiment(seed=9, shift_fraction=1.5,
                                         n_train=40, n_val=15)
        b = run_process_shift_experiment(seed=9, shift_fraction=1.5,
                                         n_train=40, n_val=15)
        assert a is b
