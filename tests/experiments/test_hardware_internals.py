"""Unit tests for the hardware-experiment building blocks."""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.experiments.hardware import (
    _deterministic,
    _socket_view,
    rf2401_device,
    rf2401_family_space,
)
from repro.loadboard.signature_path import hardware_config


class TestSocketView:
    def test_zero_sigma_returns_same_device(self):
        dev = BehavioralAmplifier(900e6, 15.0, 4.0, -8.0)
        assert _socket_view(dev, np.random.default_rng(0), 0.0) is dev

    def test_perturbs_only_gain(self):
        dev = BehavioralAmplifier(900e6, 15.0, 4.0, -8.0)
        rng = np.random.default_rng(1)
        view = _socket_view(dev, rng, 0.1)
        assert view is not dev
        assert view.specs().gain_db != 15.0
        assert abs(view.specs().gain_db - 15.0) < 1.0
        assert view.specs().nf_db == 4.0
        assert view.specs().iip3_dbm == -8.0

    def test_insertions_differ(self):
        dev = BehavioralAmplifier(900e6, 15.0, 4.0, -8.0)
        rng = np.random.default_rng(2)
        a = _socket_view(dev, rng, 0.05).specs().gain_db
        b = _socket_view(dev, rng, 0.05).specs().gain_db
        assert a != b

    def test_statistics(self):
        dev = BehavioralAmplifier(900e6, 15.0, 4.0, -8.0)
        rng = np.random.default_rng(3)
        gains = [_socket_view(dev, rng, 0.05).specs().gain_db for _ in range(300)]
        assert np.std(gains) == pytest.approx(0.05, rel=0.15)


class TestDeterministicConfig:
    def test_random_phase_pinned(self):
        cfg = hardware_config()
        assert cfg.random_path_phase
        det = _deterministic(cfg)
        assert not det.random_path_phase
        assert det.path_phase_rad == 0.0
        # everything else is untouched
        assert det.lo_offset_hz == cfg.lo_offset_hz
        assert det.capture_seconds == cfg.capture_seconds

    def test_original_not_mutated(self):
        cfg = hardware_config()
        _deterministic(cfg)
        assert cfg.random_path_phase


class TestFamily:
    def test_space_nominals_match_rf_front_end(self):
        space = rf2401_family_space()
        assert space["gain_db"].nominal == pytest.approx(15.0)
        assert space["iip3_dbm"].nominal == pytest.approx(-8.0)

    def test_device_round_trip(self):
        space = rf2401_family_space()
        vec = space.sample(np.random.default_rng(4), 1)[0]
        dev = rf2401_device(space.to_dict(vec))
        s = dev.specs()
        assert s.gain_db == pytest.approx(vec[space.index_of("gain_db")])
        assert s.iip3_dbm == pytest.approx(vec[space.index_of("iip3_dbm")])
