"""Every example and benchmark must at least compile.

The examples are exercised manually (several take tens of seconds), but
nothing should be able to break their syntax or their imports silently.
"""

import importlib.util
import py_compile
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
BENCHMARKS = sorted((REPO / "benchmarks").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", BENCHMARKS, ids=lambda p: p.name)
def test_benchmark_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_and_docstring(path):
    source = path.read_text()
    assert '"""' in source.split("\n", 2)[0] + source, f"{path.name} lacks a docstring"
    assert "def main(" in source, f"{path.name} lacks a main()"
    assert '__name__ == "__main__"' in source


def test_example_count_matches_readme():
    readme = (REPO / "README.md").read_text()
    for path in EXAMPLES:
        assert path.name in readme, f"{path.name} missing from README examples table"
