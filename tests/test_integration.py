"""Cross-module integration tests.

Each test exercises a path through several packages, pinning down the
contracts the experiments rely on.
"""

import numpy as np
import pytest

import repro
from repro.circuits.lna import LNA900, lna_parameter_space
from repro.instruments.ate import ConventionalRFATE
from repro.instruments.awg import ArbitraryWaveformGenerator
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.testgen.pwl import StimulusEncoding


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestConventionalATEOnLNA:
    """The baseline tester must recover the analytic LNA's specs."""

    def test_measured_specs_match_model(self):
        lna = LNA900()
        ate = ConventionalRFATE()
        rng = np.random.default_rng(0)
        result = ate.test_device(lna, rng)
        truth = lna.specs()
        assert result.specs.gain_db == pytest.approx(truth.gain_db, abs=0.2)
        assert result.specs.nf_db == pytest.approx(truth.nf_db, abs=0.6)
        assert result.specs.iip3_dbm == pytest.approx(truth.iip3_dbm, abs=0.5)

    def test_process_variation_visible_to_ate(self):
        space = lna_parameter_space()
        rng = np.random.default_rng(1)
        ate = ConventionalRFATE()
        strong = LNA900(space.to_dict(space.perturbed_vector("r_load", 0.2)))
        weak = LNA900(space.to_dict(space.perturbed_vector("r_load", -0.2)))
        g_strong = ate.gain_analyzer.measure_gain_db(strong, rng=rng)
        g_weak = ate.gain_analyzer.measure_gain_db(weak, rng=rng)
        assert g_strong > g_weak + 1.0


class TestAWGIntoSignaturePath:
    """The AWG's rendered record must feed the board like the ideal PWL."""

    def test_awg_record_close_to_ideal(self):
        cfg = simulation_config()
        cfg.digitizer_noise_vrms = 0.0
        board = SignatureTestBoard(cfg)
        lna = LNA900()
        rng = np.random.default_rng(2)
        stim = StimulusEncoding(16, cfg.capture_seconds, 0.4).decode(
            rng.uniform(-0.2, 0.2, 16)
        )
        awg = ArbitraryWaveformGenerator(sample_rate=100e6, bits=12, full_scale=0.5)
        sig_ideal = board.signature(lna, stim)
        sig_awg = board.signature(lna, awg.play(stim))
        rel = np.linalg.norm(sig_awg - sig_ideal) / np.linalg.norm(sig_ideal)
        assert rel < 0.01  # 12-bit quantization is nearly transparent


class TestSignatureCarriesSpecInformation:
    """Figure 4's premise: process moves specs and signature together."""

    def test_signature_distance_correlates_with_spec_distance(self):
        cfg = simulation_config()
        cfg.digitizer_noise_vrms = 0.0
        board = SignatureTestBoard(cfg)
        space = lna_parameter_space()
        rng = np.random.default_rng(3)
        stim = StimulusEncoding(16, cfg.capture_seconds, 0.4).decode(
            rng.uniform(-0.25, 0.25, 16)
        )
        points = space.sample(rng, 25)
        devices = [LNA900(space.to_dict(p)) for p in points]
        sigs = np.vstack([board.signature(d, stim) for d in devices])
        gains = np.array([d.gain_db() for d in devices])
        ref_sig, ref_gain = sigs[0], gains[0]
        sig_dist = np.linalg.norm(sigs - ref_sig, axis=1)
        gain_dist = np.abs(gains - ref_gain)
        corr = np.corrcoef(sig_dist[1:], gain_dist[1:])[0, 1]
        assert corr > 0.7

    def test_identical_devices_identical_signatures(self):
        cfg = simulation_config()
        cfg.digitizer_noise_vrms = 0.0
        board = SignatureTestBoard(cfg)
        stim = StimulusEncoding(16, cfg.capture_seconds, 0.4).decode(
            np.linspace(-0.2, 0.2, 16)
        )
        s1 = board.signature(LNA900(), stim)
        s2 = board.signature(LNA900(), stim)
        assert np.array_equal(s1, s2)


class TestTestTimeClaim:
    """Section 4.2: signature test needs 5 ms capture; the conventional
    insertion needs hundreds of milliseconds of sequential tests."""

    def test_signature_much_faster(self):
        from repro.loadboard.signature_path import hardware_config

        conventional = ConventionalRFATE().insertion_time()
        signature = hardware_config().total_test_time()
        assert conventional / signature > 10.0
