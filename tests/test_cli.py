"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.seed == 2002
        assert args.train == 100
        assert args.stimulus == "ga"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wat"])


class TestCommands:
    def test_sim_reduced(self, capsys):
        code = main(
            ["sim", "--seed", "5", "--train", "20", "--val", "8",
             "--stimulus", "ramp"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gain_db" in out
        assert "paper 0.060" in out

    def test_hardware_fast(self, capsys):
        code = main(
            ["hardware", "--seed", "3", "--cal", "14", "--val", "8", "--fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gain_db" in out
        assert "paper 0.16" in out

    def test_phase(self, capsys):
        code = main(["phase", "--points", "5"])
        assert code == 0
        assert "worst-case" in capsys.readouterr().out

    def test_economics(self, capsys):
        code = main(["economics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_economics_multisite(self, capsys):
        code = main(["economics", "--sites", "4"])
        assert code == 0
        assert "4 sites" in capsys.readouterr().out

    def test_report_fast(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(["report", str(out_path), "--fast"])
        assert code == 0
        text = out_path.read_text()
        assert "# Reproduction report" in text
        assert "gain_db" in text
        assert "Phase robustness" in text
        assert "Hardware" not in text  # --fast skips it

    def test_program_roundtrip(self, tmp_path, capsys):
        from repro.runtime.artifacts import load_test_program

        out_path = tmp_path / "lna.rtp"
        code = main(["program", str(out_path), "--seed", "2002"])
        assert code == 0
        program = load_test_program(out_path)
        assert program.metadata["dut"] == "LNA900"
        # the saved program predicts sane specs for a nominal device
        from repro.circuits.lna import LNA900
        from repro.loadboard.signature_path import (
            SignatureTestBoard,
            simulation_config,
        )

        board = SignatureTestBoard(simulation_config())
        sig = board.signature(LNA900(), program.stimulus,
                              rng=np.random.default_rng(0))
        specs = program.calibration.predict(sig)
        assert specs.gain_db == pytest.approx(LNA900().gain_db(), abs=0.3)
