"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.seed == 2002
        assert args.train == 100
        assert args.stimulus == "ga"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wat"])

    def test_streaming_defaults(self):
        serve = build_parser().parse_args(["serve"])
        assert serve.seconds == 10.0
        assert serve.interval == 25
        soak = build_parser().parse_args(["soak"])
        assert soak.seconds == 60.0
        assert soak.lot_size == 16
        assert soak.cells == 4
        assert soak.max_pending == 8
        assert soak.output == "benchmarks/results/streaming_soak.json"


class TestCommands:
    def test_sim_reduced(self, capsys):
        code = main(
            ["sim", "--seed", "5", "--train", "20", "--val", "8",
             "--stimulus", "ramp"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gain_db" in out
        assert "paper 0.060" in out

    def test_hardware_fast(self, capsys):
        code = main(
            ["hardware", "--seed", "3", "--cal", "14", "--val", "8", "--fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gain_db" in out
        assert "paper 0.16" in out

    def test_phase(self, capsys):
        code = main(["phase", "--points", "5"])
        assert code == 0
        assert "worst-case" in capsys.readouterr().out

    def test_economics(self, capsys):
        code = main(["economics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_economics_multisite(self, capsys):
        code = main(["economics", "--sites", "4"])
        assert code == 0
        assert "4 sites" in capsys.readouterr().out

    def test_report_fast(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(["report", str(out_path), "--fast"])
        assert code == 0
        text = out_path.read_text()
        assert "# Reproduction report" in text
        assert "gain_db" in text
        assert "Phase robustness" in text
        assert "Hardware" not in text  # --fast skips it

    def test_serve_live_stream(self, capsys):
        code = main(
            ["serve", "--seconds", "30", "--lots", "2", "--lot-size", "3",
             "--train", "8", "--interval", "1", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DUTs/s" in out  # live metrics lines
        assert "first lot bit-identical to offline flow: True" in out
        assert "health:     ok" in out

    def test_soak_writes_metrics_json(self, tmp_path, capsys):
        out_path = tmp_path / "soak.json"
        code = main(
            ["soak", "--seconds", "30", "--lots", "3", "--lot-size", "4",
             "--train", "8", "--seed", "7", "--executor", "thread:2",
             "--output", str(out_path)]
        )
        assert code == 0
        assert "soak metrics written to" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "streaming_soak"
        assert payload["lots_submitted"] == 3
        assert payload["devices_tested"] == 12
        assert payload["duts_per_second"] > 0
        assert payload["first_lot_bit_identical_to_offline"] is True
        assert payload["healthy"] is True

    def test_program_roundtrip(self, tmp_path, capsys):
        from repro.runtime.artifacts import load_test_program

        out_path = tmp_path / "lna.rtp"
        code = main(["program", str(out_path), "--seed", "2002"])
        assert code == 0
        program = load_test_program(out_path)
        assert program.metadata["dut"] == "LNA900"
        # the saved program predicts sane specs for a nominal device
        from repro.circuits.lna import LNA900
        from repro.loadboard.signature_path import (
            SignatureTestBoard,
            simulation_config,
        )

        board = SignatureTestBoard(simulation_config())
        sig = board.signature(LNA900(), program.stimulus,
                              rng=np.random.default_rng(0))
        specs = program.calibration.predict(sig)
        assert specs.gain_db == pytest.approx(LNA900().gain_db(), abs=0.3)


BAD_MODULE = (
    "import math\n"
    "__all__ = []\n"
    "def _gain(x):\n"
    "    return 20.0 * math.log10(x)\n"
)

CLEAN_MODULE = "__all__ = []\nX = 1\n"


class TestLintCLI:
    """signature-lint via both `python -m repro.analysis` and `repro lint`."""

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        assert lint_main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_MODULE)
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:4" in out
        assert "units-inline-db-conversion" in out

    def test_json_output_is_parseable(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_MODULE)
        assert lint_main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "units-inline-db-conversion"
        assert payload["findings"][0]["line"] == 4

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_name_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        assert lint_main([str(tmp_path), "--select", "no-such-rule"]) == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_select_and_ignore_filter_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_MODULE)
        assert lint_main([str(bad), "--ignore", "units-inline-db-conversion"]) == 0
        capsys.readouterr()
        assert lint_main([str(bad), "--select", "units-inline-db-conversion"]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "units-inline-db-conversion",
            "determinism-unseeded-rng",
            "api-missing-all",
            "numerics-bare-assert",
        ):
            assert name in out

    def test_repro_lint_subcommand(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_MODULE)
        assert main(["lint", str(bad)]) == 1
        assert "units-inline-db-conversion" in capsys.readouterr().out
        capsys.readouterr()
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        assert main(["lint", str(tmp_path / "ok.py"), "--format", "json"]) == 0
