"""Fixture tests for the unit-domain rules (dB vs. linear mixing)."""

import textwrap

from repro.analysis.engine import analyze_source
from repro.analysis.units import InlineDbConversionRule, MixedDomainRule


def lint(source, rule, path="repro/somewhere.py"):
    return analyze_source(textwrap.dedent(source), path, [rule])


class TestInlineDbConversion:
    def test_flags_10_log10(self):
        findings = lint(
            "import math\ng = 10.0 * math.log10(x)\n", InlineDbConversionRule()
        )
        assert len(findings) == 1
        assert "db()" in findings[0].message

    def test_flags_20_log10_reversed_operands(self):
        findings = lint(
            "import numpy as np\ng = np.log10(x) * 20\n", InlineDbConversionRule()
        )
        assert len(findings) == 1
        assert "db20()" in findings[0].message

    def test_flags_pow_over_10(self):
        findings = lint("lin = 10.0 ** (g / 10.0)\n", InlineDbConversionRule())
        assert len(findings) == 1
        assert "undb()" in findings[0].message

    def test_flags_pow_over_20_with_negated_numerator(self):
        findings = lint(
            "lin = 10.0 ** (-loss_db / 20.0)\n", InlineDbConversionRule()
        )
        assert len(findings) == 1
        assert "undb20()" in findings[0].message

    def test_designated_module_is_exempt(self):
        src = "import math\ng = 10.0 * math.log10(x)\n"
        assert lint(src, InlineDbConversionRule(), path="src/repro/dsp/units.py") == []

    def test_unrelated_multiplication_not_flagged(self):
        assert lint("y = 10.0 * x\nz = 2.0 ** (x / 10.0)\n", InlineDbConversionRule()) == []

    def test_log10_without_scale_factor_not_flagged(self):
        # plain log10 (e.g. decades for a Bode axis) is not a dB conversion
        assert lint("import math\nd = math.log10(f2 / f1)\n", InlineDbConversionRule()) == []

    def test_suppression_comment_silences(self):
        src = (
            "import math\n"
            "g = 10.0 * math.log10(x)  "
            "# repro-lint: disable=units-inline-db-conversion\n"
        )
        assert lint(src, InlineDbConversionRule()) == []


class TestMixedDomain:
    def test_flags_db_plus_linear(self):
        findings = lint("y = gain_db + vout_vrms\n", MixedDomainRule())
        assert len(findings) == 1
        assert "dB-domain" in findings[0].message

    def test_flags_linear_minus_db(self):
        assert len(lint("y = noise_watts - nf_db\n", MixedDomainRule())) == 1

    def test_flags_product_of_two_db_quantities(self):
        findings = lint("y = gain_db * loss_db\n", MixedDomainRule())
        assert len(findings) == 1
        assert "addition" in findings[0].message

    def test_db_plus_db_allowed(self):
        assert lint("total_db = gain_db + nf_db - loss_db\n", MixedDomainRule()) == []

    def test_linear_times_linear_allowed(self):
        assert lint("p = vout_vrms * vout_vrms / ratio\n", MixedDomainRule()) == []

    def test_converted_operand_allowed(self):
        # undb() moves the dB operand into the linear domain first
        assert lint("y = undb(gain_db) * vout_vrms\n", MixedDomainRule()) == []

    def test_converter_style_names_classified_by_destination(self):
        # vpeak_to_dbm(...) returns a dB quantity; adding dB is fine
        assert lint("y = vpeak_to_dbm(v) + gain_db\n", MixedDomainRule()) == []
        # ...but adding it to a voltage is mixing
        assert len(lint("y = vpeak_to_dbm(v) + vout_vrms\n", MixedDomainRule())) == 1

    def test_neutral_names_never_flagged(self):
        assert lint("y = alpha + beta * gamma\n", MixedDomainRule()) == []

    def test_attribute_operands_classified(self):
        assert len(lint("y = cfg.input_loss_db + wf.amplitude\n", MixedDomainRule())) == 1

    def test_suppression_comment_silences(self):
        src = "y = gain_db + vout_vrms  # repro-lint: disable=units-mixed-domain\n"
        assert lint(src, MixedDomainRule()) == []
