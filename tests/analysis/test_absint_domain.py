"""Unit tests for the interval domain behind the numeric rules.

Covers the edge cases the repo-wide run leans on -- empty and degenerate
intervals, infinite endpoints, NaN propagation, guard narrowing, widening
termination -- plus a randomized check that the float32 error model
actually bounds ``np.float32`` arithmetic.
"""

import math

import numpy as np
import pytest

from repro.analysis.absint import domain
from repro.analysis.absint.domain import (
    EMPTY,
    EPS32,
    Interval,
    TOP,
    const,
    rng,
)


class TestBasics:
    def test_empty_interval(self):
        assert EMPTY.is_empty
        assert Interval(1.0, -1.0).is_empty
        assert not EMPTY.contains(0.0)
        assert not EMPTY.contains_zero()

    def test_degenerate_point(self):
        p = const(2.5)
        assert p.is_point
        assert p.contains(2.5)
        assert not p.contains_zero()
        assert p.err32 == 2.5 * EPS32

    def test_const_nan_is_empty_with_nan_bit(self):
        c = const(float("nan"))
        assert c.is_empty
        assert c.may_nan

    def test_declared_range_is_error_free(self):
        # the certificate bounds the *body's* arithmetic for exactly
        # representable inputs, so a declared range seeds err32 = 0
        assert rng(1e-30, 1e30).err32 == 0.0

    def test_join_identity_and_absorption(self):
        a = rng(0.0, 1.0)
        assert domain.join(a, EMPTY) == a
        assert domain.join(EMPTY, a) == a
        assert domain.join(a, None) is None
        assert domain.join(None, a) is None
        j = domain.join(rng(0.0, 1.0), rng(5.0, 6.0))
        assert (j.lo, j.hi) == (0.0, 6.0)


class TestInfiniteEndpoints:
    def test_top_is_full_line(self):
        assert TOP.contains(math.inf)
        assert TOP.contains(-math.inf)
        assert TOP.contains_zero()

    def test_div_by_interval_containing_zero_is_top(self):
        out = domain.div(rng(1.0, 2.0), rng(-1.0, 1.0))
        assert out.lo == -math.inf and out.hi == math.inf
        # 1/0 is +/-inf, not NaN -- only 0/0 reaches NaN
        assert not out.may_nan
        assert domain.div(rng(0.0, 1.0), rng(-1.0, 1.0)).may_nan

    def test_log10_of_interval_touching_zero(self):
        out = domain.log10(rng(0.0, 1.0), scale=10.0)
        assert out.lo == -math.inf
        assert out.hi == 10.0 * math.log10(1.0) == 0.0

    def test_log10_of_nonpositive_is_bottom_sentinel(self):
        out = domain.log10(rng(-2.0, 0.0))
        assert out.lo == -math.inf and out.hi == -math.inf
        assert out.may_nan

    def test_mul_of_zero_free_intervals_stays_zero_free(self):
        # 5e-324 * 5e-324 underflows to 0.0 in float arithmetic, but the
        # real product of two positive numbers is positive
        tiny = rng(5e-324, math.inf)
        out = domain.mul(tiny, tiny)
        assert not out.contains_zero()
        assert out.lo > 0.0

    def test_div_with_unbounded_denominator_stays_zero_free(self):
        # 1/[2, inf] has inverse [0, 0.5]; the product must not
        # re-introduce zero into a zero-free quotient
        out = domain.div(rng(1.0, 100.0), rng(2.0, math.inf))
        assert not out.contains_zero()
        assert not out.may_nan
        # inf/inf is genuinely NaN-reachable when both sides are unbounded
        both = domain.div(rng(1.0, math.inf), rng(2.0, math.inf))
        assert not both.contains_zero()
        assert both.may_nan

    def test_div_of_zero_crossing_numerator_keeps_zero(self):
        out = domain.div(rng(-1.0, 1.0), rng(2.0, 4.0))
        assert out.contains_zero()


class TestNaNPropagation:
    def test_nan_flows_through_arithmetic(self):
        nanful = Interval(0.0, 1.0, may_nan=True)
        assert domain.add(nanful, const(1.0)).may_nan
        assert domain.mul(nanful, const(2.0)).may_nan
        assert domain.absval(nanful).may_nan

    def test_inf_minus_inf_sets_nan(self):
        out = domain.sub(rng(0.0, math.inf), rng(0.0, math.inf))
        assert out.may_nan

    def test_zero_times_inf_sets_nan(self):
        out = domain.mul(rng(0.0, 1.0), rng(0.0, math.inf))
        assert out.may_nan


class TestNarrowing:
    def test_narrow_unknown_creates_evidence(self):
        out = domain.narrow(None, ">", 0.0)
        assert out is not None
        assert out.lo > 0.0
        assert not out.contains_zero()

    def test_narrow_not_equal_on_unknown_stays_unknown(self):
        # an interval cannot encode a hole, so `x != 0` on an unknown
        # value proves nothing
        assert domain.narrow(None, "!=", 0.0) is None

    def test_strict_narrowing_excludes_the_bound(self):
        out = domain.narrow(rng(0.0, 10.0), ">", 0.0)
        assert out.lo > 0.0
        loose = domain.narrow(rng(0.0, 10.0), ">=", 0.0)
        assert loose.lo == 0.0

    def test_narrow_to_empty(self):
        out = domain.narrow(rng(0.0, 1.0), ">", 5.0)
        assert out.is_empty

    def test_narrow_clears_nan(self):
        nanful = Interval(-1.0, 1.0, may_nan=True)
        assert not domain.narrow(nanful, ">", 0.0).may_nan


class TestWidening:
    def test_widen_growing_upper_bound(self):
        w = domain.widen(rng(0.0, 1.0), rng(0.0, 2.0))
        assert w.hi == math.inf
        assert w.lo == 0.0

    def test_widen_growing_lower_bound(self):
        w = domain.widen(rng(0.0, 1.0), rng(-1.0, 1.0))
        assert w.lo == -math.inf

    def test_widen_is_stable_on_fixed_interval(self):
        a = rng(0.0, 1.0)
        assert domain.widen(a, a) == a

    def test_widen_chain_terminates(self):
        # a monotonically growing chain must reach a fixed point fast
        cur = rng(0.0, 1.0)
        steps = 0
        for step in range(2, 10):
            grown = domain.join(cur, rng(0.0, float(step)))
            nxt = domain.widen(cur, grown)
            if nxt == cur:
                break
            cur = nxt
            steps += 1
        assert cur.hi == math.inf
        assert steps == 1


class TestFloat32ErrorModel:
    """The certified absolute error must bound real float32 arithmetic."""

    def _f32_inputs(self, seed, lo, hi, n=200, log_spaced=False):
        gen = np.random.default_rng(seed)
        if log_spaced:
            xs = 10.0 ** gen.uniform(math.log10(lo), math.log10(hi), n)
        else:
            xs = gen.uniform(lo, hi, n)
        # inputs must be exactly representable in float32 -- that is the
        # contract the certificate is issued under
        return [float(np.float32(x)) for x in xs]

    def test_db_bound_holds(self):
        bound = domain.log10(rng(1e-30, 1e30), scale=10.0).err32
        assert math.isfinite(bound)
        for x in self._f32_inputs(1, 1e-30, 1e30, log_spaced=True):
            got = float(np.float32(10.0) * np.log10(np.float32(x)))
            want = 10.0 * math.log10(x)
            assert abs(got - want) <= bound

    def test_undb_bound_holds(self):
        scaled = domain.div(rng(-60.0, 60.0), const(10.0))
        bound = domain.pow10(scaled).err32
        assert math.isfinite(bound)
        for v in self._f32_inputs(2, -60.0, 60.0):
            got = float(np.float32(10.0) ** (np.float32(v) / np.float32(10.0)))
            want = 10.0 ** (v / 10.0)
            assert abs(got - want) <= bound

    @pytest.mark.parametrize(
        "op,np_op",
        [
            (domain.add, np.add),
            (domain.sub, np.subtract),
            (domain.mul, np.multiply),
        ],
    )
    def test_elementwise_bounds_hold(self, op, np_op):
        bound = op(rng(-1e3, 1e3), rng(-1e3, 1e3)).err32
        assert math.isfinite(bound)
        gen = np.random.default_rng(3)
        for _ in range(200):
            a = float(np.float32(gen.uniform(-1e3, 1e3)))
            b = float(np.float32(gen.uniform(-1e3, 1e3)))
            got = float(np_op(np.float32(a), np.float32(b)))
            want = float(np_op(a, b))
            assert abs(got - want) <= bound

    def test_div_bound_holds(self):
        bound = domain.div(rng(-1e3, 1e3), rng(1.0, 1e3)).err32
        assert math.isfinite(bound)
        gen = np.random.default_rng(4)
        for _ in range(200):
            a = float(np.float32(gen.uniform(-1e3, 1e3)))
            b = float(np.float32(gen.uniform(1.0, 1e3)))
            got = float(np.float32(a) / np.float32(b))
            assert abs(got - a / b) <= bound

    def test_cancellation_amplification_detects_loss(self):
        close = rng(0.999999, 1.000001)
        amp = domain.cancellation_amplification(close, const(1.0))
        assert amp >= 1e4
        far = rng(10.0, 20.0)
        assert domain.cancellation_amplification(far, const(1.0)) < 1e4
