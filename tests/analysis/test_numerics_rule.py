"""Fixture tests for the numerical-hygiene rules."""

import textwrap

from repro.analysis.engine import analyze_source
from repro.analysis.numerics import (
    BareAssertRule,
    FloatEqualityRule,
    InplaceParamRule,
)


def lint(source, rule, path="repro/somewhere.py"):
    return analyze_source(textwrap.dedent(source), path, [rule])


class TestInplaceParam:
    def test_flags_subscript_write_to_ndarray_param(self):
        src = """
            import numpy as np

            def normalize(x: np.ndarray) -> np.ndarray:
                x[0] = 0.0
                return x
            """
        findings = lint(src, InplaceParamRule())
        assert len(findings) == 1
        assert "`x`" in findings[0].message

    def test_flags_augmented_assignment_to_ndarray_param(self):
        src = """
            import numpy as np

            def shift(x: np.ndarray, offset: float) -> np.ndarray:
                x += offset
                return x
            """
        assert len(lint(src, InplaceParamRule())) == 1

    def test_copy_first_is_allowed(self):
        src = """
            import numpy as np

            def normalize(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float).copy()
                x[0] = 0.0
                return x
            """
        assert lint(src, InplaceParamRule()) == []

    def test_unannotated_params_not_tracked(self):
        src = "def set_item(d, k, v):\n    d[k] = v\n"
        assert lint(src, InplaceParamRule()) == []

    def test_local_array_writes_allowed(self):
        src = """
            import numpy as np

            def window(n: int) -> np.ndarray:
                w = np.ones(n)
                w[0] = 0.5
                return w
            """
        assert lint(src, InplaceParamRule()) == []


class TestFloatEquality:
    def test_flags_equality_with_nonzero_float_literal(self):
        findings = lint("ok = x == 0.5\n", FloatEqualityRule())
        assert len(findings) == 1
        assert "isclose" in findings[0].message

    def test_flags_inequality_too(self):
        assert len(lint("bad = y != 1.5\n", FloatEqualityRule())) == 1

    def test_zero_sentinel_allowed(self):
        assert lint("empty = x == 0.0\n", FloatEqualityRule()) == []

    def test_int_literal_allowed(self):
        assert lint("three = n == 3\n", FloatEqualityRule()) == []

    def test_ordering_comparisons_allowed(self):
        assert lint("big = x >= 0.5\n", FloatEqualityRule()) == []


class TestBareAssert:
    def test_flags_assert_in_library_code(self):
        findings = lint("def f(x):\n    assert x > 0\n", BareAssertRule())
        assert len(findings) == 1
        assert "python -O" in findings[0].message

    def test_assert_in_test_file_allowed(self):
        assert lint("def test_f():\n    assert 1 == 1\n", BareAssertRule(),
                    path="tests/test_f.py") == []

    def test_suppression_comment_silences(self):
        src = "def f(x):\n    assert x > 0  # repro-lint: disable=numerics-bare-assert\n"
        assert lint(src, BareAssertRule()) == []
