"""Fixture tests for the verify-relation-seeded rule."""

import textwrap

from repro.analysis.engine import analyze_source
from repro.analysis.verifyrules import RelationSeededRule


def lint(source, path="repro/somewhere.py"):
    return analyze_source(textwrap.dedent(source), path, [RelationSeededRule()])


class TestRngParameter:
    def test_flags_relation_without_rng_param(self):
        findings = lint(
            """
            from repro.verify import relation, floats

            @relation(name="r", params={"g": floats(0.0, 1.0)})
            def _rel(case):
                return case["g"]
            """
        )
        assert len(findings) == 1
        assert "no explicit rng/seed" in findings[0].message

    def test_relation_with_rng_param_clean(self):
        assert lint(
            """
            from repro.verify import relation, floats

            @relation(name="r", params={"g": floats(0.0, 1.0)})
            def _rel(case, rng):
                return float(rng.normal())
            """
        ) == []

    def test_seed_and_suffixed_rng_params_accepted(self):
        assert lint(
            """
            from repro.verify import relation

            @relation(name="a", params={})
            def _rel_a(case, seed):
                return seed

            @relation(name="b", params={})
            def _rel_b(case, noise_rng):
                return noise_rng.normal()
            """
        ) == []

    def test_attribute_qualified_decorator_recognized(self):
        findings = lint(
            """
            import repro.verify as verify

            @verify.relation(name="r", params={})
            def _rel(case):
                return 0.0
            """
        )
        assert len(findings) == 1

    def test_undecorated_function_ignored(self):
        assert lint(
            """
            def helper(case):
                return case
            """
        ) == []


class TestGlobalRngInBody:
    def test_flags_unseeded_default_rng(self):
        findings = lint(
            """
            import numpy as np
            from repro.verify import relation

            @relation(name="r", params={})
            def _rel(case, rng):
                extra = np.random.default_rng()
                return extra.normal()
            """
        )
        assert len(findings) == 1
        assert "unseeded" in findings[0].message

    def test_seeded_default_rng_allowed(self):
        assert lint(
            """
            import numpy as np
            from repro.verify import relation

            @relation(name="r", params={})
            def _rel(case, rng):
                sub = np.random.default_rng(case["seed"])
                return sub.normal()
            """
        ) == []

    def test_flags_legacy_numpy_global_draw(self):
        findings = lint(
            """
            import numpy as np
            from repro.verify import relation

            @relation(name="r", params={})
            def _rel(case, rng):
                return np.random.normal()
            """
        )
        assert len(findings) == 1
        assert "global numpy RNG" in findings[0].message

    def test_flags_stdlib_random_draw(self):
        findings = lint(
            """
            import random
            from repro.verify import relation

            @relation(name="r", params={})
            def _rel(case, rng):
                return random.uniform(0.0, 1.0)
            """
        )
        assert len(findings) == 1
        assert "stdlib global RNG" in findings[0].message

    def test_stdlib_random_instance_allowed(self):
        assert lint(
            """
            import random
            from repro.verify import relation

            @relation(name="r", params={})
            def _rel(case, rng):
                r = random.Random(case["seed"])
                return r.random()
            """
        ) == []

    def test_global_rng_outside_relation_not_this_rules_business(self):
        # Covered by the determinism rules, not verify-relation-seeded.
        assert lint(
            """
            import numpy as np

            def helper():
                return np.random.normal()
            """
        ) == []

    def test_suppression_comment_silences(self):
        src = (
            "import numpy as np\n"
            "from repro.verify import relation\n"
            "@relation(name='r', params={})\n"
            "def _rel(case, rng):\n"
            "    return np.random.normal()  "
            "# repro-lint: disable=verify-relation-seeded\n"
        )
        assert lint(src) == []


def test_rule_registered_in_default_rules():
    from repro.analysis import default_rules

    names = [rule.name for rule in default_rules()]
    assert "verify-relation-seeded" in names
