"""Tests for the signature-lint engine: suppression, walkers, findings."""

import textwrap

import pytest

from repro.analysis import default_rules
from repro.analysis.engine import (
    Finding,
    analyze_paths,
    analyze_source,
    iter_python_files,
    parse_suppressions,
)
from repro.analysis.numerics import BareAssertRule


def lint(source, rules, path="lib/module.py"):
    return analyze_source(textwrap.dedent(source), path, rules)


class TestSuppressions:
    def test_parse_single_rule(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=rule-a\n")
        assert sup == {1: {"rule-a"}}

    def test_parse_multiple_rules(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=a,b , c\n")
        assert sup == {1: {"a", "b", "c"}}

    def test_parse_bare_disable_means_all(self):
        assert parse_suppressions("x = 1  # repro-lint: disable\n") == {1: {"*"}}
        assert parse_suppressions("x = 1  # repro-lint: disable=all\n") == {1: {"*"}}

    def test_marker_inside_string_is_ignored(self):
        sup = parse_suppressions('x = "# repro-lint: disable=a"\n')
        assert sup == {}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # just a comment\n") == {}

    def test_suppression_silences_matching_rule(self):
        src = "def f():\n    assert True  # repro-lint: disable=numerics-bare-assert\n"
        assert lint(src, [BareAssertRule()]) == []

    def test_suppression_of_other_rule_does_not_silence(self):
        src = "def f():\n    assert True  # repro-lint: disable=some-other-rule\n"
        assert len(lint(src, [BareAssertRule()])) == 1

    def test_bare_disable_silences_everything(self):
        src = "def f():\n    assert True  # repro-lint: disable\n"
        assert lint(src, [BareAssertRule()]) == []


class TestAnalyzeSource:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint("def f(:\n", default_rules())
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"

    def test_library_only_rules_skip_test_files(self):
        src = "def f():\n    assert True\n"
        assert lint(src, [BareAssertRule()], path="tests/test_x.py") == []
        assert lint(src, [BareAssertRule()], path="lib/conftest.py") == []
        assert len(lint(src, [BareAssertRule()], path="lib/real.py")) == 1

    def test_findings_sorted_by_location(self):
        src = "def f():\n    assert True\n    assert True\n"
        findings = lint(src, [BareAssertRule()])
        assert [f.line for f in findings] == [2, 3]


class TestFinding:
    def test_format(self):
        f = Finding(path="a.py", line=3, col=5, rule="r", message="m")
        assert f.format() == "a.py:3:5: r: m"

    def test_to_dict_roundtrips_fields(self):
        f = Finding(path="a.py", line=3, col=5, rule="r", message="m")
        assert f.to_dict() == {
            "path": "a.py", "line": 3, "col": 5, "rule": "r", "message": "m"
        }


class TestWalkers:
    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.pyc").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        files = list(iter_python_files([str(tmp_path)]))
        assert files == [str(tmp_path / "pkg" / "a.py")]

    def test_iter_python_files_accepts_single_file(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("x = 1\n")
        assert list(iter_python_files([str(f)])) == [str(f)]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["does/not/exist"]))

    def test_analyze_paths_collects_across_files(self, tmp_path):
        (tmp_path / "a.py").write_text("def f():\n    assert True\n")
        (tmp_path / "b.py").write_text("def g():\n    assert True\n")
        findings = analyze_paths([str(tmp_path)], [BareAssertRule()])
        assert len(findings) == 2
        assert findings[0].path.endswith("a.py")
