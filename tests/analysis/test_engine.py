"""Tests for the signature-lint engine: suppression, walkers, findings."""

import textwrap

import pytest

from repro.analysis import default_rules
from repro.analysis.engine import (
    Finding,
    Rule,
    UnknownSuppressionRule,
    analyze_paths,
    analyze_source,
    iter_python_files,
    parse_suppressions,
)
from repro.analysis.numerics import BareAssertRule


def lint(source, rules, path="lib/module.py"):
    return analyze_source(textwrap.dedent(source), path, rules)


class TestSuppressions:
    def test_parse_single_rule(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=rule-a\n")
        assert sup == {1: {"rule-a"}}

    def test_parse_multiple_rules(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=a,b , c\n")
        assert sup == {1: {"a", "b", "c"}}

    def test_parse_bare_disable_means_all(self):
        assert parse_suppressions("x = 1  # repro-lint: disable\n") == {1: {"*"}}
        assert parse_suppressions("x = 1  # repro-lint: disable=all\n") == {1: {"*"}}

    def test_marker_inside_string_is_ignored(self):
        sup = parse_suppressions('x = "# repro-lint: disable=a"\n')
        assert sup == {}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # just a comment\n") == {}

    def test_suppression_silences_matching_rule(self):
        src = "def f():\n    assert True  # repro-lint: disable=numerics-bare-assert\n"
        assert lint(src, [BareAssertRule()]) == []

    def test_suppression_of_other_rule_does_not_silence(self):
        src = "def f():\n    assert True  # repro-lint: disable=some-other-rule\n"
        assert len(lint(src, [BareAssertRule()])) == 1

    def test_bare_disable_silences_everything(self):
        src = "def f():\n    assert True  # repro-lint: disable\n"
        assert lint(src, [BareAssertRule()]) == []


class FlagEveryDef(Rule):
    """Test helper: one finding on every function definition line."""

    name = "flag-every-def"
    description = "test rule"

    def check(self, module):
        import ast

        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef):
                yield self.finding(module, node, "def found")


class TestSuppressionPlacement:
    def test_multi_rule_disable_silences_both(self):
        src = (
            "def f():\n"
            "    assert True  # repro-lint: disable=numerics-bare-assert,rule-b\n"
        )
        assert lint(src, [BareAssertRule()]) == []

    def test_decorated_def_suppressed_on_def_line(self):
        # findings anchor on the `def` line, not the decorator line
        src = (
            "import functools\n"
            "@functools.cache\n"
            "def f():  # repro-lint: disable=flag-every-def\n"
            "    return 1\n"
        )
        assert lint(src, [FlagEveryDef()]) == []

    def test_decorator_line_comment_does_not_suppress(self):
        src = (
            "import functools\n"
            "@functools.cache  # repro-lint: disable=flag-every-def\n"
            "def f():\n"
            "    return 1\n"
        )
        findings = lint(src, [FlagEveryDef()])
        assert [f.line for f in findings] == [3]


class TestUnknownSuppression:
    def test_unknown_rule_name_reported(self):
        rule = UnknownSuppressionRule(["rule-a"])
        findings = lint("x = 1  # repro-lint: disable=rule-b\n", [rule])
        assert [f.rule for f in findings] == ["lint-unknown-suppression"]
        assert "rule-b" in findings[0].message

    def test_known_rule_name_silent(self):
        rule = UnknownSuppressionRule(["rule-a"])
        assert lint("x = 1  # repro-lint: disable=rule-a\n", [rule]) == []

    def test_bare_disable_and_engine_pseudo_rules_silent(self):
        rule = UnknownSuppressionRule(["rule-a"])
        src = (
            "x = 1  # repro-lint: disable\n"
            "y = 2  # repro-lint: disable=parse-error\n"
            "z = 3  # repro-lint: disable=lint-unknown-suppression\n"
        )
        assert lint(src, [rule]) == []

    def test_typo_next_to_known_rule_still_reported(self):
        rule = UnknownSuppressionRule(["rule-a"])
        findings = lint(
            "x = 1  # repro-lint: disable=rule-a,rule-z\n", [rule]
        )
        assert len(findings) == 1
        assert "rule-z" in findings[0].message

    def test_default_rules_include_unknown_suppression_guard(self):
        names = [rule.name for rule in default_rules()]
        assert "lint-unknown-suppression" in names


class TestAnalyzeSource:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint("def f(:\n", default_rules())
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"

    def test_library_only_rules_skip_test_files(self):
        src = "def f():\n    assert True\n"
        assert lint(src, [BareAssertRule()], path="tests/test_x.py") == []
        assert lint(src, [BareAssertRule()], path="lib/conftest.py") == []
        assert len(lint(src, [BareAssertRule()], path="lib/real.py")) == 1

    def test_findings_sorted_by_location(self):
        src = "def f():\n    assert True\n    assert True\n"
        findings = lint(src, [BareAssertRule()])
        assert [f.line for f in findings] == [2, 3]


class TestFinding:
    def test_format(self):
        f = Finding(path="a.py", line=3, col=5, rule="r", message="m")
        assert f.format() == "a.py:3:5: r: m"

    def test_to_dict_roundtrips_fields(self):
        f = Finding(path="a.py", line=3, col=5, rule="r", message="m")
        assert f.to_dict() == {
            "path": "a.py", "line": 3, "col": 5, "rule": "r", "message": "m"
        }


class TestWalkers:
    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.pyc").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        files = list(iter_python_files([str(tmp_path)]))
        assert files == [str(tmp_path / "pkg" / "a.py")]

    def test_iter_python_files_accepts_single_file(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("x = 1\n")
        assert list(iter_python_files([str(f)])) == [str(f)]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["does/not/exist"]))

    def test_analyze_paths_collects_across_files(self, tmp_path):
        (tmp_path / "a.py").write_text("def f():\n    assert True\n")
        (tmp_path / "b.py").write_text("def g():\n    assert True\n")
        findings = analyze_paths([str(tmp_path)], [BareAssertRule()])
        assert len(findings) == 2
        assert findings[0].path.endswith("a.py")
