"""Tests for the cross-module ``units-domain-flow`` dataflow rule."""

import textwrap

from repro.analysis.dataflow import DomainFlowRule
from repro.analysis.project import ProjectIndex


def index_of(**modules):
    """ProjectIndex from ``name=source`` fixtures under src/repro/."""
    sources = {
        f"src/repro/{name}.py": textwrap.dedent(source)
        for name, source in modules.items()
    }
    return ProjectIndex.from_sources(sources)


def findings_of(**modules):
    return sorted(DomainFlowRule().check_project(index_of(**modules)))


UNITS_FIXTURE = """
    from repro.dsp.units import undb


    def helper(x):
        return undb(x)
"""


class TestCrossModuleFlow:
    def test_linear_value_into_db_parameter_fires(self):
        findings = findings_of(
            calib="""
                from repro.dsp.units import undb


                def predict(gain_db):
                    return gain_db * 2.0
            """,
            caller="""
                from repro.calib import predict
                from repro.dsp.units import undb


                def run(g_db):
                    lin_gain = undb(g_db)
                    return predict(lin_gain)
            """,
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "units-domain-flow"
        assert finding.path == "src/repro/caller.py"
        assert "lin_gain" in finding.message
        assert "repro.calib.predict" in finding.message

    def test_matching_domains_stay_silent(self):
        assert findings_of(
            calib="""
                def predict(gain_db):
                    return gain_db * 2.0
            """,
            caller="""
                from repro.calib import predict


                def run(measured_db):
                    return predict(measured_db)
            """,
        ) == []

    def test_same_group_db_to_dbm_not_flagged(self):
        # dB into dBm is ordinary RF bookkeeping, not a domain crossing
        assert findings_of(
            calib="""
                def predict(power_dbm):
                    return power_dbm + 1.0
            """,
            caller="""
                from repro.calib import predict


                def run(gain_db):
                    return predict(gain_db)
            """,
        ) == []

    def test_unknown_argument_domain_not_flagged(self):
        assert findings_of(
            calib="""
                def predict(gain_db):
                    return gain_db * 2.0
            """,
            caller="""
                from repro.calib import predict


                def run(value):
                    return predict(value)
            """,
        ) == []

    def test_hz_into_db_parameter_fires(self):
        findings = findings_of(
            calib="""
                def predict(gain_db):
                    return gain_db * 2.0
            """,
            caller="""
                from repro.calib import predict


                def run(carrier_hz):
                    return predict(carrier_hz)
            """,
        )
        assert [f.rule for f in findings] == ["units-domain-flow"]

    def test_keyword_argument_checked(self):
        findings = findings_of(
            calib="""
                def predict(offset, gain_db):
                    return gain_db + offset
            """,
            caller="""
                from repro.calib import predict
                from repro.dsp.units import undb


                def run(g_db):
                    lin = undb(g_db)
                    return predict(0.0, gain_db=lin)
            """,
        )
        assert len(findings) == 1


class TestDomainSources:
    def test_docstring_tag_declares_parameter_domain(self):
        findings = findings_of(
            calib="""
                def predict(g):
                    '''Predict gain.

                    lint-domains: g=db
                    '''
                    return g * 2.0
            """,
            caller="""
                from repro.calib import predict
                from repro.dsp.units import undb


                def run(g_db):
                    lin = undb(g_db)
                    return predict(lin)
            """,
        )
        assert len(findings) == 1

    def test_string_annotation_declares_parameter_domain(self):
        findings = findings_of(
            calib="""
                def predict(g: "db"):
                    return g * 2.0
            """,
            caller="""
                from repro.calib import predict
                from repro.dsp.units import undb


                def run(g_db):
                    lin = undb(g_db)
                    return predict(lin)
            """,
        )
        assert len(findings) == 1

    def test_converter_return_domain_inferred(self):
        # undb(...) returns linear; passing it straight in fires without
        # any intermediate assignment
        findings = findings_of(
            calib="""
                def predict(gain_db):
                    return gain_db * 2.0
            """,
            caller="""
                from repro.calib import predict
                from repro.dsp.units import undb


                def run(g_db):
                    return predict(undb(g_db))
            """,
        )
        assert len(findings) == 1

    def test_return_domain_propagates_through_project_function(self):
        # helper() returns undb(...) -> linear; the flow crosses two edges
        findings = findings_of(
            units_helper=UNITS_FIXTURE,
            calib="""
                def predict(gain_db):
                    return gain_db * 2.0
            """,
            caller="""
                from repro.calib import predict
                from repro.units_helper import helper


                def run(g_db):
                    value = helper(g_db)
                    return predict(value)
            """,
        )
        assert len(findings) == 1

    def test_converter_argument_pins_parameter_domain(self):
        # calling undb(x) inside the callee declares x to be dB, so a
        # linear-named argument at the call site fires
        findings = findings_of(
            calib="""
                from repro.dsp.units import undb


                def predict(g):
                    return undb(g)
            """,
            caller="""
                from repro.calib import predict


                def run(vout_vrms):
                    return predict(vout_vrms)
            """,
        )
        assert len(findings) == 1

    def test_dataclass_constructor_parameters_checked(self):
        findings = findings_of(
            config="""
                from dataclasses import dataclass


                @dataclass
                class StimulusConfig:
                    carrier_hz: float
                    power_dbm: float
            """,
            caller="""
                from repro.config import StimulusConfig


                def build(freq_hz, level_db):
                    return StimulusConfig(carrier_hz=freq_hz, power_dbm=level_db)
            """,
        )
        # hz->hz fine, db->dbm same group: silent
        assert findings == []

    def test_dataclass_constructor_mismatch_fires(self):
        findings = findings_of(
            config="""
                from dataclasses import dataclass


                @dataclass
                class StimulusConfig:
                    carrier_hz: float
            """,
            caller="""
                from repro.config import StimulusConfig


                def build(level_db):
                    return StimulusConfig(carrier_hz=level_db)
            """,
        )
        assert len(findings) == 1


class TestResolutionLimits:
    def test_unresolvable_callee_never_flagged(self):
        assert findings_of(
            caller="""
                def run(obj, gain_db):
                    return obj.predict(gain_db)
            """,
        ) == []

    def test_ambiguous_method_name_not_resolved(self):
        # two classes define predict(); the bare call must not guess
        assert findings_of(
            a="""
                class ModelA:
                    def predict(self, gain_db):
                        return gain_db
            """,
            b="""
                class ModelB:
                    def predict(self, vout_vrms):
                        return vout_vrms
            """,
            caller="""
                def run(thing, x):
                    return thing.predict(x)
            """,
        ) == []

    def test_self_method_call_resolves_within_class(self):
        findings = findings_of(
            model="""
                from repro.dsp.units import undb


                class Model:
                    def predict(self, gain_db):
                        return gain_db

                    def run(self, g_db):
                        lin = undb(g_db)
                        return self.predict(lin)
            """,
        )
        assert len(findings) == 1
