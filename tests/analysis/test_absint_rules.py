"""Fixture tests for the four interval-analysis project rules.

Each seeded bug is paired with the PR 4 dataflow rule to show the
abstract interpreter catches what unit-domain tracking cannot: all four
fixtures are unit-correct, so ``units-domain-flow`` stays silent while
the value analysis fires.
"""

import textwrap

from repro.analysis.absint import analyze_index, certification_report
from repro.analysis.absint.rules import (
    ABSINT_RULES,
    NumCancellationRule,
    NumDivZeroRule,
    NumFloat32UnsafeRule,
    NumLogNonpositiveRule,
)
from repro.analysis.dataflow import DomainFlowRule
from repro.analysis.project import ProjectIndex


def index_of(**modules):
    """ProjectIndex from ``name=source`` fixtures under src/repro/."""
    sources = {
        f"src/repro/{name}.py": textwrap.dedent(source)
        for name, source in modules.items()
    }
    return ProjectIndex.from_sources(sources)


def findings_of(rule, **modules):
    index = index_of(**modules)
    # the seeded bugs are unit-correct: symbolic dataflow must miss them
    assert list(DomainFlowRule().check_project(index)) == []
    return sorted(rule.check_project(index))


class TestLogNonpositive:
    def test_interval_reaching_zero_into_log_fires(self):
        findings = findings_of(
            NumLogNonpositiveRule(),
            feat="""
                import numpy as np


                def log_feature(power):
                    '''Log-domain feature.

                    lint-ranges: power=[0, 1]
                    '''
                    return np.log10(power)
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "num-log-nonpositive"
        assert "log" in findings[0].message

    def test_guard_suppresses_the_finding(self):
        findings_list = list(
            NumLogNonpositiveRule().check_project(
                index_of(
                    feat="""
                        import numpy as np


                        def log_feature(power):
                            '''lint-ranges: power=[0, 1]'''
                            if power <= 0:
                                return -300.0
                            return np.log10(power)
                    """
                )
            )
        )
        assert findings_list == []

    def test_errstate_region_is_sanctioned(self):
        findings_list = list(
            NumLogNonpositiveRule().check_project(
                index_of(
                    feat="""
                        import numpy as np


                        def log_feature(power):
                            '''lint-ranges: power=[0, 1]'''
                            with np.errstate(divide="ignore"):
                                return np.log10(power)
                    """
                )
            )
        )
        assert findings_list == []

    def test_interprocedural_interval_flow(self):
        # the dangerous range comes from the callee's proven return
        findings = findings_of(
            NumLogNonpositiveRule(),
            chain="""
                import numpy as np


                def headroom(margin_db):
                    '''lint-ranges: margin_db=[-6, 6]'''
                    return margin_db

                def log_headroom(margin_db):
                    '''lint-ranges: margin_db=[-6, 6]'''
                    return np.log10(headroom(margin_db))
            """,
        )
        assert len(findings) == 1


class TestDivZero:
    def test_denominator_containing_zero_fires(self):
        findings = findings_of(
            NumDivZeroRule(),
            norm="""
                def normalize(x, total):
                    '''lint-ranges: x=[0, 1] total=[0, 100]'''
                    return x / total
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "num-div-zero"

    def test_guarded_denominator_is_clean(self):
        index = index_of(
            norm="""
                def normalize(x, total):
                    '''lint-ranges: x=[0, 1] total=[0, 100]'''
                    if total == 0.0:
                        return 0.0
                    return x / total
            """
        )
        assert list(NumDivZeroRule().check_project(index)) == []

    def test_positive_floor_is_clean(self):
        index = index_of(
            norm="""
                import numpy as np


                def normalize(x, total):
                    '''lint-ranges: x=[0, 1] total=[0, 100]'''
                    return x / np.maximum(total, 1e-12)
            """
        )
        assert list(NumDivZeroRule().check_project(index)) == []


class TestCancellation:
    def test_close_subtraction_fires(self):
        findings = findings_of(
            NumCancellationRule(),
            cal="""
                def delta(measured):
                    '''Offset from the reference tone.

                    lint-ranges: measured=[0.999999, 1.000001]
                    '''
                    return measured - 1.0
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "num-cancellation"

    def test_well_separated_subtraction_is_clean(self):
        index = index_of(
            cal="""
                def delta(measured):
                    '''lint-ranges: measured=[10, 20]'''
                    return measured - 1.0
            """
        )
        assert list(NumCancellationRule().check_project(index)) == []


class TestFloat32Unsafe:
    def test_budget_exceeded_fires(self):
        findings = findings_of(
            NumFloat32UnsafeRule(),
            feat="""
                import numpy as np


                def db_feature(ratio):
                    '''lint-ranges: ratio=[1e-6, 1e6]
                    lint-float32-budget: 1e-9
                    '''
                    return 10.0 * np.log10(ratio)
            """,
        )
        assert len(findings) == 1
        assert "exceeds its float32 budget" in findings[0].message

    def test_unprovable_output_with_budget_fires(self):
        index = index_of(
            feat="""
                def mystery(x):
                    '''lint-float32-budget: 1e-6'''
                    return helper(x)
            """
        )
        findings = list(NumFloat32UnsafeRule().check_project(index))
        assert len(findings) == 1
        assert "no output interval" in findings[0].message

    def test_budget_met_is_clean(self):
        index = index_of(
            feat="""
                import numpy as np


                def db_feature(ratio):
                    '''lint-ranges: ratio=[1e-6, 1e6]
                    lint-float32-budget: 1e-3
                    '''
                    return 10.0 * np.log10(ratio)
            """
        )
        assert list(NumFloat32UnsafeRule().check_project(index)) == []


class TestFixpointTermination:
    def test_growing_loop_terminates_via_widening(self):
        index = index_of(
            loopy="""
                def accumulate(x):
                    '''lint-ranges: x=[0, 1]'''
                    for _ in range(1000):
                        x = x + 1.0
                    return x
            """
        )
        result = analyze_index(index)
        assert result.rounds <= 20

    def test_mutual_recursion_terminates(self):
        index = index_of(
            rec="""
                def ping(x):
                    '''lint-ranges: x=[0, 1]'''
                    return pong(x) + 1.0

                def pong(x):
                    '''lint-ranges: x=[0, 1]'''
                    return ping(x) + 1.0
            """
        )
        result = analyze_index(index)
        assert result.rounds <= 20


class TestCertificationReport:
    def test_report_lists_proven_interval_and_budget(self):
        index = index_of(
            feat="""
                import numpy as np


                def db_feature(ratio):
                    '''lint-ranges: ratio=[1e-6, 1e6]
                    lint-float32-budget: 1e-3
                    '''
                    return 10.0 * np.log10(ratio)
            """
        )
        report = certification_report(index)
        rows = {r["function"]: r for r in report["functions"]}
        row = rows["repro.feat.db_feature"]
        assert row["return_interval"]["lo"] == -60.0
        assert row["return_interval"]["hi"] == 60.0
        assert 0.0 < row["float32_abs_error"] < 1e-3
        assert row["budget_ok"] is True
        assert report["summary"]["with_budget"] == 1
        assert report["summary"]["budget_ok"] == 1

    def test_memoized_result_is_shared_across_rules(self):
        index = index_of(
            norm="""
                def normalize(x, total):
                    '''lint-ranges: x=[0, 1] total=[0, 100]'''
                    return x / total
            """
        )
        for rule in ABSINT_RULES:
            list(rule.check_project(index))
        first = analyze_index(index)
        assert analyze_index(index) is first
