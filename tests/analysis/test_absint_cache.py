"""Warm-cache replay of the interval-analysis findings.

The whole-project fixpoint is the expensive half of a lint run, so
:func:`repro.analysis.driver.analyze_project` caches project-level
findings keyed on the exact file set (path, mtime, size).  These tests
prove a warm run replays the absint findings *without* re-running the
interpreter, and that any file change invalidates the key.
"""

import pytest

from repro.analysis.absint import interp
from repro.analysis.driver import analyze_project

DIV_BUG = (
    '"""Module with a provable division hazard."""\n\n'
    '__all__ = ["normalize"]\n\n\n'
    "def normalize(x, total):\n"
    "    '''lint-ranges: x=[0, 1] total=[0, 100]'''\n"
    "    return x / total\n"
)


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "buggy.py").write_text(DIV_BUG)
    return tmp_path / "src", tmp_path / "cache"


class TestWarmCacheReplaysAbsint:
    def test_warm_run_skips_the_fixpoint(self, tree, monkeypatch):
        src, cache = tree
        cold = analyze_project([str(src)], cache_dir=str(cache))
        assert any(f.rule == "num-div-zero" for f in cold.findings)
        assert not cold.project_from_cache

        def boom(self):
            raise AssertionError("fixpoint re-ran on a warm cache")

        monkeypatch.setattr(interp._Interpreter, "run", boom)
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert warm.project_from_cache
        assert warm.findings == cold.findings

    def test_edit_invalidates_the_project_key(self, tree):
        src, cache = tree
        cold = analyze_project([str(src)], cache_dir=str(cache))
        assert any(f.rule == "num-div-zero" for f in cold.findings)
        fixed = DIV_BUG.replace(
            "    return x / total\n",
            "    if total == 0.0:\n"
            "        return 0.0\n"
            "    return x / total\n",
        )
        (src / "repro" / "buggy.py").write_text(fixed)
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert not warm.project_from_cache
        assert not any(f.rule == "num-div-zero" for f in warm.findings)

    def test_new_file_invalidates_the_project_key(self, tree):
        src, cache = tree
        analyze_project([str(src)], cache_dir=str(cache))
        (src / "repro" / "extra.py").write_text(
            '"""Another clean module."""\n\n__all__ = ["one"]\n\n\n'
            "def one():\n    return 1.0\n"
        )
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert not warm.project_from_cache

    def test_no_cache_dir_always_runs_the_fixpoint(self, tree):
        src, _ = tree
        report = analyze_project([str(src)])
        assert not report.project_from_cache
        assert any(f.rule == "num-div-zero" for f in report.findings)
