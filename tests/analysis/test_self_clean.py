"""Tier-1 gate: the repository's own library code must lint clean.

Any future PR that reintroduces an inline dB conversion, an unseeded
RNG, an undeclared public name, or a numerics foot-gun fails here with
the exact file:line:rule it violated.
"""

import os

import repro
from repro.analysis import analyze_paths, default_rules


def _src_root() -> str:
    # resolve the installed package location so the gate works from any cwd
    return os.path.dirname(os.path.abspath(repro.__file__))


def _repo_dirs():
    # tests/ and benchmarks/ live next to this file's parent, not in the
    # installed package; only lint them when running from a checkout
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    return [
        d
        for d in (os.path.join(repo_root, "tests"), os.path.join(repo_root, "benchmarks"))
        if os.path.isdir(d)
    ]


class TestRepositoryIsLintClean:
    def test_library_tree_has_no_findings(self):
        findings = analyze_paths([_src_root()], default_rules())
        report = "\n".join(f.format() for f in findings)
        assert findings == [], f"signature-lint findings:\n{report}"

    def test_tests_and_benchmarks_have_no_findings(self):
        # same sweep CI's `make lint` runs over the non-library trees
        findings = analyze_paths(_repo_dirs(), default_rules())
        report = "\n".join(f.format() for f in findings)
        assert findings == [], f"signature-lint findings:\n{report}"

    def test_default_rule_names_are_unique(self):
        names = [rule.name for rule in default_rules()]
        assert len(names) == len(set(names))
        assert all(names), "every rule must have a name"
