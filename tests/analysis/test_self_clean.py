"""Tier-1 gate: the repository's own library code must lint clean.

Any future PR that reintroduces an inline dB conversion, an unseeded
RNG, an undeclared public name, a cross-module domain mix, an unsafe
executor task, or a batch-contract violation fails here with the exact
file:line:rule it violated.  The gate runs through
:func:`repro.analysis.analyze_project`, i.e. the same project-level
pipeline (including the interprocedural rules) that ``make lint`` runs.
"""

import os

import repro
from repro.analysis import analyze_project, default_rules


def _src_root() -> str:
    # resolve the installed package location so the gate works from any cwd
    return os.path.dirname(os.path.abspath(repro.__file__))


def _repo_dirs():
    # tests/ and benchmarks/ live next to this file's parent, not in the
    # installed package; only lint them when running from a checkout
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    return [
        d
        for d in (os.path.join(repo_root, "tests"), os.path.join(repo_root, "benchmarks"))
        if os.path.isdir(d)
    ]


class TestRepositoryIsLintClean:
    def test_library_tree_has_no_findings(self):
        report = analyze_project([_src_root()])
        text = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"signature-lint findings:\n{text}"

    def test_tests_and_benchmarks_have_no_findings(self):
        # same sweep CI's `make lint` runs over the non-library trees
        report = analyze_project(_repo_dirs())
        text = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"signature-lint findings:\n{text}"

    def test_default_rule_names_are_unique(self):
        names = [rule.name for rule in default_rules()]
        assert len(names) == len(set(names))
        assert all(names), "every rule must have a name"


class TestIncrementalCache:
    """The cache must change *when* files are analyzed, never *what* is found."""

    def _tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "good.py").write_text(
            '"""Clean module."""\n\n__all__ = ["triple"]\n\n\n'
            "def triple(x):\n    return 3 * x\n"
        )
        (pkg / "bad.py").write_text(
            '"""Module with a finding."""\n\n__all__ = ["f"]\n\n\n'
            "def f():\n    assert True\n"
        )
        return tmp_path / "src", tmp_path / "cache"

    def test_warm_run_returns_identical_findings(self, tmp_path):
        src, cache = self._tree(tmp_path)
        cold = analyze_project([str(src)], cache_dir=str(cache))
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert cold.findings != []
        assert warm.findings == cold.findings
        assert cold.analyzed == 2 and cold.cached == 0
        assert warm.analyzed == 0 and warm.cached == 2

    def test_single_edit_reanalyzes_at_most_one_file(self, tmp_path):
        src, cache = self._tree(tmp_path)
        analyze_project([str(src)], cache_dir=str(cache))
        edited = src / "repro" / "good.py"
        edited.write_text(edited.read_text() + "\n# trailing comment\n")
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert warm.analyzed <= 1
        assert warm.cached >= 1

    def test_fixing_a_finding_clears_it_on_warm_run(self, tmp_path):
        src, cache = self._tree(tmp_path)
        cold = analyze_project([str(src)], cache_dir=str(cache))
        assert any(f.rule == "numerics-bare-assert" for f in cold.findings)
        (src / "repro" / "bad.py").write_text(
            '"""Module, fixed."""\n\n__all__ = ["f"]\n\n\n'
            "def f():\n    return True\n"
        )
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert warm.findings == []

    def test_cache_differs_per_rule_set(self, tmp_path):
        from repro.analysis.numerics import BareAssertRule

        src, cache = self._tree(tmp_path)
        analyze_project([str(src)], cache_dir=str(cache))
        # a different rule set must not be served the old results
        narrowed = analyze_project(
            [str(src)], rules=[BareAssertRule()], cache_dir=str(cache)
        )
        assert narrowed.analyzed == 2
        assert [f.rule for f in narrowed.findings] == ["numerics-bare-assert"]

    def test_project_findings_survive_warm_runs(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "calib.py").write_text(
            '"""Callee."""\n\n__all__ = ["predict"]\n\n\n'
            "def predict(gain_db):\n    return gain_db * 2.0\n"
        )
        (pkg / "caller.py").write_text(
            '"""Caller with a cross-module domain mix."""\n\n'
            '__all__ = ["run"]\n\n'
            "from repro.calib import predict\n"
            "from repro.dsp.units import undb\n\n\n"
            "def run(g_db):\n"
            "    lin = undb(g_db)\n"
            "    return predict(lin)\n"
        )
        cache = tmp_path / "cache"
        cold = analyze_project([str(tmp_path / "src")], cache_dir=str(cache))
        warm = analyze_project([str(tmp_path / "src")], cache_dir=str(cache))
        assert [f.rule for f in cold.findings] == ["units-domain-flow"]
        assert warm.findings == cold.findings
        assert warm.analyzed == 0
