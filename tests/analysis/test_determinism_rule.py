"""Fixture tests for the determinism (RNG discipline) rules."""

import textwrap

from repro.analysis.determinism import (
    LegacyNpRandomRule,
    ModuleLevelRngRule,
    UnseededRngRule,
)
from repro.analysis.engine import analyze_source


def lint(source, rule, path="repro/somewhere.py"):
    return analyze_source(textwrap.dedent(source), path, [rule])


class TestUnseededRng:
    def test_flags_bare_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                return rng.normal()
            """,
            UnseededRngRule(),
        )
        assert len(findings) == 1
        assert "unseeded" in findings[0].message

    def test_seeded_default_rng_allowed(self):
        src = "import numpy as np\nrngf = lambda: np.random.default_rng(42)\n"
        assert lint(src, UnseededRngRule()) == []

    def test_ifexp_fallback_idiom_allowed(self):
        src = """
            import numpy as np

            def measure(rng=None):
                rng = rng if rng is not None else np.random.default_rng()
                return rng.normal()
            """
        assert lint(src, UnseededRngRule()) == []

    def test_statement_fallback_idiom_allowed(self):
        src = """
            import numpy as np

            def measure(rng=None):
                if rng is None:
                    rng = np.random.default_rng()
                return rng.normal()
            """
        assert lint(src, UnseededRngRule()) == []

    def test_bare_name_import_also_flagged(self):
        src = """
            from numpy.random import default_rng

            def sample():
                return default_rng().normal()
            """
        assert len(lint(src, UnseededRngRule())) == 1

    def test_suppression_comment_silences(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()  "
            "# repro-lint: disable=determinism-unseeded-rng\n"
        )
        assert lint(src, UnseededRngRule()) == []


class TestLegacyNpRandom:
    def test_flags_global_seed_and_draws(self):
        src = """
            import numpy as np
            np.random.seed(0)
            x = np.random.normal(size=3)
            y = np.random.rand()
            """
        findings = lint(src, LegacyNpRandomRule())
        assert len(findings) == 3
        assert all("legacy" in f.message for f in findings)

    def test_flags_random_state(self):
        assert len(lint(
            "import numpy as np\nr = np.random.RandomState(7)\n", LegacyNpRandomRule()
        )) == 1

    def test_generator_api_allowed(self):
        src = """
            import numpy as np

            def f(rng: np.random.Generator) -> float:
                return float(rng.normal())

            def make(seed: int) -> np.random.Generator:
                return np.random.default_rng(np.random.SeedSequence(seed))
            """
        assert lint(src, LegacyNpRandomRule()) == []

    def test_full_numpy_module_path_flagged(self):
        assert len(lint(
            "import numpy\nx = numpy.random.uniform()\n", LegacyNpRandomRule()
        )) == 1


class TestModuleLevelRng:
    def test_flags_module_level_generator_even_when_seeded(self):
        src = "import numpy as np\nRNG = np.random.default_rng(2002)\n"
        findings = lint(src, ModuleLevelRngRule())
        assert len(findings) == 1
        assert "module-level" in findings[0].message

    def test_function_local_generator_allowed(self):
        src = """
            import numpy as np

            def run(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
            """
        assert lint(src, ModuleLevelRngRule()) == []

    def test_module_level_non_rng_assignment_allowed(self):
        assert lint("import math\nTWO_PI = 2.0 * math.pi\n", ModuleLevelRngRule()) == []
