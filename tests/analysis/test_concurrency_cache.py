"""Warm-cache replay of the concurrency findings.

The lockset/lock-order pass rides the same project-findings cache as
the interval analysis: a warm run must replay ``conc-*`` findings
without rebuilding the call graph, a one-file edit must re-parse only
that file, and any edit invalidates the cached project findings.
"""

import pytest

from repro.analysis.concurrency import rules as conc_rules
from repro.analysis.driver import analyze_project

RACY_METER = (
    '"""Module with a provable cross-thread race."""\n\n'
    "import threading\n\n"
    '__all__ = ["Meter"]\n\n\n'
    "class Meter(threading.Thread):\n"
    '    """Counts ticks on a worker thread."""\n\n'
    "    def __init__(self):\n"
    "        super().__init__()\n"
    "        self._lock = threading.Lock()\n"
    "        self.total = 0\n\n"
    "    def run(self):\n"
    "        self.total = self.total + 1\n\n"
    "    def snapshot(self):\n"
    "        return self.total\n"
)

FIXED_METER = RACY_METER.replace(
    "    def run(self):\n"
    "        self.total = self.total + 1\n\n"
    "    def snapshot(self):\n"
    "        return self.total\n",
    "    def run(self):\n"
    "        with self._lock:\n"
    "            self.total = self.total + 1\n\n"
    "    def snapshot(self):\n"
    "        with self._lock:\n"
    "            return self.total\n",
)

CLEAN_MODULE = (
    '"""A clean sibling module the edit test must not re-analyze."""\n\n'
    '__all__ = ["double"]\n\n\n'
    "def double(x):\n"
    "    return 2.0 * x\n"
)


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "meter.py").write_text(RACY_METER)
    (pkg / "clean.py").write_text(CLEAN_MODULE)
    return tmp_path / "src", tmp_path / "cache"


class TestWarmCacheReplaysConcurrency:
    def test_warm_run_skips_the_analyzer(self, tree, monkeypatch):
        src, cache = tree
        cold = analyze_project([str(src)], cache_dir=str(cache))
        assert any(f.rule == "conc-unlocked-shared-write" for f in cold.findings)
        assert not cold.project_from_cache

        def boom(self):
            raise AssertionError("concurrency pass re-ran on a warm cache")

        monkeypatch.setattr(conc_rules._Analyzer, "run", boom)
        warm = analyze_project([str(src)], cache_dir=str(cache))
        assert warm.project_from_cache
        assert warm.analyzed == 0
        assert warm.findings == cold.findings

    def test_one_file_edit_reanalyzes_only_that_file(self, tree):
        src, cache = tree
        cold = analyze_project([str(src)], cache_dir=str(cache))
        assert cold.analyzed == 2
        assert any(f.rule == "conc-unlocked-shared-write" for f in cold.findings)

        (src / "repro" / "meter.py").write_text(FIXED_METER)
        warm = analyze_project([str(src)], cache_dir=str(cache))
        # the edited file is the only cache miss...
        assert warm.analyzed == 1
        assert warm.cached == 1
        # ...but the project-level findings are recomputed, not replayed
        assert not warm.project_from_cache
        assert not any(f.rule.startswith("conc-") for f in warm.findings)

    def test_no_cache_dir_always_runs_the_analyzer(self, tree):
        src, _ = tree
        report = analyze_project([str(src)])
        assert not report.project_from_cache
        assert any(f.rule == "conc-unlocked-shared-write" for f in report.findings)
