"""Fixture tests for the API-surface rules (__all__ discipline)."""

import textwrap

from repro.analysis.api import MissingAllRule, StarImportRule, UndeclaredPublicRule
from repro.analysis.engine import analyze_source


def lint(source, rule, path="repro/somewhere.py"):
    return analyze_source(textwrap.dedent(source), path, [rule])


class TestMissingAll:
    def test_flags_module_without_all(self):
        findings = lint("def f():\n    return 1\n", MissingAllRule())
        assert len(findings) == 1
        assert "__all__" in findings[0].message

    def test_empty_all_satisfies(self):
        assert lint("__all__ = []\n", MissingAllRule()) == []

    def test_annotated_all_satisfies(self):
        assert lint("__all__: list = []\n", MissingAllRule()) == []

    def test_test_files_exempt(self):
        assert lint("def f():\n    return 1\n", MissingAllRule(),
                    path="tests/test_f.py") == []


class TestUndeclaredPublic:
    def test_flags_public_function_not_in_all(self):
        src = '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef g():\n    pass\n'
        findings = lint(src, UndeclaredPublicRule())
        assert len(findings) == 1
        assert "`g`" in findings[0].message

    def test_flags_public_class_not_in_all(self):
        src = "__all__ = []\n\nclass Thing:\n    pass\n"
        findings = lint(src, UndeclaredPublicRule())
        assert len(findings) == 1
        assert "class" in findings[0].message

    def test_private_names_exempt(self):
        src = "__all__ = []\n\ndef _helper():\n    pass\n\nclass _Impl:\n    pass\n"
        assert lint(src, UndeclaredPublicRule()) == []

    def test_nested_defs_exempt(self):
        src = '__all__ = ["f"]\n\ndef f():\n    def inner():\n        pass\n'
        assert lint(src, UndeclaredPublicRule()) == []

    def test_all_growth_via_extend_counted(self):
        src = '__all__ = ["f"]\n__all__.extend(["g"])\n\ndef f():\n    pass\n\ndef g():\n    pass\n'
        assert lint(src, UndeclaredPublicRule()) == []

    def test_module_without_all_left_to_missing_all_rule(self):
        assert lint("def f():\n    pass\n", UndeclaredPublicRule()) == []


class TestStarImport:
    def test_flags_star_import(self):
        findings = lint("from numpy import *\n", StarImportRule())
        assert len(findings) == 1
        assert "wildcard" in findings[0].message

    def test_explicit_imports_allowed(self):
        assert lint("from numpy import array, zeros\n", StarImportRule()) == []
