"""Tests for the ``batch-shape-mismatch`` batch-contract rule."""

import textwrap

from repro.analysis.contracts import BatchShapeRule, sibling_pairs
from repro.analysis.project import ProjectIndex


def index_of(**modules):
    sources = {
        f"src/repro/{name}.py": textwrap.dedent(source)
        for name, source in modules.items()
    }
    return ProjectIndex.from_sources(sources)


def findings_of(**modules):
    return sorted(BatchShapeRule().check_project(index_of(**modules)))


BOARD_FIXTURE = """
    class Board:
        def signature(self, device, stimulus):
            return device

        def signature_batch(self, devices, stimulus):
            return devices
"""


class TestSiblingDiscovery:
    def test_pairs_found_in_class(self):
        index = index_of(board=BOARD_FIXTURE)
        roles = sibling_pairs(index)
        assert roles == {
            "repro.board.Board.signature": "item",
            "repro.board.Board.signature_batch": "batch",
        }

    def test_lone_matrix_helper_has_no_role(self):
        index = index_of(
            calib="""
                def design_matrix(rows):
                    return rows
            """
        )
        assert sibling_pairs(index) == {}

    def test_module_level_pairs_found(self):
        index = index_of(
            capture="""
                def capture(device):
                    return device


                def capture_batch(devices):
                    return devices
            """
        )
        roles = sibling_pairs(index)
        assert roles["repro.capture.capture_batch"] == "batch"
        assert roles["repro.capture.capture"] == "item"


class TestBatchShapeMismatch:
    def test_single_item_into_batch_api_fires(self):
        findings = findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, device, stimulus):
                        return self.board.signature_batch(device, stimulus)
            """,
        )
        assert [f.rule for f in findings] == ["batch-shape-mismatch"]
        assert "signature_batch" in findings[0].message
        assert "device" in findings[0].message

    def test_batch_into_per_item_api_fires(self):
        findings = findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, devices, stimulus):
                        return self.board.signature(devices, stimulus)
            """,
        )
        assert len(findings) == 1
        assert "signature_batch" in findings[0].message

    def test_matching_shapes_are_silent(self):
        assert findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, devices, device, stimulus):
                        one = self.board.signature(device, stimulus)
                        lot = self.board.signature_batch(devices, stimulus)
                        return one, lot
            """,
        ) == []

    def test_list_literal_into_batch_api_is_fine(self):
        assert findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, device, stimulus):
                        return self.board.signature_batch([device], stimulus)
            """,
        ) == []

    def test_indexed_element_into_per_item_api_is_fine(self):
        assert findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, devices, stimulus):
                        return self.board.signature(devices[0], stimulus)
            """,
        ) == []

    def test_slice_of_batch_into_batch_api_is_fine(self):
        # a slice (literal or named) keeps the batch shape
        assert findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, devices, stimulus, n):
                        cal = slice(0, n)
                        head = self.board.signature_batch(devices[:4], stimulus)
                        rest = self.board.signature_batch(devices[cal], stimulus)
                        return head, rest
            """,
        ) == []

    def test_unknown_shape_is_never_flagged(self):
        assert findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, payload, stimulus):
                        return self.board.signature_batch(payload, stimulus)
            """,
        ) == []

    def test_loop_variable_into_per_item_api_is_fine(self):
        assert findings_of(
            board=BOARD_FIXTURE,
            runner="""
                from repro.board import Board


                class Runner:
                    def __init__(self):
                        self.board = Board()

                    def run(self, devices, stimulus):
                        return [
                            self.board.signature(d, stimulus) for d in devices
                        ]
            """,
        ) == []
