"""Fixture tests for the four lockset/lock-order project rules.

Each seeded bug is paired with the parallel-safety rules from the
executor PR to show the concurrency pass catches what dispatch-shape
checks cannot: every fixture pickles fine and captures no RNG, so all
of ``PARALLEL_RULES`` stay silent while the lockset analysis fires.
"""

import textwrap

from repro.analysis import default_rules
from repro.analysis.concurrency.rules import (
    CONCURRENCY_RULES,
    BlockingUnderLockRule,
    LockEscapeRule,
    LockOrderCycleRule,
    UnlockedSharedWriteRule,
    analyze_concurrency,
)
from repro.analysis.engine import UnknownSuppressionRule, analyze_source
from repro.analysis.parallel import PARALLEL_RULES
from repro.analysis.project import ProjectIndex


def index_of(**modules):
    """ProjectIndex from ``name=source`` fixtures under src/repro/."""
    sources = {
        f"src/repro/{name}.py": textwrap.dedent(source)
        for name, source in modules.items()
    }
    return ProjectIndex.from_sources(sources)


def findings_of(rule, **modules):
    index = index_of(**modules)
    # the seeded bugs have sound dispatch shapes: the parallel-safety
    # rules (pickling, captured RNGs, global mutation) must miss them
    for parallel_rule in PARALLEL_RULES:
        assert list(parallel_rule.check_project(index)) == []
    return sorted(rule.check_project(index))


RACY_METER = """
    import threading


    class Meter(threading.Thread):
        '''Counts ticks on a worker thread.'''

        def __init__(self):
            super().__init__()
            self._lock = threading.Lock()
            self.total = 0

        def run(self):
            self.total = self.total + 1

        def snapshot(self):
            return self.total
"""


class TestUnlockedSharedWrite:
    def test_thread_subclass_write_without_lock_fires(self):
        findings = findings_of(UnlockedSharedWriteRule(), meter=RACY_METER)
        assert len(findings) == 1
        assert findings[0].rule == "conc-unlocked-shared-write"
        assert "Meter.total" in findings[0].message
        assert "no common lock" in findings[0].message
        # anchored on the write inside run(), not the read
        source_line = textwrap.dedent(RACY_METER).splitlines()[findings[0].line - 1]
        assert "self.total = self.total + 1" in source_line

    def test_consistent_lock_is_silent(self):
        findings = findings_of(
            UnlockedSharedWriteRule(),
            meter="""
                import threading


                class Meter(threading.Thread):
                    '''Counts ticks on a worker thread.'''

                    def __init__(self):
                        super().__init__()
                        self._lock = threading.Lock()
                        self.total = 0

                    def run(self):
                        with self._lock:
                            self.total = self.total + 1

                    def snapshot(self):
                        with self._lock:
                            return self.total
            """,
        )
        assert findings == []

    def test_spawned_module_function_shares_a_global(self):
        findings = findings_of(
            UnlockedSharedWriteRule(),
            pump="""
                import threading

                total = 0


                def worker():
                    global total
                    total = total + 1


                def start():
                    global total
                    total = 0
                    thread = threading.Thread(target=worker)
                    thread.start()
                    return thread
            """,
        )
        assert len(findings) >= 1
        assert all(f.rule == "conc-unlocked-shared-write" for f in findings)
        assert "pump.total" in findings[0].message
        assert "thread `pump.worker`" in findings[0].message

    def test_single_writer_tag_exempts_the_class(self):
        source = RACY_METER.replace(
            "'''Counts ticks on a worker thread.'''",
            "'''Counts ticks on a worker thread.\n\n"
            "        lint-concurrency: single-writer\n        '''",
        )
        findings = list(
            UnlockedSharedWriteRule().check_project(index_of(meter=source))
        )
        assert findings == []

    def test_scoped_single_writer_tag_exempts_only_named_attrs(self):
        findings = list(
            UnlockedSharedWriteRule().check_project(
                index_of(
                    meter="""
                        import threading


                        class Meter(threading.Thread):
                            '''Counts ticks on a worker thread.

                            lint-concurrency: single-writer total
                            '''

                            def __init__(self):
                                super().__init__()
                                self.total = 0
                                self.state = "idle"

                            def run(self):
                                self.total = self.total + 1
                                self.state = "running"

                            def snapshot(self):
                                return (self.total, self.state)
                    """
                )
            )
        )
        assert len(findings) == 1
        assert "Meter.state" in findings[0].message
        assert "Meter.total" not in findings[0].message

    def test_threading_local_state_is_per_thread(self):
        findings = findings_of(
            UnlockedSharedWriteRule(),
            tape="""
                import threading


                class Tape(threading.Thread):
                    '''Per-thread scratch space.'''

                    def __init__(self):
                        super().__init__()
                        self._tls = threading.local()

                    def run(self):
                        self._tls.count = 1

                    def snapshot(self):
                        return self._tls.count
            """,
        )
        assert findings == []

    def test_entries_include_thread_roots(self):
        result = analyze_concurrency(index_of(meter=RACY_METER))
        assert result.entries.get("repro.meter.Meter.run") == "thread"


class TestLockEscape:
    GUARDED_WRITES = """
        import threading


        class Gauge(threading.Thread):
            '''Streams one reading per tick.'''

            def __init__(self):
                super().__init__()
                self._lock = threading.Lock()
                self.value = 0.0

            def run(self):
                with self._lock:
                    self.value = self.value + 1.0

            def peek(self):
                return self.value
    """

    def test_unguarded_read_of_guarded_attr_fires(self):
        findings = findings_of(LockEscapeRule(), gauge=self.GUARDED_WRITES)
        assert len(findings) == 1
        assert findings[0].rule == "conc-lock-escape"
        assert "Gauge.value" in findings[0].message
        assert "read here with no lock held" in findings[0].message
        assert "Gauge._lock" in findings[0].message

    def test_guarded_read_is_silent(self):
        findings = findings_of(
            LockEscapeRule(),
            gauge="""
                import threading


                class Gauge(threading.Thread):
                    '''Streams one reading per tick.'''

                    def __init__(self):
                        super().__init__()
                        self._lock = threading.Lock()
                        self.value = 0.0

                    def run(self):
                        with self._lock:
                            self.value = self.value + 1.0

                    def peek(self):
                        with self._lock:
                            return self.value
            """,
        )
        assert findings == []


class TestLockOrderCycle:
    INVERTED = """
        import threading


        class Service:
            '''Streaming service with a jobs lock and a metrics lock.'''

            def __init__(self):
                self._jobs_lock = threading.Lock()
                self._metrics_lock = threading.Lock()
                self.pending = 0
                self.emitted = 0

            def submit(self, item):
                with self._jobs_lock:
                    with self._metrics_lock:
                        self.pending = self.pending + 1

            def metrics(self):
                with self._metrics_lock:
                    with self._jobs_lock:
                        return (self.pending, self.emitted)
    """

    def test_inverted_two_lock_service_fires(self):
        findings = findings_of(LockOrderCycleRule(), service=self.INVERTED)
        assert len(findings) == 1
        assert findings[0].rule == "conc-lock-order-cycle"
        assert "potential deadlock" in findings[0].message
        assert "Service._jobs_lock" in findings[0].message
        assert "Service._metrics_lock" in findings[0].message

    def test_consistent_order_is_silent(self):
        findings = findings_of(
            LockOrderCycleRule(),
            service="""
                import threading


                class Service:
                    '''Streaming service with one global lock order.'''

                    def __init__(self):
                        self._jobs_lock = threading.Lock()
                        self._metrics_lock = threading.Lock()
                        self.pending = 0
                        self.emitted = 0

                    def submit(self, item):
                        with self._jobs_lock:
                            with self._metrics_lock:
                                self.pending = self.pending + 1

                    def metrics(self):
                        with self._jobs_lock:
                            with self._metrics_lock:
                                return (self.pending, self.emitted)
            """,
        )
        assert findings == []

    def test_cycle_across_methods_via_call_edge(self):
        # submit holds the jobs lock and *calls* a helper that takes the
        # metrics lock; metrics() inverts the order directly.  Only the
        # interprocedural held_any union sees the first leg.
        findings = findings_of(
            LockOrderCycleRule(),
            service="""
                import threading


                class Service:
                    '''Lock order hidden behind a call edge.'''

                    def __init__(self):
                        self._jobs_lock = threading.Lock()
                        self._metrics_lock = threading.Lock()
                        self.pending = 0

                    def _bump(self):
                        with self._metrics_lock:
                            self.pending = self.pending + 1

                    def submit(self, item):
                        with self._jobs_lock:
                            self._bump()

                    def metrics(self):
                        with self._metrics_lock:
                            with self._jobs_lock:
                                return self.pending
            """,
        )
        assert len(findings) == 1
        assert "potential deadlock" in findings[0].message


class TestBlockingUnderLock:
    PUT_UNDER_LOCK = """
        import queue
        import threading


        class Pump:
            '''Pushes records to a bounded outbox.'''

            def __init__(self):
                self._lock = threading.Lock()
                self._outbox = queue.Queue(maxsize=8)
                self.pushed = 0

            def push(self, item):
                with self._lock:
                    self._outbox.put(item)
                    self.pushed = self.pushed + 1
    """

    def test_queue_put_under_lock_fires(self):
        findings = findings_of(BlockingUnderLockRule(), pump=self.PUT_UNDER_LOCK)
        assert len(findings) == 1
        assert findings[0].rule == "conc-blocking-under-lock"
        assert "blocking call" in findings[0].message
        assert "Pump._lock" in findings[0].message

    def test_put_outside_the_critical_section_is_silent(self):
        findings = findings_of(
            BlockingUnderLockRule(),
            pump="""
                import queue
                import threading


                class Pump:
                    '''Pushes records to a bounded outbox.'''

                    def __init__(self):
                        self._lock = threading.Lock()
                        self._outbox = queue.Queue(maxsize=8)
                        self.pushed = 0

                    def push(self, item):
                        with self._lock:
                            self.pushed = self.pushed + 1
                        self._outbox.put(item)
            """,
        )
        assert findings == []


class TestRegistration:
    def test_conc_rules_ride_default_rules(self):
        names = [rule.name for rule in default_rules()]
        for rule in CONCURRENCY_RULES:
            assert rule.name in names

    def test_suppression_comments_know_conc_rule_names(self):
        guard = UnknownSuppressionRule(rule.name for rule in default_rules())
        source = (
            "x = 1  # repro-lint: disable=conc-lock-escape -- join ordered\n"
        )
        assert analyze_source(source, "lib/module.py", [guard]) == []

    def test_typoed_conc_rule_name_is_flagged(self):
        guard = UnknownSuppressionRule(rule.name for rule in default_rules())
        source = (
            "x = 1  # repro-lint: disable=conc-lock-escapes -- join ordered\n"
        )
        findings = analyze_source(source, "lib/module.py", [guard])
        assert [f.rule for f in findings] == ["lint-unknown-suppression"]
