"""Tests for the parallel-safety rules over map_tasks dispatch sites."""

import textwrap

from repro.analysis.parallel import (
    CapturedRngRule,
    GlobalMutationRule,
    UnpicklableTaskRule,
)
from repro.analysis.project import ProjectIndex


def index_of(**modules):
    sources = {
        f"src/repro/{name}.py": textwrap.dedent(source)
        for name, source in modules.items()
    }
    return ProjectIndex.from_sources(sources)


def findings_of(rule, **modules):
    return sorted(rule.check_project(index_of(**modules)))


class TestUnpicklableTask:
    def test_lambda_task_fires(self):
        findings = findings_of(
            UnpicklableTaskRule(),
            runner="""
                def run(executor, items):
                    return executor.map_tasks(lambda x: x + 1, items)
            """,
        )
        assert [f.rule for f in findings] == ["par-unpicklable-task"]
        assert "lambda" in findings[0].message

    def test_locally_defined_function_fires(self):
        findings = findings_of(
            UnpicklableTaskRule(),
            runner="""
                def run(executor, items):
                    def task(x):
                        return x + 1
                    return executor.map_tasks(task, items)
            """,
        )
        assert len(findings) == 1
        assert "task" in findings[0].message

    def test_partial_over_local_function_fires(self):
        findings = findings_of(
            UnpicklableTaskRule(),
            runner="""
                from functools import partial


                def run(executor, items):
                    def task(scale, x):
                        return x * scale
                    return executor.map_tasks(partial(task, 2.0), items)
            """,
        )
        assert len(findings) == 1

    def test_module_level_function_is_fine(self):
        assert findings_of(
            UnpicklableTaskRule(),
            runner="""
                def task(x):
                    return x + 1


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        ) == []

    def test_partial_over_module_function_is_fine(self):
        assert findings_of(
            UnpicklableTaskRule(),
            runner="""
                from functools import partial


                def task(scale, x):
                    return x * scale


                def run(executor, items):
                    return executor.map_tasks(partial(task, 2.0), items)
            """,
        ) == []


class TestCapturedRng:
    def test_lambda_closing_over_rng_fires(self):
        findings = findings_of(
            CapturedRngRule(),
            runner="""
                def run(executor, items, rng):
                    return executor.map_tasks(lambda x: rng.normal() + x, items)
            """,
        )
        assert [f.rule for f in findings] == ["par-captured-rng"]

    def test_rng_baked_into_partial_fires(self):
        findings = findings_of(
            CapturedRngRule(),
            runner="""
                from functools import partial


                def task(rng, x):
                    return rng.normal() + x


                def run(executor, items, rng):
                    return executor.map_tasks(partial(task, rng), items)
            """,
        )
        assert len(findings) == 1

    def test_reachable_module_rng_read_fires(self):
        findings = findings_of(
            CapturedRngRule(),
            worker="""
                import numpy as np

                _rng = np.random.default_rng(0)


                def task(x):
                    return _rng.normal() + x
            """,
            runner="""
                from repro.worker import task


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/worker.py"
        assert "_rng" in findings[0].message

    def test_per_task_seeds_are_fine(self):
        # the documented pattern: seeds in the item list, generator per task
        assert findings_of(
            CapturedRngRule(),
            runner="""
                import numpy as np


                def task(item):
                    seed, x = item
                    rng = np.random.default_rng(seed)
                    return rng.normal() + x


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        ) == []


class TestGlobalMutation:
    def test_reachable_global_write_fires(self):
        findings = findings_of(
            GlobalMutationRule(),
            worker="""
                _COUNT = 0


                def task(x):
                    global _COUNT
                    _COUNT = _COUNT + 1
                    return x
            """,
            runner="""
                from repro.worker import task


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        )
        assert [f.rule for f in findings] == ["par-global-mutation"]
        assert findings[0].path == "src/repro/worker.py"

    def test_transitively_reachable_write_fires(self):
        findings = findings_of(
            GlobalMutationRule(),
            worker="""
                _CACHE = {}


                def remember(key, value):
                    _CACHE[key] = value


                def task(x):
                    remember(x, x * 2)
                    return x
            """,
            runner="""
                from repro.worker import task


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        )
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message

    def test_local_mutation_is_fine(self):
        assert findings_of(
            GlobalMutationRule(),
            worker="""
                def task(x):
                    cache = {}
                    cache[x] = x * 2
                    return cache[x]
            """,
            runner="""
                from repro.worker import task


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        ) == []

    def test_global_write_not_reachable_from_dispatch_is_fine(self):
        # mutating module state is the per-file rules' business unless a
        # dispatch site can actually reach it
        assert findings_of(
            GlobalMutationRule(),
            worker="""
                _COUNT = 0


                def bump():
                    global _COUNT
                    _COUNT = _COUNT + 1


                def task(x):
                    return x + 1
            """,
            runner="""
                from repro.worker import task


                def run(executor, items):
                    return executor.map_tasks(task, items)
            """,
        ) == []
