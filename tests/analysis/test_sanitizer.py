"""Tests for the runtime FP sanitizer and its pytest integration."""

import numpy as np
import pytest

from repro.analysis.sanitizer import fp_sanitizer


class TestFpSanitizer:
    def test_nan_birth_raises(self):
        with fp_sanitizer():
            with pytest.raises(FloatingPointError):
                np.log10(np.array([0.0]))

    def test_invalid_operation_raises(self):
        with fp_sanitizer():
            with pytest.raises(FloatingPointError):
                np.array([0.0]) / np.array([0.0])

    def test_finite_arithmetic_unaffected(self):
        with fp_sanitizer():
            out = np.log10(np.array([1.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_errstate_restored_after_exit(self):
        before = np.geterr()
        with fp_sanitizer():
            pass
        assert np.geterr() == before


class TestAutouseFixture:
    def test_suite_runs_under_sanitizer(self):
        # the autouse fixture in tests/conftest.py is active here
        with pytest.raises(FloatingPointError):
            np.log10(np.array([0.0]))

    @pytest.mark.allow_nonfinite
    def test_marker_opts_out(self):
        # without the sanitizer this warns (numpy default) instead of raising
        with pytest.warns(RuntimeWarning):
            out = np.log10(np.array([0.0]))
        assert np.isneginf(out[0])

    def test_documented_sentinel_survives_sanitizer(self):
        from repro.dsp.units import watts_to_dbm

        out = watts_to_dbm(np.array([0.0, 1e-3]))
        assert np.isneginf(out[0])
        assert out[1] == pytest.approx(0.0)
