"""Tests for repro.instruments.rf_source."""

import numpy as np
import pytest

from repro.dsp.sources import dbm_to_vpeak
from repro.dsp.spectral import tone_amplitude
from repro.instruments.rf_source import RFSignalGenerator


class TestRFSignalGenerator:
    def test_ideal_amplitude_phase(self):
        src = RFSignalGenerator(900e6, power_dbm=10.0)
        amp, phase = src.realized_amplitude_phase()
        assert amp == pytest.approx(dbm_to_vpeak(10.0))
        assert phase == 0.0

    def test_level_error_spreads_amplitude(self):
        src = RFSignalGenerator(900e6, power_dbm=10.0, level_error_db_rms=0.1)
        rng = np.random.default_rng(0)
        amps = [src.realized_amplitude_phase(rng)[0] for _ in range(200)]
        assert np.std(amps) > 0.0
        # 0.1 dB rms level error is ~1.2% amplitude spread
        assert np.std(amps) / np.mean(amps) == pytest.approx(0.0115, rel=0.3)

    def test_generate_produces_carrier(self):
        src = RFSignalGenerator(1e6, power_dbm=0.0)
        wf = src.generate(duration=100e-6, sample_rate=16e6)
        assert tone_amplitude(wf, 1e6) == pytest.approx(dbm_to_vpeak(0.0), rel=0.01)

    def test_generate_rejects_undersampling(self):
        src = RFSignalGenerator(1e9)
        with pytest.raises(ValueError, match="represent"):
            src.generate(1e-6, 1e9)

    def test_phase_noise_perturbs_record(self):
        src = RFSignalGenerator(1e6, phase_noise_rad_rms=0.05)
        clean = src.generate(100e-6, 16e6)
        noisy = src.generate(100e-6, 16e6, rng=np.random.default_rng(0))
        assert not np.allclose(clean.samples, noisy.samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            RFSignalGenerator(-1.0)
        with pytest.raises(ValueError):
            RFSignalGenerator(1e6, level_error_db_rms=-0.1)
