"""Tests for the conventional-ATE instrument models.

These are the framework's baseline: each instrument must recover the
behavioral DUT's known specs through a genuine signal-path measurement.
"""

import numpy as np
import pytest

from repro.circuits.behavioral import BehavioralAmplifier
from repro.instruments.ate import ConventionalRFATE
from repro.instruments.ate import TestTimeBreakdown as TimeBreakdown
from repro.instruments.network_analyzer import GainAnalyzer
from repro.instruments.noise_meter import NoiseFigureMeter
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


@pytest.fixture
def dut():
    return BehavioralAmplifier(
        center_frequency=900e6, gain_db=16.0, nf_db=2.5, iip3_dbm=3.0
    )


class TestGainAnalyzer:
    def test_recovers_gain(self, dut):
        meter = GainAnalyzer(test_power_dbm=-40.0, repeatability_db=0.0)
        assert meter.measure_gain_db(dut) == pytest.approx(16.0, abs=0.05)

    def test_repeatability_noise(self, dut):
        meter = GainAnalyzer(repeatability_db=0.1)
        rng = np.random.default_rng(0)
        readings = [meter.measure_gain_db(dut, rng=rng) for _ in range(50)]
        assert np.std(readings) == pytest.approx(0.1, rel=0.35)

    def test_high_power_shows_compression(self, dut):
        small = GainAnalyzer(test_power_dbm=-40.0, repeatability_db=0.0)
        large = GainAnalyzer(test_power_dbm=-7.0, repeatability_db=0.0)
        assert large.measure_gain_db(dut) < small.measure_gain_db(dut) - 0.5

    def test_total_time(self):
        meter = GainAnalyzer(setup_time=0.08, measure_time=0.1)
        assert meter.total_time() == pytest.approx(0.18)


class TestNoiseFigureMeter:
    def test_recovers_nf(self, dut):
        meter = NoiseFigureMeter(n_averages=16)
        rng = np.random.default_rng(1)
        nf = meter.measure_nf_db(dut, rng)
        assert nf == pytest.approx(2.5, abs=0.4)

    def test_distinguishes_quiet_and_noisy_duts(self):
        rng = np.random.default_rng(2)
        meter = NoiseFigureMeter(n_averages=16)
        quiet = BehavioralAmplifier(900e6, 16.0, 1.0, 3.0)
        noisy = BehavioralAmplifier(900e6, 16.0, 8.0, 3.0)
        assert meter.measure_nf_db(noisy, rng) > meter.measure_nf_db(quiet, rng) + 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseFigureMeter(bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            NoiseFigureMeter(n_averages=0)


class TestSpectrumAnalyzer:
    def test_recovers_iip3(self, dut):
        sa = SpectrumAnalyzer(tone_power_dbm=-20.0, repeatability_db=0.0)
        result = sa.measure_iip3(dut)
        assert result.iip3_dbm == pytest.approx(3.0, abs=0.3)

    def test_oip3_is_iip3_plus_gain(self, dut):
        sa = SpectrumAnalyzer(repeatability_db=0.0)
        result = sa.measure_iip3(dut)
        assert result.oip3_dbm - result.iip3_dbm == pytest.approx(16.0, abs=0.3)

    def test_im3_well_below_fundamental(self, dut):
        sa = SpectrumAnalyzer(tone_power_dbm=-25.0, repeatability_db=0.0)
        result = sa.measure_iip3(dut)
        assert result.fundamental_out_dbm - result.im3_out_dbm > 30.0

    def test_p1db_matches_analytic(self, dut):
        sa = SpectrumAnalyzer(repeatability_db=0.0)
        p1db = sa.measure_p1db_dbm(dut, power_start_dbm=-35.0, power_stop_dbm=0.0)
        assert p1db == pytest.approx(3.0 - 9.6357, abs=0.5)

    def test_p1db_sweep_range_too_low(self, dut):
        sa = SpectrumAnalyzer(repeatability_db=0.0)
        with pytest.raises(ValueError, match="never compressed"):
            sa.measure_p1db_dbm(dut, power_start_dbm=-50.0, power_stop_dbm=-30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectrumAnalyzer(tone_offset_hz=0.0)


class TestConventionalRFATE:
    def test_full_insertion(self, dut):
        ate = ConventionalRFATE()
        rng = np.random.default_rng(3)
        result = ate.test_device(dut, rng)
        assert result.specs.gain_db == pytest.approx(16.0, abs=0.2)
        assert result.specs.nf_db == pytest.approx(2.5, abs=0.6)
        assert result.specs.iip3_dbm == pytest.approx(3.0, abs=0.5)
        assert result.p1db_dbm is None

    def test_time_breakdown(self, dut):
        ate = ConventionalRFATE()
        rng = np.random.default_rng(4)
        result = ate.test_device(dut, rng)
        assert set(result.time.as_dict()) == {"gain", "noise_figure", "iip3"}
        assert result.time.total == pytest.approx(ate.insertion_time())
        assert result.time.total > 0.5  # hundreds of ms, the paper's pain point

    def test_p1db_included_when_requested(self, dut):
        ate = ConventionalRFATE(include_p1db=True)
        rng = np.random.default_rng(5)
        result = ate.test_device(dut, rng)
        assert result.p1db_dbm == pytest.approx(3.0 - 9.6357, abs=0.6)
        assert "p1db" in result.time.as_dict()


class TestTimeBreakdownUnit:
    def test_totals(self):
        tb = TimeBreakdown()
        tb.add("a", 0.1, 0.2)
        tb.add("b", 0.3, 0.4)
        assert tb.setup_total == pytest.approx(0.4)
        assert tb.measure_total == pytest.approx(0.6)
        assert tb.total == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("a", -0.1, 0.0)
