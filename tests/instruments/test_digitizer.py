"""Tests for repro.instruments.digitizer."""

import numpy as np
import pytest

from repro.dsp.sources import tone
from repro.dsp.waveform import Waveform
from repro.instruments.digitizer import BasebandDigitizer


class TestDigitizer:
    def test_resamples_to_capture_rate(self):
        dig = BasebandDigitizer(sample_rate=1e6, bits=None, noise_vrms=0.0)
        wf = tone(10e3, 1e-3, 8e6)
        out = dig.capture(wf)
        assert out.sample_rate == 1e6
        assert len(out) == 1000

    def test_duration_truncation(self):
        dig = BasebandDigitizer(1e6, bits=None, noise_vrms=0.0)
        wf = tone(10e3, 2e-3, 8e6)
        out = dig.capture(wf, duration=0.5e-3)
        assert len(out) == 500

    def test_noise_only_with_rng(self):
        dig = BasebandDigitizer(1e6, bits=None, noise_vrms=1e-3)
        wf = Waveform(np.zeros(8000), 8e6)
        clean = dig.capture(wf)
        noisy = dig.capture(wf, rng=np.random.default_rng(0))
        assert clean.rms() == 0.0
        assert noisy.rms() == pytest.approx(1e-3, rel=0.1)

    def test_quantization(self):
        dig = BasebandDigitizer(1e6, bits=8, full_scale=1.0, noise_vrms=0.0)
        wf = tone(10e3, 1e-3, 8e6, amplitude=0.9)
        out = dig.capture(wf)
        lsb = 2.0 / 256
        assert np.allclose(out.samples / lsb, np.round(out.samples / lsb), atol=1e-9)

    def test_ideal_converter(self):
        dig = BasebandDigitizer(1e6, bits=None, noise_vrms=0.0)
        wf = Waveform(np.full(8000, 0.123456789), 8e6)
        out = dig.capture(wf)
        assert np.allclose(out.samples, 0.123456789)

    def test_jitter_applied(self):
        dig = BasebandDigitizer(1e6, bits=None, noise_vrms=0.0, jitter_rms=1e-7)
        wf = tone(100e3, 1e-3, 8e6)
        out = dig.capture(wf, rng=np.random.default_rng(0))
        ref = dig.capture(wf)
        assert not np.allclose(out.samples, ref.samples)

    def test_too_short_duration_rejected(self):
        dig = BasebandDigitizer(1e6, bits=None)
        wf = tone(10e3, 1e-3, 8e6)
        with pytest.raises(ValueError, match="shorter"):
            dig.capture(wf, duration=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            BasebandDigitizer(0.0)
        with pytest.raises(ValueError):
            BasebandDigitizer(1e6, bits=0)
        with pytest.raises(ValueError):
            BasebandDigitizer(1e6, noise_vrms=-1.0)
