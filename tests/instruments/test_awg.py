"""Tests for repro.instruments.awg."""

import numpy as np
import pytest

from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.instruments.awg import ArbitraryWaveformGenerator


class TestAWG:
    def test_play_renders_at_awg_rate(self):
        awg = ArbitraryWaveformGenerator(sample_rate=100e6)
        stim = PiecewiseLinearStimulus([0.0, 0.5, -0.5], duration=1e-6)
        wf = awg.play(stim)
        assert wf.sample_rate == 100e6
        assert len(wf) == 100

    def test_quantization_grid(self):
        awg = ArbitraryWaveformGenerator(100e6, bits=8, full_scale=1.0)
        stim = PiecewiseLinearStimulus([-0.9, 0.9], duration=1e-6)
        wf = awg.play(stim)
        lsb = awg.lsb
        assert np.allclose(wf.samples / lsb, np.round(wf.samples / lsb), atol=1e-9)

    def test_lsb(self):
        awg = ArbitraryWaveformGenerator(1e6, bits=12, full_scale=1.0)
        assert awg.lsb == pytest.approx(2.0 / 4096)

    def test_clipping_at_full_scale(self):
        awg = ArbitraryWaveformGenerator(1e6, bits=12, full_scale=0.5)
        stim = PiecewiseLinearStimulus([2.0, -2.0], duration=1e-5, v_limit=5.0)
        wf = awg.play(stim)
        assert wf.samples.max() <= 0.5
        assert wf.samples.min() >= -0.5

    def test_output_noise_requires_rng(self):
        awg = ArbitraryWaveformGenerator(1e6, output_noise_vrms=1e-3)
        stim = PiecewiseLinearStimulus([0.1, 0.1], duration=1e-4)
        clean = awg.play(stim)
        noisy = awg.play(stim, rng=np.random.default_rng(0))
        assert np.array_equal(clean.samples, awg.play(stim).samples)
        assert not np.array_equal(clean.samples, noisy.samples)

    def test_play_samples(self):
        awg = ArbitraryWaveformGenerator(1e6, bits=14)
        wf = awg.play_samples(np.array([0.1, -0.1, 0.2]))
        assert len(wf) == 3
        assert wf.sample_rate == 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            ArbitraryWaveformGenerator(0.0)
        with pytest.raises(ValueError):
            ArbitraryWaveformGenerator(1e6, bits=0)
        with pytest.raises(ValueError):
            ArbitraryWaveformGenerator(1e6, full_scale=-1.0)
        with pytest.raises(ValueError):
            ArbitraryWaveformGenerator(1e6, output_noise_vrms=-1e-3)
