# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test lint bench examples all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do \
		echo "=== $$f"; \
		$(PYTHON) $$f || exit 1; \
	done

all: lint test bench

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
