# Convenience targets for the repro library.

PYTHON ?= python

# linted exactly like CI (.github/workflows/ci.yml runs `make lint`)
LINT_PATHS ?= src/ tests/ benchmarks/
# text for local runs; CI passes LINT_FORMAT=github for inline annotations
LINT_FORMAT ?= text
# incremental result cache; warm re-runs only re-analyze edited files
LINT_CACHE ?= .lint-cache
BENCH_JSON ?= bench.json
# sampled configurations per verification relation
VERIFY_CONFIGS ?= 50
VERIFY_REPORT ?= benchmarks/results/verify_campaign.json
# streaming soak: wall-clock budget, backend, site count, metrics artifact
SOAK_SECONDS ?= 60
SOAK_EXECUTOR ?= thread:2
SOAK_SITES ?= 1
SOAK_REPORT ?= benchmarks/results/streaming_soak.json

.PHONY: install test lint lint-stats lint-numerics lint-concurrency lint-sarif verify soak bench bench-json bench-check bench-profile examples all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) \
		--format $(LINT_FORMAT) --cache-dir $(LINT_CACHE)

# findings-per-rule markdown table (CI appends it to the job summary);
# reporting stats never fails the build -- `lint` is the gate
lint-stats:
	@PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) \
		--cache-dir $(LINT_CACHE) --stats | sed -n '/^| rule/,$$p'

# the four interval rules alone, plus the float32 certification report;
# own cache dir -- --select changes the rule-set part of the cache key
lint-numerics:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) \
		--select num-log-nonpositive,num-div-zero,num-cancellation,num-float32-unsafe \
		--cache-dir $(LINT_CACHE)-numerics
	@PYTHONPATH=src $(PYTHON) -m repro.analysis src \
		--cache-dir $(LINT_CACHE)-numerics --numerics-report

# the four lockset/lock-order rules alone; own cache dir -- --select
# changes the rule-set part of the cache key
lint-concurrency:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) \
		--select conc-unlocked-shared-write,conc-lock-escape,conc-lock-order-cycle,conc-blocking-under-lock \
		--cache-dir $(LINT_CACHE)-concurrency

# SARIF 2.1.0 log for GitHub's code-scanning tab (CI uploads it);
# always exits 0 -- `lint` is the gate, this is the report artifact
lint-sarif:
	@PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS) \
		--format sarif --cache-dir $(LINT_CACHE) > signature-lint.sarif || true
	@echo "wrote signature-lint.sarif"

# metamorphic relation campaign (fixed master seed) + golden drift check;
# exits non-zero on any violated relation or corpus drift
verify:
	PYTHONPATH=src $(PYTHON) -m repro verify \
		--configs $(VERIFY_CONFIGS) --report $(VERIFY_REPORT)

# fixed-seed streaming soak (CI's `soak` job): exits non-zero on an
# unhealthy stream, a streamed-vs-offline bit mismatch, or -- under the
# runtime lock-order sanitizer -- an inverted lock-acquisition order
soak:
	PYTHONPATH=src $(PYTHON) -m repro soak \
		--seconds $(SOAK_SECONDS) --executor $(SOAK_EXECUTOR) \
		--sites $(SOAK_SITES) \
		--sanitize-locks --output $(SOAK_REPORT)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --benchmark-disable-gc \
		--benchmark-json=$(BENCH_JSON)

# re-run the gated benchmarks and fail if a normalized capture-time
# ratio (compiled/per-device, batched/per-device, streamed/offline)
# regressed >20% vs the committed baseline
bench-check:
	$(PYTHON) benchmarks/check_capture_regression.py

# re-run the capture hot-path benchmark and print the per-stage wall
# times of the compiled whole-lot program as a markdown table
bench-profile:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_bench_capture_hotpath.py --benchmark-only -q
	@$(PYTHON) benchmarks/profile_stages.py

examples:
	@for f in examples/*.py; do \
		echo "=== $$f"; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; \
	done

all: lint test bench

clean:
	rm -rf .pytest_cache .hypothesis .lint-cache .lint-cache-numerics \
		.lint-cache-concurrency build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
