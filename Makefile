# Convenience targets for the repro library.

PYTHON ?= python

# linted exactly like CI (.github/workflows/ci.yml runs `make lint`)
LINT_PATHS ?= src/ tests/ benchmarks/
BENCH_JSON ?= bench.json

.PHONY: install test lint bench bench-json bench-check examples all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis $(LINT_PATHS)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --benchmark-disable-gc \
		--benchmark-json=$(BENCH_JSON)

# re-run the capture hot-path benchmark and fail if the normalized
# batched/per-device ratio regressed >20% vs the committed baseline
bench-check:
	$(PYTHON) benchmarks/check_capture_regression.py

examples:
	@for f in examples/*.py; do \
		echo "=== $$f"; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; \
	done

all: lint test bench

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
