"""Defect screening: catastrophic faults and guard-banded binning.

A production lot contains three populations:

* good devices, spread by process variation;
* *parametric* marginals near the spec limits;
* *catastrophically* defective parts (opens, shorts, dead stages).

The signature flow handles them in two layers: an outlier screen on the
raw signature rejects devices whose signature is not even shaped like a
good device's (the regression would extrapolate garbage for them), and
guard-banded limits on the predicted specs control how many marginal
parts escape.

Run:  python examples/defect_screening.py
"""

import numpy as np

from repro import (
    LNA900,
    SignatureTestBoard,
    lna_parameter_space,
    run_simulation_experiment,
    simulation_config,
)
from repro.circuits.faults import FAULT_LIBRARY
from repro.runtime.binning import confusion, sweep_guard_band
from repro.runtime.outlier import SignatureOutlierScreen
from repro.runtime.specs import lna_limits


def main():
    rng = np.random.default_rng(909)
    experiment = run_simulation_experiment()  # stimulus + calibration
    board = SignatureTestBoard(simulation_config())
    space = lna_parameter_space()
    stimulus = experiment.stimulus

    # ------------------------------------------------------------------
    # layer 1: outlier screen against catastrophic defects
    # ------------------------------------------------------------------
    print("[1/2] Catastrophic-defect screening")
    screen = SignatureOutlierScreen().fit(experiment.train_signatures)
    print(f"  screen: {screen.n_components} PCA components, "
          f"threshold {screen.threshold:.1f}x the good-population score")

    # fresh good devices must pass the screen
    good = [LNA900(space.to_dict(p)) for p in space.sample(rng, 40)]
    good_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in good])
    false_alarms = int(screen.flag_batch(good_sigs).sum())
    print(f"  false alarms on 40 fresh good devices: {false_alarms}")

    # every fault model applied to a handful of hosts
    print(f"  {'fault':>16s}  {'detected':>9s}  {'median score':>13s}")
    for name, ctor in FAULT_LIBRARY.items():
        scores = []
        for p in space.sample(rng, 10):
            faulty = ctor(LNA900(space.to_dict(p)))
            sig = board.signature(faulty, stimulus, rng=rng)
            scores.append(screen.score(sig).score)
        detected = sum(s > screen.threshold for s in scores)
        print(f"  {name:>16s}  {detected:>6d}/10  {np.median(scores):13.1f}")

    # the subtle bias_shift fault looks like an extreme process corner to
    # the outlier screen -- but its predicted specs are far outside the
    # limits, so the parametric binning layer still rejects it
    limits_for_faults = lna_limits(gain_min_db=14.5, nf_max_db=3.2, iip3_min_dbm=0.0)
    caught = 0
    for p in space.sample(rng, 10):
        faulty = FAULT_LIBRARY["bias_shift"](LNA900(space.to_dict(p)))
        sig = board.signature(faulty, stimulus, rng=rng)
        if not limits_for_faults.check(experiment.calibration.predict(sig)):
            caught += 1
    print(f"  bias_shift devices rejected by parametric binning: {caught}/10")

    # ------------------------------------------------------------------
    # layer 2: guard-banded parametric binning
    # ------------------------------------------------------------------
    print("\n[2/2] Guard-banded parametric binning")
    # gain and IIP3 limits cut through the population (they are the
    # well-predicted specs); the NF limit sits loose -- the signature
    # barely observes NF, so a mid-population NF limit would have to be
    # tested conventionally (see EXPERIMENTS.md)
    limits = lna_limits(gain_min_db=14.5, nf_max_db=3.2, iip3_min_dbm=0.0)
    n_lot = 400
    lot = [LNA900(space.to_dict(p)) for p in space.sample(rng, n_lot)]
    true = np.vstack([d.specs().as_vector() for d in lot])
    sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in lot])
    predicted = experiment.calibration.predict_matrix(sigs)

    sigmas = {name: experiment.std_errors[name] for name in experiment.std_errors}
    baseline = confusion(true, predicted, limits)
    print(f"  no guard band: {baseline.summary()}")
    print(f"\n  {'k':>4s}  {'escapes':>8s}  {'yield loss':>10s}  {'accuracy':>9s}")
    for k, report in sweep_guard_band(
        true, predicted, limits, sigmas, k_values=(0.0, 0.5, 1.0, 2.0, 3.0)
    ):
        print(
            f"  {k:4.1f}  {report.escapes:8d}  {report.yield_loss:10d}  "
            f"{report.accuracy:9.1%}"
        )
    print(
        "\n  Tightening the limits by k-sigma of the calibration's own "
        "validation error buys escape protection with a known yield cost."
    )
    print(
        "  Note the k = 3 collapse: three sigmas of the (poorly predicted) "
        "NF spec pushes its limit below the whole population -- an "
        "unpredictable spec cannot be guard-banded, only tested directly."
    )


if __name__ == "__main__":
    main()
