"""Wafer-level signature test: the introduction's "test earlier" strategy.

"In the test earlier strategy, package scrap is reduced by performing as
many tests at the wafer level as possible."  At wafer probe, the
signature path sees extra fixture loss on both DUT ports (probe-card
needles instead of a socket) and a worse contact-repeatability spread.
This script checks whether a wafer-probe signature flow can bin parts
before packaging:

* the calibration is performed *at wafer* (probe losses included), so
  the regression learns the probe-path response directly;
* prediction errors are compared against the packaged (final-test)
  flow;
* the payoff is computed: every bad die caught at probe saves a package.

Run:  python examples/wafer_level_test.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    LNA900,
    CalibrationSession,
    SignatureTestBoard,
    lna_parameter_space,
    run_simulation_experiment,
    simulation_config,
)
from repro.regression.metrics import rmse
from repro.runtime.binning import confusion
from repro.runtime.specs import lna_limits

PACKAGE_COST = 0.12  # currency units per package
PROBE_LOSS_DB = 1.5  # per port, probe card vs socket


def calibrated_flow(board, stimulus, space, rng, n_train=80):
    train = [LNA900(space.to_dict(p)) for p in space.sample(rng, n_train)]
    specs = np.vstack([d.specs().as_vector() for d in train])
    sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in train])
    return CalibrationSession().fit(sigs, specs, rng=rng)


def main():
    rng = np.random.default_rng(60657)
    experiment = run_simulation_experiment()
    stimulus = experiment.stimulus
    space = lna_parameter_space()

    final_cfg = simulation_config()
    wafer_cfg = replace(
        simulation_config(),
        input_loss_db=PROBE_LOSS_DB,
        output_loss_db=PROBE_LOSS_DB,
        digitizer_noise_vrms=1.5e-3,  # noisier probe environment
    )
    final_board = SignatureTestBoard(final_cfg)
    wafer_board = SignatureTestBoard(wafer_cfg)

    print("[1/2] Calibrating both insertions (80 devices each)...")
    final_cal = calibrated_flow(final_board, stimulus, space, rng)
    wafer_cal = calibrated_flow(wafer_board, stimulus, space, rng)

    print("\n[2/2] Validating on a 300-die lot...")
    lot = [LNA900(space.to_dict(p)) for p in space.sample(rng, 300)]
    truth = np.vstack([d.specs().as_vector() for d in lot])

    results = {}
    for label, board, cal in (
        ("final test (socket)", final_board, final_cal),
        ("wafer probe", wafer_board, wafer_cal),
    ):
        sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in lot])
        pred = cal.predict_matrix(sigs)
        results[label] = pred
        errs = [rmse(truth[:, j], pred[:, j]) for j in range(3)]
        print(f"  {label:>20s}: gain {errs[0]:.3f} dB, NF {errs[1]:.3f} dB, "
              f"IIP3 {errs[2]:.3f} dBm")

    limits = lna_limits(gain_min_db=14.5, nf_max_db=3.2, iip3_min_dbm=0.0)
    wafer_report = confusion(truth, results["wafer probe"], limits)
    print(f"\n  wafer-probe binning: {wafer_report.summary()}")

    bad_caught = wafer_report.true_fail - wafer_report.escapes
    saved = bad_caught * PACKAGE_COST
    wasted = wafer_report.yield_loss * PACKAGE_COST
    print(f"  packages saved by probing bad dies early: {bad_caught} "
          f"({saved:.2f} units); good dies wrongly scrapped: "
          f"{wafer_report.yield_loss} ({wasted:.2f} units)")
    print(
        "\nThe probe path costs some accuracy (extra loss and noise), but "
        "calibrating *at wafer* absorbs the fixture; the binning quality "
        "stays good enough to stop most bad dies before packaging."
    )


if __name__ == "__main__":
    main()
