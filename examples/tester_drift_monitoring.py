"""Keeping a signature tester honest: drift monitoring + re-normalization.

A deployed signature calibration silently degrades as the tester drifts
(source level, filter aging, cable loss).  The production countermeasures:

1. re-measure a golden device on a schedule and track its signature with
   an EWMA control chart (:class:`GoldenSignatureMonitor`);
2. when the chart alarms, re-measure the golden reference and let
   golden-device normalization (:class:`GoldenDeviceNormalizer`) absorb
   the new path gain -- no recalibration lot needed.

This script simulates 30 "days" of production during which the
downconversion path gain sags by 0.03 dB/day, and shows the prediction
error with and without the countermeasures.

Run:  python examples/tester_drift_monitoring.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    LNA900,
    CalibrationSession,
    GoldenDeviceNormalizer,
    GoldenSignatureMonitor,
    SignatureTestBoard,
    lna_parameter_space,
    run_simulation_experiment,
    simulation_config,
)
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.regression.metrics import rmse
from repro.testgen.objective import signature_noise_std


def board_with_drift(day, sag_db_per_day=0.03):
    """The tester on a given day: mixer-2 conversion gain sagging."""
    gain = 0.5 * 10 ** (-(sag_db_per_day * day) / 20.0)
    cfg = replace(
        simulation_config(), mixer2=Mixer(gain, MixerHarmonics.paper_model())
    )
    return SignatureTestBoard(cfg)


def main():
    rng = np.random.default_rng(1234)
    experiment = run_simulation_experiment()
    stimulus = experiment.stimulus
    space = lna_parameter_space()
    golden = LNA900()
    n_capture = 100  # 5 us at 20 MHz

    # day-0 calibration, on normalized signatures
    day0 = board_with_drift(0)
    normalizer = GoldenDeviceNormalizer.from_board(day0, golden, stimulus, rng=rng)
    train = [LNA900(space.to_dict(p)) for p in space.sample(rng, 80)]
    train_specs = np.vstack([d.specs().as_vector() for d in train])
    train_sigs = np.vstack([day0.signature(d, stimulus, rng=rng) for d in train])
    cal_raw = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    cal_norm = CalibrationSession().fit(
        normalizer.normalize_batch(train_sigs), train_specs, rng=rng
    )

    monitor = GoldenSignatureMonitor(
        reference=normalizer.golden,
        noise_sigma=signature_noise_std(1e-3, n_capture),
        control_limit=3.0,
    )

    print(f"{'day':>4s}  {'chart':>7s}  {'gain RMS raw':>13s}  {'gain RMS norm':>14s}")
    renormalizations = []
    for day in (0, 5, 10, 15, 20, 25, 30):
        tester = board_with_drift(day)

        # scheduled golden check; every alarm re-takes the golden
        # reference (and restarts the chart against it)
        golden_today = tester.signature(golden, stimulus, rng=rng)
        state = monitor.check(golden_today)
        if not state.in_control:
            renormalizations.append(day)
            normalizer = GoldenDeviceNormalizer.from_board(
                tester, golden, stimulus, rng=rng
            )
            monitor = GoldenSignatureMonitor(
                reference=normalizer.golden,
                noise_sigma=signature_noise_std(1e-3, n_capture),
                control_limit=3.0,
            )

        # a small validation lot measured on today's tester
        lot = [LNA900(space.to_dict(p)) for p in space.sample(rng, 20)]
        truth = np.vstack([d.specs().as_vector() for d in lot])
        sigs = np.vstack([tester.signature(d, stimulus, rng=rng) for d in lot])
        err_raw = rmse(truth[:, 0], cal_raw.predict_matrix(sigs)[:, 0])
        err_norm = rmse(
            truth[:, 0],
            cal_norm.predict_matrix(normalizer.normalize_batch(sigs))[:, 0],
        )
        status = "OK" if state.in_control else "ALARM"
        print(f"{day:4d}  {status:>7s}  {err_raw:13.3f}  {err_norm:14.3f}")

    print()
    if renormalizations:
        print(f"golden reference re-taken on days {renormalizations}: each "
              "alarm re-anchors the normalization, so the normalized "
              "calibration tracks the drifting tester while raw-signature "
              "predictions absorb the full drift as gain error.")


if __name__ == "__main__":
    main()
