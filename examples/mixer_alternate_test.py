"""Signature testing a Gilbert-cell downconversion mixer.

The fourth device class on the paper's target list, at circuit level:
the Gilbert cell's conversion gain, SSB noise figure and IIP3 all derive
from its tail bias, loads and degeneration, so process variation couples
them exactly like the LNA's.  The same GA + calibration machinery
predicts the mixer's specs from one capture.

Because the DUT itself frequency-translates (RF at 900 MHz in, IF at
100 MHz out), the envelope engine's "carrier" tracks the conversion
polynomial the same way -- only the board's second LO conceptually moves
to the IF.  Nothing else changes.

Run:  python examples/mixer_alternate_test.py
"""

import numpy as np

from repro import (
    CalibrationSession,
    GAConfig,
    SignaturePathConfig,
    SignatureStimulusOptimizer,
    SignatureTestBoard,
    StimulusEncoding,
)
from repro.circuits.gilbert import GilbertCellMixer, gilbert_parameter_space
from repro.regression.metrics import r2_score, rmse


def mixer_factory(params):
    return GilbertCellMixer(params)


def main():
    rng = np.random.default_rng(808)
    space = gilbert_parameter_space()

    nominal = GilbertCellMixer()
    print(f"nominal DUT: {nominal}")

    config = SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=10e6,
        digitizer_rate=20e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=5e-6,
        dut_coupling="tuned",
    )
    board = SignatureTestBoard(config)

    print("\n[1/3] Optimizing the stimulus for the mixer family...")
    optimizer = SignatureStimulusOptimizer(
        board_config=config,
        device_factory=mixer_factory,
        space=space,
        encoding=StimulusEncoding(n_breakpoints=16, duration=5e-6, v_limit=0.4),
        ga_config=GAConfig(population_size=14, generations=4),
        rel_step=0.03,
    )
    optimization = optimizer.optimize(rng)
    print(optimization.summary())
    stimulus = optimization.stimulus

    print("\n[2/3] Calibrating on 80 mixers, validating on 25...")
    train = [mixer_factory(space.to_dict(p)) for p in space.sample(rng, 80)]
    val = [mixer_factory(space.to_dict(p)) for p in space.sample(rng, 25)]
    train_specs = np.vstack([d.specs().as_vector() for d in train])
    val_specs = np.vstack([d.specs().as_vector() for d in val])
    train_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in train])
    val_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in val])
    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    print(calibration.summary())

    print("\n[3/3] Validation (predicted vs direct):")
    predicted = calibration.predict_matrix(val_sigs)
    for j, name in enumerate(("conv. gain (dB)", "SSB NF (dB)", "IIP3 (dBm)")):
        err = rmse(val_specs[:, j], predicted[:, j])
        r2 = r2_score(val_specs[:, j], predicted[:, j])
        spread = float(np.std(val_specs[:, j]))
        print(f"  {name:>16s}: RMS err {err:.3f} (spread {spread:.3f}, R^2 {r2:.3f})")
    print(
        "\nThe mixer shows the LNA's pattern: conversion gain and IIP3 "
        "track tightly, while the NF -- dominated by the signature-silent "
        "base resistance -- is only partially predictable."
    )


if __name__ == "__main__":
    main()
