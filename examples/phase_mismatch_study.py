"""Why the load board needs offset LOs and FFT-magnitude signatures.

Reproduces the Section 2.1 analysis: with both mixers on the same
carrier (Figure 2), a path-length mismatch of a quarter wavelength --
0.75 cm at 10 GHz! -- cancels the signature completely (Equation 4).
Offsetting the second LO and taking FFT magnitudes (Figure 3 /
Equation 5) makes the signature immune.

Run:  python examples/phase_mismatch_study.py
"""

import numpy as np

from repro import run_phase_study


def main():
    print("Sweeping the signal-path phase mismatch through a full turn...")
    study = run_phase_study(n_phases=17)

    print()
    print(f"{'phase':>8s}  {'same-LO rms':>12s}  {'Eq.4 cos-law':>12s}  "
          f"{'same-LO drift':>14s}  {'FFT-mag drift':>14s}")
    for i, phi in enumerate(study.phases):
        bar = "#" * int(30 * study.same_lo_rms[i] / study.same_lo_rms.max())
        print(
            f"{phi:8.3f}  {study.same_lo_rms[i]:12.6f}  "
            f"{study.eq4_prediction[i]:12.6f}  "
            f"{study.same_lo_distance[i]:13.1%}  "
            f"{study.offset_fftmag_distance[i]:13.1%}   {bar}"
        )

    print()
    print(study.summary())
    print()
    k_null = int(np.argmin(study.same_lo_rms))
    print(
        f"At phi = {study.phases[k_null]:.3f} rad the same-LO signature is "
        f"{study.same_lo_rms[k_null]:.2e} V rms -- a calibration model would "
        "see pure noise.  The offset-LO FFT-magnitude signature never drifts "
        f"more than {study.worst_case()['offset_lo_fft_magnitude']:.2%}."
    )


if __name__ == "__main__":
    main()
