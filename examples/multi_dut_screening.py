"""Signature testing beyond the LNA: a power-amplifier family.

The paper targets "RF front-ends and front-end chips, such as LNAs,
power amplifiers, attenuators and mixers" (Section 1).  This script
applies the identical machinery to a PA family -- a different device
class with different spec spreads -- proving nothing in the framework is
LNA-specific:

* the behavioral process space is (gain, P1dB, NF);
* the stimulus is re-optimized for the PA's drive levels;
* gain and IIP3 (equivalently P1dB) are predicted from one capture.

Run:  python examples/multi_dut_screening.py
"""

import numpy as np

from repro import (
    CalibrationSession,
    GAConfig,
    PowerAmplifier,
    SignaturePathConfig,
    SignatureStimulusOptimizer,
    SignatureTestBoard,
    StimulusEncoding,
)
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.regression.metrics import rmse


def pa_space():
    return ParameterSpace(
        [
            ProcessParameter("gain_db", nominal=25.0, rel_variation=0.06),
            ProcessParameter("p1db_out_dbm", nominal=27.0, rel_variation=0.05),
            ProcessParameter("nf_db", nominal=6.0, rel_variation=0.10),
        ]
    )


def pa_factory(params):
    return PowerAmplifier(
        center_frequency=900e6,
        gain_db=params["gain_db"],
        p1db_out_dbm=params["p1db_out_dbm"],
        nf_db=params["nf_db"],
    )


def main():
    rng = np.random.default_rng(404)
    space = pa_space()

    # a PA is a large-signal device: its IIP3 sits near +13 dBm, so the
    # stimulus must drive it much harder than the LNA before the
    # third-order term becomes observable
    config = SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=10e6,
        digitizer_rate=20e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=5e-6,
        dut_coupling="tuned",
    )
    board = SignatureTestBoard(config)

    print("[1/3] Optimizing a stimulus for the PA family...")
    optimizer = SignatureStimulusOptimizer(
        board_config=config,
        device_factory=pa_factory,
        space=space,
        encoding=StimulusEncoding(n_breakpoints=16, duration=5e-6, v_limit=0.9),
        ga_config=GAConfig(population_size=12, generations=4),
        rel_step=0.03,
    )
    optimization = optimizer.optimize(rng)
    print(optimization.summary())
    stimulus = optimization.stimulus

    print("\n[2/3] Calibrating on 60 PAs, validating on 20...")
    train = [pa_factory(space.to_dict(p)) for p in space.sample(rng, 60)]
    val = [pa_factory(space.to_dict(p)) for p in space.sample(rng, 20)]
    spec_names = ("gain_db", "iip3_dbm")

    def specs_of(devices):
        return np.vstack(
            [[d.specs().gain_db, d.specs().iip3_dbm] for d in devices]
        )

    train_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in train])
    val_sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in val])
    calibration = CalibrationSession(spec_names=spec_names).fit(
        train_sigs, specs_of(train), rng=rng
    )
    print(calibration.summary())

    print("\n[3/3] Validation results:")
    predicted = calibration.predict_matrix(val_sigs)
    truth = specs_of(val)
    for j, name in enumerate(spec_names):
        err = rmse(truth[:, j], predicted[:, j])
        spread = float(np.std(truth[:, j]))
        print(f"  {name}: RMS err {err:.3f} over a spread of {spread:.3f} "
              f"({err / spread:.1%} of spread)")
    # P1dB follows IIP3 by the fixed 9.64 dB offset in this model, so
    # predicting IIP3 + gain predicts the PA's key compression spec too:
    # P1dB_out = (IIP3_in - 9.64) + gain - 1
    p1db_pred = predicted[:, 1] - 9.6357 + predicted[:, 0] - 1.0
    p1db_true = np.array([d.p1db_out_dbm for d in val])
    print(f"  implied output P1dB: RMS err "
          f"{rmse(p1db_true, p1db_pred):.3f} dBm")


if __name__ == "__main__":
    main()
