"""The RF2401 hardware prototype experiment (Section 4.2, Figures 12-13).

Simulates the paper's bench: a 900 MHz front-end module, Mini-Circuits
style mixers with a 100 kHz LO offset (so the FFT-magnitude signature
survives the unknown test-lead phase), 1 MHz digitizer, 5 ms capture;
55 devices split 28 calibration / 27 validation.  The stimulus is
optimized on a *behavioral* model -- the manufacturer never shipped a
netlist, exactly as in the paper.

Run:  python examples/hardware_prototype.py
"""

from repro import run_hardware_experiment
from repro.experiments.hardware import HW_SPEC_NAMES, PAPER_RMS_ERR


def main():
    print("Simulating the RF2401 hardware experiment "
          "(55 devices, 28 cal / 27 val, 100 kHz LO offset)...")
    result = run_hardware_experiment()

    print()
    print(result.summary())
    print()

    for name in HW_SPEC_NAMES:
        x, y = result.scatter(name)
        unit = "dB" if name == "gain_db" else "dBm"
        print(f"--- {name} scatter (direct measurement vs signature prediction, {unit})")
        for xi, yi in zip(x, y):
            marker = "" if abs(yi - xi) < 2 * result.rms_errors[name] else "  <-- outlier"
            print(f"  {xi:9.3f}  {yi:9.3f}{marker}")
        print()

    print(f"Signature capture: {result.capture_seconds * 1e3:.0f} ms of data "
          "(paper: 'only 5 milliseconds of data capture, and a negligible "
          "time for data transfer and computation of the FFT').")
    print("Paper RMS errors for reference: "
          + ", ".join(f"{k}={v}" for k, v in PAPER_RMS_ERR.items()))


if __name__ == "__main__":
    main()
