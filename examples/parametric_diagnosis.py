"""From a failing signature to the component that drifted.

The paper's reference [9] (Cherubal & Chatterjee, DATE 1999) is about
*diagnosis*: once a device fails, which process parameter moved?  The
same signature + regression machinery answers that -- within its
identifiability limit.  A tuned-path signature carries roughly two
degrees of freedom, so the model first reports which parameters it can
see at all (the rest form ambiguity groups), then ranks the observable
ones for each failing device.

Run:  python examples/parametric_diagnosis.py
"""

import numpy as np

from repro import (
    LNA900,
    SignatureTestBoard,
    lna_parameter_space,
    run_simulation_experiment,
    simulation_config,
)
from repro.runtime.diagnosis import ParameterDiagnosisModel


def main():
    rng = np.random.default_rng(4242)
    experiment = run_simulation_experiment()
    stimulus = experiment.stimulus
    space = lna_parameter_space()
    board = SignatureTestBoard(simulation_config())

    print("[1/2] Training the diagnosis model on 90 devices with known "
          "process points...")
    points = space.sample(rng, 90)
    sigs = np.vstack(
        [board.signature(LNA900(space.to_dict(p)), stimulus, rng=rng) for p in points]
    )
    model = ParameterDiagnosisModel(space).fit(sigs, points, rng=rng)
    print(model.summary())
    print(f"\n  observable parameters: {model.observable_parameters()}")
    print("  (everything else is blind: the tuned-path signature has only "
          "~2 degrees of freedom, so e.g. the bias resistors form an "
          "ambiguity group acting through gm)")

    print("\n[2/2] Diagnosing devices with an injected component drift...")
    for name, step in (("r_load", -0.18), ("r_load", 0.18)):
        vec = space.nominal_vector()
        vec[space.index_of(name)] *= 1.0 + step
        device = LNA900(space.to_dict(vec))
        sig = board.signature(device, stimulus, rng=rng)
        diag = model.diagnose(sig)
        est = diag.estimated_deviations[name]
        print(f"  injected {name} {step:+.0%}: prime suspect = "
              f"{diag.prime_suspect}, estimated deviation {est:+.1%} "
              f"({diag.sigma_scores[diag.prime_suspect]:+.1f} sigma)")

    # a nominal device for contrast
    sig = board.signature(LNA900(), stimulus, rng=rng)
    diag = model.diagnose(sig)
    worst = max(abs(s) for s in diag.sigma_scores.values())
    print(f"  nominal device: worst observable score {worst:.2f} sigma "
          "(no false alarm)")


if __name__ == "__main__":
    main()
