"""Quickstart: predict an LNA's specs from a single signature capture.

Runs the paper's full simulation experiment (stimulus optimization,
100-device calibration, 25-device validation) through the one-call
driver, then demonstrates the production-side API on a fresh device:
one 5 us capture -> all three specifications.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LNA900,
    SignatureTestBoard,
    lna_parameter_space,
    run_simulation_experiment,
    simulation_config,
)


def main():
    print("Running the paper's simulation experiment (Figures 7-10)...")
    result = run_simulation_experiment()
    print(result.summary())
    print()

    # production side: one fresh manufactured device
    space = lna_parameter_space()
    rng = np.random.default_rng(321)
    process_point = space.to_dict(space.sample(rng, 1)[0])
    device = LNA900(process_point)

    board = SignatureTestBoard(simulation_config())
    signature = board.signature(device, result.stimulus, rng=rng)
    predicted = result.calibration.predict(signature)
    actual = device.specs()

    print("One production insertion (a single 5 us signature capture):")
    print(f"  {'spec':>10s}  {'actual':>9s}  {'predicted':>9s}  {'error':>8s}")
    for name in ("gain_db", "nf_db", "iip3_dbm"):
        a = actual.as_dict()[name]
        p = predicted.as_dict()[name]
        print(f"  {name:>10s}  {a:9.3f}  {p:9.3f}  {p - a:+8.3f}")
    print()
    print(
        "All three specs from one capture -- no gain test, no noise-figure "
        "meter, no two-tone IP3 sweep."
    )


if __name__ == "__main__":
    main()
