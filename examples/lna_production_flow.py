"""Production screening of a high-volume LNA lot.

The scenario the paper's introduction motivates: a low pin-count,
high-volume RFIC in the mature phase of its product cycle, where test
cost dominates.  This script runs the complete industrial flow:

1. *Test generation* (engineering time): optimize the PWL stimulus for
   the LNA design with the genetic algorithm.
2. *Calibration* (one-time, on the expensive RF ATE): measure specs of a
   training lot conventionally, capture their signatures on the cheap
   tester, fit the mapping.
3. *Production* (per device, cheap tester only): signature capture ->
   predicted specs -> pass/fail binning against datasheet limits.
4. *Economics*: time and cost per device for both flows.

Run:  python examples/lna_production_flow.py
"""

import numpy as np

from repro import (
    LNA900,
    CalibrationSession,
    ConventionalRFATE,
    GAConfig,
    ProductionTestFlow,
    SignatureStimulusOptimizer,
    SignatureTestBoard,
    SpecificationLimits,
    StimulusEncoding,
    compare_flows,
    lna_parameter_space,
    simulation_config,
)
from repro.parallel import ProcessExecutor
from repro.runtime.calibration import measure_signatures
from repro.runtime.specs import lna_limits


def main():
    rng = np.random.default_rng(2026)
    space = lna_parameter_space()
    config = simulation_config()
    board = SignatureTestBoard(config)

    # ------------------------------------------------------------------
    # 1. test generation
    # ------------------------------------------------------------------
    print("[1/4] Optimizing the test stimulus (genetic algorithm, 5 generations)...")
    optimizer = SignatureStimulusOptimizer(
        board_config=config,
        device_factory=LNA900,
        space=space,
        encoding=StimulusEncoding(n_breakpoints=16, duration=5e-6, v_limit=0.4),
        ga_config=GAConfig(population_size=16, generations=5),
        rel_step=0.03,
    )
    optimization = optimizer.optimize(rng)
    print(optimization.summary())
    stimulus = optimization.stimulus

    # ------------------------------------------------------------------
    # 2. calibration: training lot measured on the RF ATE + cheap tester
    # ------------------------------------------------------------------
    n_train = 80
    print(f"\n[2/4] Calibrating on {n_train} training devices "
          "(specs from the conventional ATE, signatures from the cheap tester)...")
    ate = ConventionalRFATE()
    train_devices = [
        LNA900(space.to_dict(p)) for p in space.sample(rng, n_train)
    ]
    train_specs = np.vstack(
        [ate.test_device(d, rng).specs.as_vector() for d in train_devices]
    )
    train_sigs = measure_signatures(board, stimulus, train_devices, rng)
    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    print(calibration.summary())

    # ------------------------------------------------------------------
    # 3. production: a lot of 200 devices on the cheap tester only
    # ------------------------------------------------------------------
    n_lot = 200
    print(f"\n[3/4] Production-testing a lot of {n_lot} devices (signature only)...")
    limits = lna_limits(gain_min_db=14.0, nf_max_db=3.3, iip3_min_dbm=-1.0)
    flow = ProductionTestFlow(board, stimulus, calibration, limits=limits)
    lot = [LNA900(space.to_dict(p)) for p in space.sample(rng, n_lot)]
    # multi-DUT batch across a process pool (docs/parallelism.md);
    # bit-identical to executor=None, just faster on multi-core floors
    with ProcessExecutor() as executor:
        run = flow.run(lot, rng, executor=executor)
    print(f"  yield: {run.yield_fraction:.1%}  "
          f"({int(run.yield_fraction * n_lot)} of {n_lot} pass)")
    print(f"  test time per device: {run.mean_test_time * 1e3:.1f} ms  "
          f"-> {run.throughput_per_hour():.0f} devices/hour")

    # binning quality: how often does the signature verdict match truth?
    agreements = sum(
        rec.passed == limits.check(dev.specs())
        for rec, dev in zip(run.records, lot)
    )
    print(f"  binning agreement with true specs: {agreements}/{n_lot}")

    # ------------------------------------------------------------------
    # 4. economics
    # ------------------------------------------------------------------
    print("\n[4/4] Test economics, conventional vs signature:")
    comparison = compare_flows(
        conventional_seconds=ate.insertion_time(),
        signature_seconds=config.total_test_time(),
    )
    print(comparison.summary())


if __name__ == "__main__":
    main()
