"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro sim                 # Figures 7-10
    python -m repro hardware            # Figures 12-13
    python -m repro phase               # Equations 4-5 sweep
    python -m repro economics           # test-time / cost comparison
    python -m repro program out.rtp     # build and save a test program
    python -m repro verify              # relation campaign + golden drift
    python -m repro serve               # streaming service on live traffic
    python -m repro soak                # sustained-load soak + metrics JSON

Every subcommand accepts ``--seed`` for reproducibility; see
``python -m repro <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Signature test framework for rapid production testing of RF "
            "circuits (DATE 2002 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("sim", help="run the simulation experiment (Figs. 7-10)")
    p_sim.add_argument("--seed", type=int, default=2002)
    p_sim.add_argument("--train", type=int, default=100, help="training devices")
    p_sim.add_argument("--val", type=int, default=25, help="validation devices")
    p_sim.add_argument(
        "--stimulus",
        choices=("ga", "ramp", "flat", "random"),
        default="ga",
        help="'ga' optimizes with the genetic algorithm; others are baselines",
    )
    p_sim.add_argument(
        "--executor",
        default=None,
        metavar="BACKEND",
        help="batch backend: serial (default), thread, process, or e.g. "
        "process:4 -- results are bit-identical across backends",
    )

    p_hw = sub.add_parser(
        "hardware", help="run the simulated RF2401 bench experiment (Figs. 12-13)"
    )
    p_hw.add_argument("--seed", type=int, default=1955)
    p_hw.add_argument("--cal", type=int, default=28, help="calibration devices")
    p_hw.add_argument("--val", type=int, default=27, help="validation devices")
    p_hw.add_argument(
        "--fast",
        action="store_true",
        help="reduced GA budget (quick look instead of the full run)",
    )

    p_phase = sub.add_parser(
        "phase", help="run the Equation 4/5 phase-robustness sweep"
    )
    p_phase.add_argument("--seed", type=int, default=7)
    p_phase.add_argument("--points", type=int, default=17)

    p_econ = sub.add_parser(
        "economics", help="compare conventional vs signature test economics"
    )
    p_econ.add_argument(
        "--sites", type=int, default=1, help="parallel sites on the cheap tester"
    )

    p_prog = sub.add_parser(
        "program",
        help="build a production test program (stimulus + calibration) and save it",
    )
    p_prog.add_argument("output", help="artifact path (e.g. lna900.rtp)")
    p_prog.add_argument("--seed", type=int, default=2002)

    p_report = sub.add_parser(
        "report",
        help="write a markdown reproduction report (all experiments) to a file",
    )
    p_report.add_argument("output", help="markdown path (e.g. report.md)")
    p_report.add_argument("--seed", type=int, default=2002)
    p_report.add_argument(
        "--fast",
        action="store_true",
        help="skip the (slow) hardware experiment",
    )

    p_verify = sub.add_parser(
        "verify",
        help="run the metamorphic relation campaign and golden drift check",
    )
    p_verify.add_argument(
        "--seed", type=int, default=None, help="campaign master seed"
    )
    p_verify.add_argument(
        "--configs",
        type=int,
        default=50,
        help="sampled configurations per relation (default 50)",
    )
    p_verify.add_argument(
        "--relations",
        default=None,
        metavar="NAMES",
        help="comma-separated relation subset (default: all registered)",
    )
    p_verify.add_argument(
        "--report",
        default="benchmarks/results/verify_campaign.json",
        metavar="PATH",
        help="campaign JSON report path",
    )
    p_verify.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help="golden corpus directory (default tests/golden)",
    )
    p_verify.add_argument(
        "--skip-golden",
        action="store_true",
        help="run only the relation campaign, skip corpus drift detection",
    )
    p_verify.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the golden corpus (refused if relations fail)",
    )
    p_verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip counterexample shrinking on failures",
    )
    p_verify.add_argument(
        "--list",
        action="store_true",
        dest="list_relations",
        help="list registered relations and golden corpora, then exit",
    )

    def add_stream_options(p, default_seconds: float) -> None:
        """Options shared by the streaming `serve` and `soak` commands."""
        p.add_argument("--seed", type=int, default=2002, help="campaign master seed")
        p.add_argument(
            "--seconds",
            type=float,
            default=default_seconds,
            help=f"wall-clock streaming budget (default {default_seconds:g})",
        )
        p.add_argument(
            "--lots", type=int, default=None, help="stop after this many lots"
        )
        p.add_argument("--lot-size", type=int, default=16, help="devices per lot")
        p.add_argument(
            "--cells", type=int, default=4, help="simulated test cells feeding lots"
        )
        p.add_argument(
            "--executor",
            default=None,
            metavar="BACKEND",
            help="capture backend: serial (default), thread, process, or "
            "e.g. process:4 -- records are bit-identical across backends",
        )
        p.add_argument(
            "--max-pending",
            type=int,
            default=8,
            help="ingest queue capacity in lots (the backpressure bound)",
        )
        p.add_argument(
            "--chunksize", type=int, default=None, help="devices per capture task"
        )
        p.add_argument(
            "--train", type=int, default=32, help="calibration training devices"
        )
        p.add_argument(
            "--sites",
            type=int,
            default=1,
            help="load-board sites per insertion (>1 streams through a "
            "MultiSiteBoard with crosstalk and instrument contention)",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming production-test service on wafer-map traffic",
    )
    add_stream_options(p_serve, default_seconds=10.0)
    p_serve.add_argument(
        "--interval",
        type=int,
        default=25,
        help="print a live metrics line every N submitted lots",
    )

    p_soak = sub.add_parser(
        "soak",
        help="soak-test the streaming service and write the metrics JSON",
    )
    add_stream_options(p_soak, default_seconds=60.0)
    p_soak.add_argument(
        "--output",
        default="benchmarks/results/streaming_soak.json",
        metavar="PATH",
        help="metrics JSON path (CI uploads it as the soak artifact)",
    )
    p_soak.add_argument(
        "--sanitize-locks",
        action="store_true",
        help="run under the runtime lock-order sanitizer: fail fast on "
        "acquisition-order cycles and report per-lock worst hold times",
    )

    p_lint = sub.add_parser(
        "lint",
        help="run signature-lint (domain-aware static analysis) over the tree",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help=(
            "output format (sarif emits a SARIF 2.1.0 log for "
            "code-scanning upload)"
        ),
    )
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    p_lint.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    p_lint.add_argument(
        "--severity-threshold",
        choices=("note", "warning", "error"),
        default="note",
        metavar="LEVEL",
        help=(
            "lowest severity (note|warning|error) that fails the run "
            "with exit code 1 (default: note, i.e. any finding fails)"
        ),
    )
    p_lint.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="incremental lint-result cache directory",
    )
    p_lint.add_argument(
        "--stats",
        action="store_true",
        help="append a findings-per-rule table to the report",
    )
    p_lint.add_argument(
        "--numerics-report",
        action="store_true",
        help=(
            "emit the float32 certification report (proven intervals + "
            "error bounds) instead of findings"
        ),
    )

    return parser


def _cmd_sim(args: argparse.Namespace) -> int:
    from repro.experiments.lna_simulation import run_simulation_experiment

    stimulus = None if args.stimulus == "ga" else args.stimulus
    result = run_simulation_experiment(
        seed=args.seed,
        n_train=args.train,
        n_val=args.val,
        stimulus=stimulus,
        executor=args.executor,
    )
    print(result.summary())
    return 0


def _cmd_hardware(args: argparse.Namespace) -> int:
    from repro.experiments.hardware import run_hardware_experiment
    from repro.testgen.genetic import GAConfig

    ga = GAConfig(population_size=6, generations=1) if args.fast else None
    result = run_hardware_experiment(
        seed=args.seed,
        n_calibration=args.cal,
        n_validation=args.val,
        ga_config=ga,
    )
    print(result.summary())
    return 0


def _cmd_phase(args: argparse.Namespace) -> int:
    from repro.experiments.phase_study import run_phase_study

    result = run_phase_study(seed=args.seed, n_phases=args.points)
    print(result.summary())
    return 0


def _cmd_economics(args: argparse.Namespace) -> int:
    from repro.instruments.ate import ConventionalRFATE
    from repro.loadboard.signature_path import hardware_config
    from repro.runtime.economics import FlowEconomics, TesterCostModel, compare_flows

    conventional = ConventionalRFATE().insertion_time()
    signature = hardware_config().total_test_time()
    comparison = compare_flows(conventional, signature)
    print(comparison.summary())
    if args.sites > 1:
        multi = FlowEconomics(
            TesterCostModel.low_cost_tester(), signature, sites=args.sites
        )
        print(
            f"with {args.sites} sites: {multi.throughput_per_hour:.0f} devices/h, "
            f"{multi.cost_per_device * 100:.4f} cents/device"
        )
    return 0


def _cmd_program(args: argparse.Namespace) -> int:
    from repro.experiments.lna_simulation import run_simulation_experiment
    from repro.runtime.artifacts import TestProgram, save_test_program
    from repro.runtime.specs import lna_limits

    result = run_simulation_experiment(seed=args.seed)
    program = TestProgram(
        stimulus=result.stimulus,
        calibration=result.calibration,
        limits=lna_limits(),
        metadata={
            "dut": "LNA900",
            "seed": str(args.seed),
            "std_err": ", ".join(
                f"{k}={v:.4f}" for k, v in result.std_errors.items()
            ),
        },
    )
    path = save_test_program(program, args.output)
    print(f"test program written to {path}")
    print(program.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.lna_simulation import (
        PAPER_STD_ERR,
        run_simulation_experiment,
    )
    from repro.experiments.phase_study import run_phase_study
    from repro.instruments.ate import ConventionalRFATE
    from repro.loadboard.signature_path import hardware_config
    from repro.runtime.economics import compare_flows

    lines = [
        "# Reproduction report",
        "",
        "Voorakaranam, Cherubal, Chatterjee -- *A Signature Test Framework "
        "for Rapid Production Testing of RF Circuits*, DATE 2002.",
        "",
        "## Simulation experiment (Figures 7-10)",
        "",
    ]
    sim = run_simulation_experiment(seed=args.seed)
    lines.append("| spec | paper std(err) | measured | R^2 |")
    lines.append("|---|---|---|---|")
    for name in ("gain_db", "nf_db", "iip3_dbm"):
        lines.append(
            f"| {name} | {PAPER_STD_ERR[name]:.3f} | "
            f"{sim.std_errors[name]:.4f} | {sim.r2[name]:.4f} |"
        )
    lines += [
        "",
        "Optimized stimulus breakpoints (V): "
        + ", ".join(f"{v:.3f}" for v in sim.stimulus.levels),
        "",
    ]

    if not args.fast:
        from repro.experiments.hardware import PAPER_RMS_ERR, run_hardware_experiment

        hw = run_hardware_experiment(seed=1955)
        lines += ["## Hardware experiment (Figures 12-13)", ""]
        lines.append("| spec | paper RMS | measured | R^2 |")
        lines.append("|---|---|---|---|")
        for name in ("gain_db", "iip3_dbm"):
            lines.append(
                f"| {name} | {PAPER_RMS_ERR[name]:.2f} | "
                f"{hw.rms_errors[name]:.4f} | {hw.r2[name]:.4f} |"
            )
        lines.append("")

    phase = run_phase_study()
    wc = phase.worst_case()
    lines += [
        "## Phase robustness (Equations 4-5)",
        "",
        f"- same-LO time-domain signature drift: {wc['same_lo_time_domain']:.1%}",
        f"- offset-LO FFT-magnitude drift: {wc['offset_lo_fft_magnitude']:.3%}",
        f"- same-LO null depth at quarter wave: "
        f"{float(min(phase.same_lo_rms)):.2e} V rms",
        "",
        "## Economics (Section 4.2)",
        "",
    ]
    comparison = compare_flows(
        ConventionalRFATE().insertion_time(), hardware_config().total_test_time()
    )
    lines.append("```")
    lines.append(comparison.summary())
    lines.append("```")
    lines.append("")

    path = Path(args.output)
    path.write_text("\n".join(lines))
    print(f"report written to {path.resolve()}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import repro.verify.relations  # noqa: F401 - populate the registry
    from repro.verify.golden import (
        GoldenUpdateRefused,
        check_all_corpora,
        corpus_names,
        update_golden,
    )
    from repro.verify.harness import (
        DEFAULT_MASTER_SEED,
        DEFAULT_REGISTRY,
        run_campaign,
    )

    if args.list_relations:
        for name in DEFAULT_REGISTRY.names():
            print(f"relation {name}")
        for name in corpus_names():
            print(f"golden corpus {name}")
        return 0

    seed = DEFAULT_MASTER_SEED if args.seed is None else args.seed
    if args.update_golden:
        try:
            written = update_golden(directory=args.golden_dir, master_seed=seed)
        except GoldenUpdateRefused as exc:
            print(f"refused: {exc}")
            return 1
        for path in written:
            print(f"golden corpus written to {path}")
        return 0

    names = (
        [n.strip() for n in args.relations.split(",") if n.strip()]
        if args.relations
        else None
    )
    campaign = run_campaign(
        names=names,
        n_cases=args.configs,
        master_seed=seed,
        shrink=not args.no_shrink,
    )
    if not args.skip_golden:
        campaign.golden_drift = check_all_corpora(args.golden_dir)
    if args.report:
        campaign.write(args.report)
    print(campaign.summary())
    if args.report:
        print(f"campaign report written to {args.report}")
    return 0 if campaign.ok else 1


def _soak_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        seed=args.seed,
        seconds=args.seconds,
        max_lots=args.lots,
        lot_size=args.lot_size,
        n_cells=args.cells,
        executor=args.executor,
        max_pending_lots=args.max_pending,
        chunksize=args.chunksize,
        n_train=args.train,
        sanitize_locks=getattr(args, "sanitize_locks", False),
        sites=args.sites,
    )


def _soak_summary(payload: dict) -> str:
    lines = [
        f"streamed {payload['devices_tested']} DUTs in "
        f"{payload['lots_completed']} lots over {payload['wall_seconds']:.1f} s "
        f"({payload['executor']} backend)",
        f"throughput: {payload['duts_per_second']:.1f} DUTs/s "
        f"(windowed {payload['duts_per_second_windowed']:.1f})",
        f"latency:    p50 {payload['latency_p50_ms']:.1f} ms, "
        f"p99 {payload['latency_p99_ms']:.1f} ms, "
        f"worst {payload['latency_worst_ms']:.1f} ms",
    ]
    if payload["yield_fraction"] is not None:
        lines.append(f"yield:      {payload['yield_fraction']:.1%}")
    if payload.get("sites", 1) > 1:
        per_site = payload.get("site_devices_tested") or {}
        counts = ", ".join(
            f"site {site}: {count}" for site, count in sorted(per_site.items())
        )
        lines.append(
            f"sites:      {payload['sites']} "
            f"(contention wait {payload['contention_wait_ms']:.1f} ms; {counts})"
        )
    lines.append(
        "first lot bit-identical to offline flow: "
        f"{payload['first_lot_bit_identical_to_offline']}"
    )
    lines.append(
        "health:     " + ("ok" if payload["healthy"] else "UNHEALTHY")
    )
    for reason in payload["health_reasons"]:
        lines.append(f"    {reason}")
    sanitizer = payload.get("lock_sanitizer")
    if sanitizer is not None:
        lines.append(
            f"lock sanitizer: {sanitizer['locks_instrumented']} locks, "
            f"{len(sanitizer['order_edges'])} order edges, "
            f"{len(sanitizer['violations'])} violations"
        )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runtime.soak import run_soak

    interval = max(1, args.interval)
    seen = [0]

    def live(snapshot) -> None:
        seen[0] += 1
        if seen[0] % interval == 0:
            print(snapshot.summary(), flush=True)

    payload = run_soak(on_snapshot=live, **_soak_kwargs(args))
    print(_soak_summary(payload))
    return 0 if payload["healthy"] and payload[
        "first_lot_bit_identical_to_offline"
    ] else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.runtime.soak import run_soak

    payload = run_soak(**_soak_kwargs(args))
    if args.output:
        directory = os.path.dirname(args.output)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"soak metrics written to {args.output}")
    print(_soak_summary(payload))
    return 0 if payload["healthy"] and payload[
        "first_lot_bit_identical_to_offline"
    ] else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(
        args.paths,
        fmt=args.format,
        select=args.select,
        ignore=args.ignore,
        cache_dir=args.cache_dir,
        stats=args.stats,
        severity_threshold=args.severity_threshold,
        numerics_report=args.numerics_report,
    )


_COMMANDS = {
    "sim": _cmd_sim,
    "hardware": _cmd_hardware,
    "phase": _cmd_phase,
    "economics": _cmd_economics,
    "program": _cmd_program,
    "report": _cmd_report,
    "verify": _cmd_verify,
    "serve": _cmd_serve,
    "soak": _cmd_soak,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
