"""Elementary signal sources.

These generators produce :class:`~repro.dsp.waveform.Waveform` records used
throughout the framework: single tones for gain tests, two-tone sets for
IIP3 tests, chirps as an unoptimized baseline stimulus, and noise records.
Amplitudes may be specified either directly in volts (peak) or as a power
level in dBm into the 50-ohm reference impedance.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dsp.units import dbm_to_watts, watts_to_dbm
from repro.dsp.waveform import REFERENCE_IMPEDANCE, Waveform

__all__ = [
    "dbm_to_vpeak",
    "vpeak_to_dbm",
    "tone",
    "two_tone",
    "chirp",
    "white_noise",
    "silence",
    "dc",
]


def dbm_to_vpeak(power_dbm: float, impedance: float = REFERENCE_IMPEDANCE) -> float:
    """Peak voltage of a sine with the given available power in dBm.

    For a sine of peak amplitude ``A`` into ``R`` ohms the mean power is
    ``A^2 / (2 R)``; this inverts that relation.
    """
    watts = dbm_to_watts(power_dbm)
    return math.sqrt(2.0 * watts * impedance)


def vpeak_to_dbm(v_peak: float, impedance: float = REFERENCE_IMPEDANCE) -> float:
    """Power in dBm of a sine with peak amplitude ``v_peak`` volts."""
    if v_peak <= 0:
        return -math.inf
    watts = v_peak**2 / (2.0 * impedance)
    return watts_to_dbm(watts)


def _n_samples(duration: float, sample_rate: float) -> int:
    if not (duration > 0):
        raise ValueError("duration must be positive")
    if not (sample_rate > 0):
        raise ValueError("sample_rate must be positive")
    return max(1, int(round(duration * sample_rate)))


def tone(
    frequency: float,
    duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
    power_dbm: Optional[float] = None,
) -> Waveform:
    """A single sine tone.

    If ``power_dbm`` is given it overrides ``amplitude`` (peak volts).
    """
    if power_dbm is not None:
        amplitude = dbm_to_vpeak(power_dbm)
    n = _n_samples(duration, sample_rate)
    t = np.arange(n) / sample_rate
    return Waveform(amplitude * np.sin(2.0 * np.pi * frequency * t + phase), sample_rate)


def two_tone(
    f1: float,
    f2: float,
    duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
    power_dbm_each: Optional[float] = None,
) -> Waveform:
    """Equal-amplitude two-tone stimulus for intermodulation testing.

    ``amplitude`` (or ``power_dbm_each``) applies to *each* tone, matching
    how IIP3 test conditions are normally quoted.
    """
    if f1 == f2:
        raise ValueError("two-tone test requires distinct frequencies")
    if power_dbm_each is not None:
        amplitude = dbm_to_vpeak(power_dbm_each)
    n = _n_samples(duration, sample_rate)
    t = np.arange(n) / sample_rate
    samples = amplitude * (
        np.sin(2.0 * np.pi * f1 * t) + np.sin(2.0 * np.pi * f2 * t)
    )
    return Waveform(samples, sample_rate)


def chirp(
    f_start: float,
    f_stop: float,
    duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> Waveform:
    """Linear-frequency chirp, used as an unoptimized baseline stimulus."""
    n = _n_samples(duration, sample_rate)
    t = np.arange(n) / sample_rate
    # instantaneous phase of a linear chirp: 2*pi*(f0 t + (k/2) t^2)
    k = (f_stop - f_start) / duration
    phase = 2.0 * np.pi * (f_start * t + 0.5 * k * t**2)
    return Waveform(amplitude * np.sin(phase), sample_rate)


def white_noise(
    duration: float,
    sample_rate: float,
    rms: float,
    rng: Optional[np.random.Generator] = None,
) -> Waveform:
    """Gaussian white noise with the requested RMS value."""
    if rms < 0:
        raise ValueError("rms must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    n = _n_samples(duration, sample_rate)
    return Waveform(rng.normal(0.0, rms, size=n), sample_rate)


def silence(duration: float, sample_rate: float) -> Waveform:
    """All-zero record."""
    return Waveform(np.zeros(_n_samples(duration, sample_rate)), sample_rate)


def dc(level: float, duration: float, sample_rate: float) -> Waveform:
    """Constant record at ``level`` volts."""
    return Waveform(np.full(_n_samples(duration, sample_rate), float(level)), sample_rate)
