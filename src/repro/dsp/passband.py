"""Brute-force passband simulation of the signature path.

Samples the real carrier directly (no envelope algebra) and steps through
exactly the same chain as
:class:`repro.loadboard.signature_path.SignatureTestBoard`: upconversion
mixer, DUT coupling, polynomial DUT, downconversion mixer, low-pass
filter, digitizer.  Orders of magnitude slower than the envelope engine,
but free of any harmonic bookkeeping -- the two engines agreeing on the
same configuration is the framework's core correctness check (see
``tests/loadboard/test_envelope_vs_passband.py``).

Run validations on scaled-down carrier frequencies; the physics is
scale-invariant and passband records at 900 MHz would be enormous.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.circuits.device import RFDevice
from repro.dsp.filters import ButterworthLowpass
from repro.dsp.units import undb20
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform

__all__ = [
    "bandpass_mask",
    "lowpass_mask",
    "envelope_one_pole",
    "passband_capture",
]


def bandpass_mask(wf: Waveform, f_center: float, half_width: float) -> Waveform:
    """Ideal (brick-wall) bandpass around ``f_center``.

    Zeroes every FFT bin outside ``|f - f_center| <= half_width``.  This is
    the passband equivalent of
    :meth:`repro.loadboard.envelope.EnvelopeSignal.keep_harmonics` for a
    single harmonic: a tuned coupling network.
    """
    if half_width <= 0:
        raise ValueError("half_width must be positive")
    spec = np.fft.rfft(wf.samples)
    freqs = np.fft.rfftfreq(len(wf), d=wf.dt)
    keep = np.abs(freqs - f_center) <= half_width
    out = np.fft.irfft(spec * keep, n=len(wf))
    return Waveform(out, wf.sample_rate, wf.t0)


def lowpass_mask(wf: Waveform, cutoff: float) -> Waveform:
    """Ideal low-pass: the baseband-selection counterpart of bandpass_mask."""
    return bandpass_mask(wf, 0.0, cutoff)


def envelope_one_pole(
    wf: Waveform, f_center: float, bandwidth_hz: float, half_width: float
) -> Waveform:
    """One-pole low-pass of the complex envelope around ``f_center``.

    The passband counterpart of
    :meth:`repro.loadboard.envelope.EnvelopeSignal.filter_harmonic`:
    extract the complex envelope (downconvert + brick-wall select the
    ``half_width`` band), run the same bilinear one-pole on it, and
    re-modulate.
    """
    import math

    n = len(wf)
    t = np.arange(n) / wf.sample_rate
    carrier = np.exp(-2j * np.pi * f_center * t)
    # complex envelope: 2 x the selected positive-frequency content
    mixed = wf.samples.astype(complex) * carrier
    spec = np.fft.fft(mixed)
    freqs = np.fft.fftfreq(n, d=wf.dt)
    spec[np.abs(freqs) > half_width] = 0.0
    envelope = 2.0 * np.fft.ifft(spec)

    wc = 2.0 * wf.sample_rate * math.tan(
        math.pi * bandwidth_hz / wf.sample_rate
    )
    k = 2.0 * wf.sample_rate
    b0 = wc / (k + wc)
    a1 = (wc - k) / (k + wc)
    y = np.empty_like(envelope)
    prev_x = 0.0 + 0.0j
    prev_y = 0.0 + 0.0j
    for i, x in enumerate(envelope):
        y[i] = b0 * (x + prev_x) - a1 * prev_y
        prev_x = x
        prev_y = y[i]
    out = np.real(y * np.conj(carrier))
    return Waveform(out, wf.sample_rate, wf.t0)


def passband_capture(
    device: RFDevice,
    stimulus: Union[Waveform, PiecewiseLinearStimulus],
    config,
    passband_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> Waveform:
    """One noise-free signature acquisition, simulated at the carrier rate.

    Parameters
    ----------
    device:
        DUT exposing ``envelope_poly``.
    stimulus:
        Baseband test stimulus.
    config:
        A :class:`repro.loadboard.signature_path.SignaturePathConfig`.
        ``random_path_phase`` is honoured via ``rng``; measurement noise
        is *not* applied (validation compares deterministic paths).
    passband_rate:
        Simulation rate; must exceed twice the highest product frequency
        (about 12x the carrier with cubic mixers and DUT).
    """
    cfg = config
    if passband_rate < 8.0 * cfg.carrier_freq:
        raise ValueError("passband_rate must be at least 8x the carrier")
    n = int(round(cfg.capture_seconds * passband_rate))
    t = np.arange(n) / passband_rate

    # stimulus at the passband rate
    if isinstance(stimulus, PiecewiseLinearStimulus):
        x = stimulus.to_waveform(passband_rate)
    else:
        x = stimulus.resample(passband_rate)
    if len(x) < n:
        x = x.pad_to(n)
    x = Waveform(x.samples[:n], passband_rate)

    amp = cfg.carrier_amplitude
    lo1 = Waveform(amp * np.sin(2.0 * np.pi * cfg.carrier_freq * t), passband_rate)
    upconverted = cfg.mixer1.mix(x, lo1)

    if cfg.input_loss_db > 0.0:
        upconverted = Waveform(
            upconverted.samples * undb20(-cfg.input_loss_db),
            passband_rate,
        )

    half_width = cfg.engine_rate / 2.0
    if cfg.dut_coupling == "tuned":
        dut_in = bandpass_mask(upconverted, cfg.carrier_freq, half_width)
    else:
        dut_in = upconverted

    from repro.circuits.nonlinear import PolynomialNonlinearity

    a1, a2, a3 = device.envelope_poly()
    # the clipped (saturating) transfer, matching the envelope engine's
    # describing-function treatment of overdriven narrowband DUTs
    dut_out = PolynomialNonlinearity(a1, a2, a3).apply(dut_in)
    if cfg.dut_coupling == "tuned":
        dut_out = bandpass_mask(dut_out, cfg.carrier_freq, half_width)
        env_bw = getattr(device, "envelope_bandwidth", None)
        if env_bw is not None:
            dut_out = envelope_one_pole(
                dut_out, cfg.carrier_freq, env_bw, half_width
            )
    if cfg.output_loss_db > 0.0:
        dut_out = Waveform(
            dut_out.samples * undb20(-cfg.output_loss_db), passband_rate
        )

    phase = cfg.path_phase_rad
    if cfg.random_path_phase:
        if rng is None:
            raise ValueError("random_path_phase requires an rng")
        phase = phase + rng.uniform(0.0, 2.0 * np.pi)
    f2 = cfg.carrier_freq + cfg.lo_offset_hz
    lo2 = Waveform(amp * np.sin(2.0 * np.pi * f2 * t + phase), passband_rate)
    downconverted = cfg.mixer2.mix(dut_out, lo2)

    # remove carrier-band products before applying the real LPF shape, so
    # the linear-interpolation resampler sees only baseband content
    baseband = lowpass_mask(downconverted, cfg.engine_rate / 2.0)
    lpf = ButterworthLowpass(cfg.lpf_order, cfg.lpf_cutoff_hz, passband_rate)
    filtered = lpf.apply_fft(baseband)

    captured = filtered.resample(cfg.digitizer_rate)
    n_out = int(round(cfg.capture_seconds * cfg.digitizer_rate))
    samples = captured.samples[:n_out]
    return Waveform(samples, cfg.digitizer_rate)
