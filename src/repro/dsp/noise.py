"""Noise and imperfection models for instruments and signal paths.

Covers the non-idealities the framework injects:

* additive gaussian measurement noise (the paper adds 1 mV gaussian noise
  to simulated signatures),
* DAC/ADC quantization,
* sampling-clock jitter,
* thermal-noise helpers (kTB) used by the DUT noise-figure models.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = [
    "BOLTZMANN",
    "ROOM_TEMPERATURE_K",
    "thermal_noise_power_watts",
    "thermal_noise_vrms",
    "add_awgn",
    "quantize",
    "quantize_array",
    "sample_jitter",
]

#: Boltzmann constant in J/K.
BOLTZMANN = 1.380649e-23

#: Standard noise reference temperature (IEEE T0) in kelvin.
ROOM_TEMPERATURE_K = 290.0


def thermal_noise_power_watts(bandwidth_hz: float, temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Available thermal noise power kTB in watts."""
    if bandwidth_hz < 0:
        raise ValueError("bandwidth must be non-negative")
    return BOLTZMANN * temperature_k * bandwidth_hz


def thermal_noise_vrms(
    bandwidth_hz: float,
    impedance: float = 50.0,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """RMS voltage of kTB noise delivered into ``impedance`` ohms.

    Uses the available-power convention: ``v_rms = sqrt(k T B R)``.
    """
    return math.sqrt(thermal_noise_power_watts(bandwidth_hz, temperature_k) * impedance)


def add_awgn(wf: Waveform, sigma: float, rng: Optional[np.random.Generator] = None) -> Waveform:
    """Add white gaussian noise of standard deviation ``sigma`` volts."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0.0:
        return wf.copy()
    rng = rng if rng is not None else np.random.default_rng()
    return Waveform(
        wf.samples + rng.normal(0.0, sigma, size=len(wf)), wf.sample_rate, wf.t0
    )


def quantize_array(samples: np.ndarray, bits: int, full_scale: float) -> np.ndarray:
    """Uniform mid-tread quantization of a sample array (any shape).

    Samples outside the full-scale range clip, which is how real data
    converters behave.  Elementwise, so batched ``(batch, n)`` records
    quantize bit-identically to quantizing each row alone.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if not (full_scale > 0):
        raise ValueError("full_scale must be positive")
    levels = 2**bits
    lsb = 2.0 * full_scale / levels
    clipped = np.clip(samples, -full_scale, full_scale - lsb)
    return np.round(clipped / lsb) * lsb


def quantize(wf: Waveform, bits: int, full_scale: float) -> Waveform:
    """Uniform mid-tread quantization to ``bits`` bits over +/- full_scale."""
    return Waveform(quantize_array(wf.samples, bits, full_scale), wf.sample_rate, wf.t0)


def sample_jitter(
    wf: Waveform,
    jitter_rms_seconds: float,
    rng: Optional[np.random.Generator] = None,
) -> Waveform:
    """Model sampling-clock jitter by resampling at perturbed instants.

    Each nominal sample instant is shifted by independent gaussian jitter
    and the record is linearly interpolated at the perturbed instants.
    """
    if jitter_rms_seconds < 0:
        raise ValueError("jitter must be non-negative")
    if jitter_rms_seconds == 0.0:
        return wf.copy()
    rng = rng if rng is not None else np.random.default_rng()
    t = wf.times()
    jittered = t + rng.normal(0.0, jitter_rms_seconds, size=len(wf))
    # keep instants inside the record so interpolation never extrapolates
    jittered = np.clip(jittered, t[0], t[-1])
    return Waveform(np.interp(jittered, t, wf.samples), wf.sample_rate, wf.t0)
