"""Low-pass filter design, implemented from first principles.

The load board of the paper (Figures 2/3) contains a low-pass filter after
the downconversion mixer (10 MHz cutoff in the simulation experiment).  We
implement the design math from scratch:

* :func:`butterworth_poles` places the analog prototype poles on the unit
  circle in the left half plane.
* :func:`butterworth_sos` maps them to digital biquad sections through the
  bilinear transform with frequency pre-warping.
* :class:`ButterworthLowpass` applies the cascade (time-domain direct-form
  II transposed, vectorized per-section).
* :class:`FIRLowpass` offers a linear-phase windowed-sinc alternative.

Only ``numpy`` is used; the per-section recursion is short (cascade of
2nd-order stages) so pure-Python section looping is fast enough for the
record lengths in this framework.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = [
    "butterworth_poles",
    "butterworth_sos",
    "sosfilt",
    "ButterworthLowpass",
    "FIRLowpass",
]


def butterworth_poles(order: int) -> np.ndarray:
    """Left-half-plane poles of the analog Butterworth prototype (wc = 1).

    The poles lie on the unit circle at angles
    ``pi * (2k + n + 1) / (2n)`` for ``k = 0..n-1``.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    k = np.arange(order)
    theta = np.pi * (2.0 * k + order + 1.0) / (2.0 * order)
    poles = np.exp(1j * theta)
    # guard against numerically positive real parts
    if np.any(poles.real > 1e-12):
        raise AssertionError("Butterworth prototype produced RHP pole")
    return poles


def _bilinear_biquad(
    analog_b: Tuple[float, float, float],
    analog_a: Tuple[float, float, float],
    fs: float,
) -> np.ndarray:
    """Bilinear transform of one analog biquad ``(b, a)`` to digital SOS row.

    Uses ``s = 2 fs (z - 1) / (z + 1)``.  Returns the 6-element row
    ``[b0, b1, b2, a0=1, a1, a2]``.
    """
    b2, b1, b0 = analog_b[2], analog_b[1], analog_b[0]
    a2, a1, a0 = analog_a[2], analog_a[1], analog_a[0]
    K = 2.0 * fs
    # substitute and collect powers of z^-1
    B0 = b0 + b1 * K + b2 * K * K
    B1 = 2.0 * b0 - 2.0 * b2 * K * K
    B2 = b0 - b1 * K + b2 * K * K
    A0 = a0 + a1 * K + a2 * K * K
    A1 = 2.0 * a0 - 2.0 * a2 * K * K
    A2 = a0 - a1 * K + a2 * K * K
    return np.array([B0 / A0, B1 / A0, B2 / A0, 1.0, A1 / A0, A2 / A0])


def butterworth_sos(order: int, cutoff_hz: float, sample_rate: float) -> np.ndarray:
    """Digital Butterworth low-pass as second-order sections.

    Parameters
    ----------
    order:
        Filter order (>= 1).  Odd orders produce one first-order section
        (represented as a biquad with trailing zeros).
    cutoff_hz:
        -3 dB frequency in Hz.
    sample_rate:
        Sampling rate in Hz; ``cutoff_hz`` must be below Nyquist.

    Returns
    -------
    ndarray of shape ``(n_sections, 6)`` with rows ``[b0 b1 b2 1 a1 a2]``.
    """
    if not (0.0 < cutoff_hz < sample_rate / 2.0):
        raise ValueError(
            f"cutoff {cutoff_hz} Hz must lie in (0, Nyquist={sample_rate / 2.0} Hz)"
        )
    # pre-warp the analog cutoff so the digital -3 dB point lands exactly
    wc = 2.0 * sample_rate * math.tan(math.pi * cutoff_hz / sample_rate)
    poles = butterworth_poles(order) * wc

    sections: List[np.ndarray] = []
    # pair complex-conjugate poles; Butterworth poles come in conjugate
    # pairs except for the single real pole of odd orders.
    remaining = [p for p in poles if p.imag > 1e-9]
    real_poles = [p for p in poles if abs(p.imag) <= 1e-9]
    for p in remaining:
        # (s - p)(s - p*) = s^2 - 2 Re(p) s + |p|^2
        a = (abs(p) ** 2, -2.0 * p.real, 1.0)
        b = (abs(p) ** 2, 0.0, 0.0)  # unity DC gain per section
        sections.append(_bilinear_biquad(b, a, sample_rate))
    for p in real_poles:
        a = (-p.real, 1.0, 0.0)
        b = (-p.real, 0.0, 0.0)
        sections.append(_bilinear_biquad(b, a, sample_rate))
    return np.vstack(sections)


def sosfilt(sos: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply a second-order-section cascade (direct form II transposed).

    A thin, dependency-free implementation; each section is a short scalar
    recursion over the record.
    """
    sos = np.asarray(sos, dtype=float)
    if sos.ndim != 2 or sos.shape[1] != 6:
        raise ValueError("sos must have shape (n_sections, 6)")
    y = np.asarray(x, dtype=float).copy()
    for b0, b1, b2, a0, a1, a2 in sos:
        if abs(a0 - 1.0) > 1e-12:
            b0, b1, b2, a1, a2 = (c / a0 for c in (b0, b1, b2, a1, a2))
        z1 = 0.0
        z2 = 0.0
        out = np.empty_like(y)
        for i, xi in enumerate(y):
            yi = b0 * xi + z1
            z1 = b1 * xi - a1 * yi + z2
            z2 = b2 * xi - a2 * yi
            out[i] = yi
        y = out
    return y


def _sos_freq_response(sos: np.ndarray, freqs: np.ndarray, fs: float) -> np.ndarray:
    """Complex frequency response of an SOS cascade at ``freqs`` Hz."""
    z = np.exp(-2j * np.pi * np.asarray(freqs, dtype=float) / fs)
    h = np.ones_like(z, dtype=complex)
    for b0, b1, b2, _a0, a1, a2 in np.asarray(sos, dtype=float):
        num = b0 + b1 * z + b2 * z**2
        den = 1.0 + a1 * z + a2 * z**2
        h *= num / den
    return h


class ButterworthLowpass:
    """Digital Butterworth low-pass filter (the load-board LPF model).

    Two application modes are provided:

    * :meth:`apply` -- causal time-domain filtering through the biquad
      cascade (what real load-board hardware does).
    * :meth:`apply_fft` -- zero-phase frequency-domain filtering using the
      cascade's magnitude response.  Signature extraction only uses FFT
      magnitudes, so this mode is an exact stand-in where speed matters.
    """

    def __init__(self, order: int, cutoff_hz: float, sample_rate: float):
        self.order = int(order)
        self.cutoff_hz = float(cutoff_hz)
        self.sample_rate = float(sample_rate)
        self.sos = butterworth_sos(order, cutoff_hz, sample_rate)

    def frequency_response(self, freqs: np.ndarray) -> np.ndarray:
        """Complex response at the given frequencies (Hz)."""
        return _sos_freq_response(self.sos, freqs, self.sample_rate)

    def apply(self, wf: Waveform) -> Waveform:
        """Causal time-domain filtering."""
        if wf.sample_rate != self.sample_rate:
            raise ValueError(
                f"waveform rate {wf.sample_rate} != filter rate {self.sample_rate}"
            )
        return Waveform(sosfilt(self.sos, wf.samples), wf.sample_rate, wf.t0)

    def apply_fft(self, wf: Waveform) -> Waveform:
        """Zero-phase filtering by magnitude response in the FFT domain."""
        if wf.sample_rate != self.sample_rate:
            raise ValueError(
                f"waveform rate {wf.sample_rate} != filter rate {self.sample_rate}"
            )
        return Waveform(self.apply_fft_matrix(wf.samples), wf.sample_rate, wf.t0)

    def apply_fft_matrix(self, samples: np.ndarray) -> np.ndarray:
        """Zero-phase filtering of a ``(..., n)`` batch along the last axis.

        One ``rfft`` / ``irfft`` pair over the whole batch; row ``i`` of
        the result is bit-identical to ``apply_fft`` on row ``i`` alone
        (samples are assumed to be at the filter's ``sample_rate``).
        """
        samples = np.asarray(samples, dtype=float)
        n = samples.shape[-1]
        spec = np.fft.rfft(samples, axis=-1)
        freqs = np.fft.rfftfreq(n, d=1.0 / self.sample_rate)
        mag = np.abs(self.frequency_response(freqs))
        return np.fft.irfft(spec * mag, n=n, axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ButterworthLowpass(order={self.order}, "
            f"cutoff={self.cutoff_hz:.4g} Hz, fs={self.sample_rate:.4g} Hz)"
        )


class FIRLowpass:
    """Linear-phase windowed-sinc FIR low-pass filter.

    Provided as an alternative load-board filter implementation; its
    linear phase makes time-domain signatures easier to align, at the cost
    of group delay.
    """

    def __init__(self, n_taps: int, cutoff_hz: float, sample_rate: float):
        if n_taps < 3 or n_taps % 2 == 0:
            raise ValueError("n_taps must be an odd integer >= 3")
        if not (0.0 < cutoff_hz < sample_rate / 2.0):
            raise ValueError("cutoff must lie in (0, Nyquist)")
        self.n_taps = int(n_taps)
        self.cutoff_hz = float(cutoff_hz)
        self.sample_rate = float(sample_rate)
        m = np.arange(n_taps) - (n_taps - 1) / 2.0
        fc = cutoff_hz / sample_rate
        taps = 2.0 * fc * np.sinc(2.0 * fc * m)
        # Hamming window to control sidelobes
        taps *= 0.54 - 0.46 * np.cos(2.0 * np.pi * np.arange(n_taps) / (n_taps - 1))
        self.taps = taps / np.sum(taps)  # unity DC gain

    @property
    def group_delay_samples(self) -> float:
        return (self.n_taps - 1) / 2.0

    def apply(self, wf: Waveform) -> Waveform:
        if wf.sample_rate != self.sample_rate:
            raise ValueError(
                f"waveform rate {wf.sample_rate} != filter rate {self.sample_rate}"
            )
        out = np.convolve(wf.samples, self.taps, mode="same")
        return Waveform(out, wf.sample_rate, wf.t0)

    def frequency_response(self, freqs: np.ndarray) -> np.ndarray:
        z = np.exp(-2j * np.pi * np.asarray(freqs, dtype=float) / self.sample_rate)
        powers = np.vander(z, N=self.n_taps, increasing=True)
        return powers @ self.taps
