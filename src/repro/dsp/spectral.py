"""Spectral analysis: windows, amplitude spectra, FFT-magnitude signatures.

Section 2.1 of the paper removes the phase sensitivity of the signature
path by *"taking the FFT of the signature, and considering the magnitude of
the resulting FFT spectrum as the new signature"*.
:func:`fft_magnitude_signature` implements exactly that transformation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dsp.units import db20, watts_to_dbm
from repro.dsp.waveform import Waveform

__all__ = [
    "window",
    "Spectrum",
    "amplitude_spectrum",
    "fft_magnitude_signature",
    "fft_magnitude_signature_matrix",
    "tone_amplitude",
    "tone_power_dbm",
]

_WINDOWS = ("rect", "hann", "hamming", "blackman", "flattop")

# Flat-top coefficients (symmetric, amplitude-accurate for tone measurement)
_FLATTOP = (0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368)


def window(kind: str, n: int) -> np.ndarray:
    """Return an ``n``-point window of the given kind.

    Supported kinds: ``rect``, ``hann``, ``hamming``, ``blackman``,
    ``flattop``.  Windows are periodic-symmetric and not normalized; use
    the coherent gain (mean of the window) to correct tone amplitudes.
    """
    if kind not in _WINDOWS:
        raise ValueError(f"unknown window {kind!r}; choose from {_WINDOWS}")
    if n < 1:
        raise ValueError("window length must be >= 1")
    if kind == "rect" or n == 1:
        return np.ones(n)
    k = np.arange(n)
    x = 2.0 * np.pi * k / n
    if kind == "hann":
        return 0.5 - 0.5 * np.cos(x)
    if kind == "hamming":
        return 0.54 - 0.46 * np.cos(x)
    if kind == "blackman":
        return 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2 * x)
    # flattop
    a0, a1, a2, a3, a4 = _FLATTOP
    return (
        a0
        - a1 * np.cos(x)
        + a2 * np.cos(2 * x)
        - a3 * np.cos(3 * x)
        + a4 * np.cos(4 * x)
    )


@dataclass(frozen=True)
class Spectrum:
    """A single-sided amplitude spectrum.

    ``amplitudes[k]`` is the peak amplitude (volts) attributed to
    ``freqs[k]``; a pure full-scale sine shows up as its peak amplitude in
    the bin nearest its frequency (given a coherent record or an
    amplitude-flat window).

    lint-ranges: amplitudes=[0, inf] resolution_hz=[0, inf]
    """

    freqs: np.ndarray
    amplitudes: np.ndarray
    resolution_hz: float

    def __post_init__(self):
        if len(self.freqs) != len(self.amplitudes):
            raise ValueError("freqs and amplitudes must have equal length")

    def __len__(self) -> int:
        return len(self.freqs)

    def bin_of(self, frequency: float) -> int:
        """Index of the bin nearest ``frequency``."""
        return int(np.argmin(np.abs(self.freqs - frequency)))

    def amplitude_at(self, frequency: float, search_bins: int = 1) -> float:
        """Peak amplitude near ``frequency``.

        Searches ``+/- search_bins`` around the nearest bin to tolerate
        slight incoherence between record length and tone frequency.
        """
        k = self.bin_of(frequency)
        lo = max(0, k - search_bins)
        hi = min(len(self), k + search_bins + 1)
        return float(np.max(self.amplitudes[lo:hi]))

    def power_dbm_at(
        self, frequency: float, impedance: float = 50.0, search_bins: int = 1
    ) -> float:
        """Power (dBm into ``impedance``) of the tone near ``frequency``."""
        a = self.amplitude_at(frequency, search_bins)
        if a <= 0.0:
            return -math.inf
        watts = a**2 / (2.0 * impedance)
        return watts_to_dbm(watts)

    def noise_floor(self, exclude_bins: int = 0) -> float:
        """Median bin amplitude, a robust noise-floor estimate.

        ``exclude_bins`` low-frequency bins are skipped (DC and stimulus
        energy usually live there).
        """
        amps = self.amplitudes[exclude_bins:]
        if len(amps) == 0:
            raise ValueError("no bins left after exclusion")
        return float(np.median(amps))


def amplitude_spectrum(wf: Waveform, window_kind: str = "rect") -> Spectrum:
    """Single-sided amplitude spectrum of a waveform.

    Scaled so a sine of peak amplitude ``A`` appears as ``A`` in its bin
    (after coherent-gain correction for the chosen window).
    """
    n = len(wf)
    if n < 2:
        raise ValueError("need at least 2 samples for a spectrum")
    w = window(window_kind, n)
    coherent_gain = float(np.mean(w))
    spec = np.fft.rfft(wf.samples * w)
    amps = np.abs(spec) * 2.0 / (n * coherent_gain)
    amps[0] /= 2.0  # DC bin is not doubled
    if n % 2 == 0 and len(amps) > 1:
        amps[-1] /= 2.0  # Nyquist bin is not doubled either
    freqs = np.fft.rfftfreq(n, d=wf.dt)
    return Spectrum(freqs=freqs, amplitudes=amps, resolution_hz=wf.sample_rate / n)


def fft_magnitude_signature(
    wf: Waveform,
    n_bins: int | None = None,
    window_kind: str = "rect",
    log_scale: bool = False,
    floor: float = 1e-12,
) -> np.ndarray:
    """The paper's phase-robust signature: FFT magnitudes of the response.

    Parameters
    ----------
    wf:
        Captured baseband response.
    n_bins:
        Keep only the first ``n_bins`` bins (low-frequency part); ``None``
        keeps the full single-sided spectrum.
    window_kind:
        Analysis window.
    log_scale:
        If true, return ``20 log10(|X| + floor)`` -- useful for regression
        features because spec errors are naturally expressed in dB.
    floor:
        Small constant preventing ``log(0)``.

    lint-ranges: floor=[1e-12, 1e-3]
    """
    spec = amplitude_spectrum(wf, window_kind)
    mags = spec.amplitudes
    if n_bins is not None:
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        mags = mags[:n_bins]
    if log_scale:
        return db20(mags + floor)
    return mags.copy()


def fft_magnitude_signature_matrix(
    samples: np.ndarray,
    n_bins: int | None = None,
    window_kind: str = "rect",
    log_scale: bool = False,
    floor: float = 1e-12,
) -> np.ndarray:
    """Batched :func:`fft_magnitude_signature` over ``(..., n)`` records.

    One ``rfft`` call over the whole batch; row ``i`` of the result is
    bit-identical to :func:`fft_magnitude_signature` on a waveform holding
    row ``i`` alone (the sample rate only affects bin *frequencies*, never
    the magnitude signature, so it is not needed here).
    """
    samples = np.asarray(samples, dtype=float)
    n = samples.shape[-1]
    if n < 2:
        raise ValueError("need at least 2 samples for a spectrum")
    w = window(window_kind, n)
    coherent_gain = float(np.mean(w))
    spec = np.fft.rfft(samples * w, axis=-1)
    amps = np.abs(spec) * 2.0 / (n * coherent_gain)
    amps[..., 0] /= 2.0  # DC bin is not doubled
    if n % 2 == 0 and amps.shape[-1] > 1:
        amps[..., -1] /= 2.0  # Nyquist bin is not doubled either
    if n_bins is not None:
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        amps = amps[..., :n_bins]
    if log_scale:
        return db20(amps + floor)
    return amps


def tone_amplitude(wf: Waveform, frequency: float, window_kind: str = "flattop") -> float:
    """Peak amplitude of the tone nearest ``frequency`` in the record."""
    spec = amplitude_spectrum(wf, window_kind)
    return spec.amplitude_at(frequency, search_bins=2)


def tone_power_dbm(
    wf: Waveform, frequency: float, impedance: float = 50.0, window_kind: str = "flattop"
) -> float:
    """Power in dBm of the tone nearest ``frequency``."""
    spec = amplitude_spectrum(wf, window_kind)
    return spec.power_dbm_at(frequency, impedance=impedance, search_bins=2)
