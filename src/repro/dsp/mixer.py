"""Behavioral RF mixer with harmonic cross products.

Section 4.1 of the paper: *"The mixer was modeled to generate cross
products of the RF and LO signals and their second and third harmonics."*

:class:`Mixer` implements exactly that model: the output is a weighted sum
of ``rf^m * lo^n`` cross products for ``m, n`` in 1..3, with the fundamental
``rf * lo`` product carrying the conversion gain.  Raising the RF/LO records
to integer powers in the time domain generates the corresponding harmonic
content automatically (``sin^2`` contains the 2nd harmonic, ``sin^3`` the
3rd), so the single table of coefficients covers both harmonics and
intermodulation between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = ["MixerHarmonics", "Mixer"]


@dataclass(frozen=True)
class MixerHarmonics:
    """Cross-product coefficient table for a behavioral mixer.

    ``coeffs[(m, n)]`` scales the ``rf^m * lo^n`` product.  The paper's
    model uses the fundamental plus second and third harmonics of both
    ports, i.e. ``m, n`` in ``{1, 2, 3}``.  Coefficients are relative to
    the fundamental ``(1, 1)`` product, which is fixed at 1.0 before the
    overall conversion gain is applied.
    """

    coeffs: Dict[Tuple[int, int], float] = field(
        default_factory=lambda: {
            (1, 1): 1.0,
            (2, 1): 0.05,
            (1, 2): 0.05,
            (2, 2): 0.01,
            (3, 1): 0.02,
            (1, 3): 0.02,
            (3, 3): 0.002,
        }
    )

    def __post_init__(self):
        for (m, n), c in self.coeffs.items():
            if not (1 <= m <= 3 and 1 <= n <= 3):
                raise ValueError(f"harmonic orders must be in 1..3, got ({m}, {n})")
            if not np.isfinite(c):
                raise ValueError(f"coefficient for ({m}, {n}) is not finite")
        if (1, 1) not in self.coeffs:
            raise ValueError("fundamental (1, 1) product must be present")

    @classmethod
    def ideal(cls) -> "MixerHarmonics":
        """A perfect multiplier: only the (1, 1) product."""
        return cls({(1, 1): 1.0})

    @classmethod
    def paper_model(cls) -> "MixerHarmonics":
        """The default table matching the paper's description."""
        return cls()


class Mixer:
    """Behavioral double-port mixer.

    Parameters
    ----------
    conversion_gain:
        Linear voltage scale applied to the whole output (a passive diode
        mixer has conversion *loss*, i.e. a value below 1).
    harmonics:
        Cross-product table; defaults to the paper's fundamental + 2nd/3rd
        harmonic model.
    """

    def __init__(
        self,
        conversion_gain: float = 0.5,
        harmonics: MixerHarmonics | None = None,
    ):
        if not (conversion_gain > 0):
            raise ValueError("conversion_gain must be positive")
        self.conversion_gain = float(conversion_gain)
        self.harmonics = harmonics if harmonics is not None else MixerHarmonics()

    def mix(self, rf: Waveform, lo: Waveform) -> Waveform:
        """Multiply the RF and LO records through the cross-product table."""
        if rf.sample_rate != lo.sample_rate:
            raise ValueError(
                f"RF rate {rf.sample_rate} != LO rate {lo.sample_rate}"
            )
        if len(rf) != len(lo):
            raise ValueError(f"RF length {len(rf)} != LO length {len(lo)}")
        x = rf.samples
        l = lo.samples
        # precompute the needed powers once
        max_m = max(m for m, _ in self.harmonics.coeffs)
        max_n = max(n for _, n in self.harmonics.coeffs)
        x_pows = {1: x}
        l_pows = {1: l}
        for p in range(2, max_m + 1):
            x_pows[p] = x_pows[p - 1] * x
        for p in range(2, max_n + 1):
            l_pows[p] = l_pows[p - 1] * l
        out = np.zeros_like(x)
        for (m, n), c in self.harmonics.coeffs.items():
            out += c * x_pows[m] * l_pows[n]
        return Waveform(self.conversion_gain * out, rf.sample_rate, rf.t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Mixer(gain={self.conversion_gain:.3g}, "
            f"products={sorted(self.harmonics.coeffs)})"
        )
