"""Log/linear unit conversions: the single designated dB-math module.

Every dB <-> linear conversion in the library goes through these helpers.
The paper's specs (Eqs. 6-10) are all log-domain -- gain in dB, IIP3 in
dBm, NF in dB -- while waveforms, noise factors, and voltage gains are
linear, and silently mixing the two domains is the framework's #1
numerical foot-gun.  Centralising the conversions makes the domain
crossing explicit at every call site and lets the signature-lint
``units`` rules (:mod:`repro.analysis.units`) flag any inline
``10*log10`` / ``10**(x/10)`` arithmetic elsewhere in the tree.

Conventions
-----------
* ``db`` / ``undb`` convert **power** ratios (factor 10).
* ``db20`` / ``undb20`` convert **amplitude** (voltage) ratios
  (factor 20, valid for equal source/load impedance).
* ``watts_to_dbm`` / ``dbm_to_watts`` convert absolute power against the
  1 mW reference.

All helpers accept a python float or a numpy array and return the same
kind.  Scalar ``watts_to_dbm`` maps non-positive power to ``-inf``
(an empty bin has no power, not an error); the ratio converters follow
``log10`` semantics and raise on non-positive scalar input.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "db",
    "undb",
    "db20",
    "undb20",
    "watts_to_dbm",
    "dbm_to_watts",
]

FloatOrArray = Union[float, np.ndarray]

# This module is the designated home of raw dB arithmetic, so the
# inline-conversion lint rule is disabled file-wide via the per-line
# markers below rather than by special-casing paths in the rule itself.


def db(ratio: FloatOrArray) -> FloatOrArray:
    """Power ratio (linear) to decibels: ``10 log10(ratio)``.

    lint-ranges: ratio=[1e-30, 1e30]
    lint-float32-budget: 1e-3
    """
    if isinstance(ratio, np.ndarray):
        return 10.0 * np.log10(ratio)  # repro-lint: disable=units-inline-db-conversion -- canonical definition
    return 10.0 * math.log10(ratio)  # repro-lint: disable=units-inline-db-conversion -- canonical definition


def undb(value_db: FloatOrArray) -> FloatOrArray:
    """Decibels to power ratio (linear): ``10**(value_db / 10)``.

    lint-ranges: value_db=[-60, 60]
    lint-float32-budget: 1e1
    """
    return 10.0 ** (value_db / 10.0)  # repro-lint: disable=units-inline-db-conversion -- canonical definition


def db20(ratio: FloatOrArray) -> FloatOrArray:
    """Amplitude ratio (linear) to decibels: ``20 log10(ratio)``.

    lint-ranges: ratio=[1e-30, 1e30]
    lint-float32-budget: 1e-3
    """
    if isinstance(ratio, np.ndarray):
        return 20.0 * np.log10(ratio)  # repro-lint: disable=units-inline-db-conversion -- canonical definition
    return 20.0 * math.log10(ratio)  # repro-lint: disable=units-inline-db-conversion -- canonical definition


def undb20(value_db: FloatOrArray) -> FloatOrArray:
    """Decibels to amplitude ratio (linear): ``10**(value_db / 20)``.

    lint-ranges: value_db=[-120, 120]
    lint-float32-budget: 1e1
    """
    return 10.0 ** (value_db / 20.0)  # repro-lint: disable=units-inline-db-conversion -- canonical definition


def watts_to_dbm(watts: FloatOrArray) -> FloatOrArray:
    """Absolute power in watts to dBm (``-inf`` for non-positive input).

    A zero-power bin has no power, not an error, so the array path maps
    zeros to ``-inf`` inside a local ``errstate`` -- the documented
    sentinel survives the test suite's FP sanitizer
    (:mod:`repro.analysis.sanitizer`), which otherwise raises on any
    ``log10(0)``.

    lint-ranges: watts=[0, 10]
    """
    if isinstance(watts, np.ndarray):
        with np.errstate(divide="ignore"):
            return db(watts) + 30.0
    if watts <= 0.0:
        return -math.inf
    return db(watts) + 30.0


def dbm_to_watts(power_dbm: FloatOrArray) -> FloatOrArray:
    """Absolute power in dBm to watts.

    lint-ranges: power_dbm=[-120, 40]
    lint-float32-budget: 1e-2
    """
    return undb(power_dbm - 30.0)
