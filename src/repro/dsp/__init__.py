"""Signal-processing substrate for the signature-test framework.

This package provides the low-level signal machinery that the load board,
instruments and experiments are built from:

* :mod:`repro.dsp.waveform` -- sampled-waveform container and PWL stimuli.
* :mod:`repro.dsp.sources` -- tones, two-tone sets, chirps, noise records.
* :mod:`repro.dsp.filters` -- from-scratch Butterworth/FIR design and
  application.
* :mod:`repro.dsp.mixer` -- behavioral RF mixer with harmonic cross products.
* :mod:`repro.dsp.spectral` -- windows, spectra and FFT-magnitude signatures.
* :mod:`repro.dsp.units` -- the designated dB <-> linear conversion
  helpers (all log-domain arithmetic lives here; enforced by
  :mod:`repro.analysis.units`).
* :mod:`repro.dsp.noise` -- additive noise, quantization and jitter models.
* :mod:`repro.dsp.passband` -- brute-force passband simulator used to
  cross-validate the fast envelope engine in
  :mod:`repro.loadboard.signature_path`.
"""

from repro.dsp.waveform import Waveform, PiecewiseLinearStimulus
from repro.dsp.sources import (
    tone,
    two_tone,
    chirp,
    white_noise,
    silence,
    dc,
)
from repro.dsp.filters import (
    ButterworthLowpass,
    FIRLowpass,
    butterworth_poles,
    butterworth_sos,
)
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.spectral import (
    Spectrum,
    amplitude_spectrum,
    fft_magnitude_signature,
    tone_amplitude,
    window,
)
from repro.dsp.noise import (
    add_awgn,
    quantize,
    sample_jitter,
)
from repro.dsp.units import (
    db,
    undb,
    db20,
    undb20,
    watts_to_dbm,
    dbm_to_watts,
)

__all__ = [
    "Waveform",
    "PiecewiseLinearStimulus",
    "tone",
    "two_tone",
    "chirp",
    "white_noise",
    "silence",
    "dc",
    "ButterworthLowpass",
    "FIRLowpass",
    "butterworth_poles",
    "butterworth_sos",
    "Mixer",
    "MixerHarmonics",
    "Spectrum",
    "amplitude_spectrum",
    "fft_magnitude_signature",
    "tone_amplitude",
    "window",
    "add_awgn",
    "quantize",
    "sample_jitter",
    "db",
    "undb",
    "db20",
    "undb20",
    "watts_to_dbm",
    "dbm_to_watts",
]
