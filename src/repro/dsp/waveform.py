"""Sampled waveforms and piecewise-linear (PWL) test stimuli.

The :class:`Waveform` class is the common currency of the whole framework:
arbitrary waveform generators emit one, mixers and DUT models transform one
into another, and digitizers capture one.  A waveform is simply a uniformly
sampled real-valued record with an associated sample rate.

:class:`PiecewiseLinearStimulus` implements the stimulus representation the
paper optimizes (Section 3.1): a list of breakpoint voltages on a fixed time
grid, encoded as a flat "genetic string" for the genetic optimizer.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.dsp.units import watts_to_dbm

__all__ = ["Waveform", "PiecewiseLinearStimulus"]

#: Reference impedance (ohms) used for all power <-> voltage conversions.
REFERENCE_IMPEDANCE = 50.0


class Waveform:
    """A uniformly sampled real-valued signal.

    Parameters
    ----------
    samples:
        Sequence of sample values (volts by convention).
    sample_rate:
        Samples per second; must be positive.
    t0:
        Time of the first sample in seconds (default 0).
    """

    __slots__ = ("samples", "sample_rate", "t0")

    def __init__(self, samples: Iterable[float], sample_rate: float, t0: float = 0.0):
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
        if not (sample_rate > 0):
            raise ValueError(f"sample_rate must be positive, got {sample_rate}")
        self.samples = samples
        self.sample_rate = float(sample_rate)
        self.t0 = float(t0)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def n(self) -> int:
        """Number of samples."""
        return len(self.samples)

    @property
    def dt(self) -> float:
        """Sample spacing in seconds."""
        return 1.0 / self.sample_rate

    @property
    def duration(self) -> float:
        """Record length in seconds (n / fs)."""
        return len(self.samples) / self.sample_rate

    def times(self) -> np.ndarray:
        """Sample timestamps in seconds."""
        return self.t0 + np.arange(len(self.samples)) / self.sample_rate

    def copy(self) -> "Waveform":
        return Waveform(self.samples.copy(), self.sample_rate, self.t0)

    # ------------------------------------------------------------------
    # arithmetic: waveforms combine sample-wise; scalars broadcast
    # ------------------------------------------------------------------
    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, Waveform):
            if other.sample_rate != self.sample_rate:
                raise ValueError(
                    "sample-rate mismatch: "
                    f"{self.sample_rate} vs {other.sample_rate}"
                )
            if len(other) != len(self):
                raise ValueError(
                    f"length mismatch: {len(self)} vs {len(other)}"
                )
            return other.samples
        return np.asarray(other, dtype=float)

    def __add__(self, other) -> "Waveform":
        return Waveform(self.samples + self._coerce(other), self.sample_rate, self.t0)

    __radd__ = __add__

    def __sub__(self, other) -> "Waveform":
        return Waveform(self.samples - self._coerce(other), self.sample_rate, self.t0)

    def __rsub__(self, other) -> "Waveform":
        return Waveform(self._coerce(other) - self.samples, self.sample_rate, self.t0)

    def __mul__(self, other) -> "Waveform":
        return Waveform(self.samples * self._coerce(other), self.sample_rate, self.t0)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Waveform":
        return Waveform(self.samples / self._coerce(other), self.sample_rate, self.t0)

    def __neg__(self) -> "Waveform":
        return Waveform(-self.samples, self.sample_rate, self.t0)

    def map(self, func) -> "Waveform":
        """Apply a memoryless function to every sample."""
        return Waveform(func(self.samples), self.sample_rate, self.t0)

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def rms(self) -> float:
        """Root-mean-square value of the record."""
        return float(np.sqrt(np.mean(self.samples**2)))

    def peak(self) -> float:
        """Maximum absolute sample value."""
        return float(np.max(np.abs(self.samples))) if len(self) else 0.0

    def mean_power_watts(self, impedance: float = REFERENCE_IMPEDANCE) -> float:
        """Mean dissipated power into ``impedance`` ohms."""
        return self.rms() ** 2 / impedance

    def mean_power_dbm(self, impedance: float = REFERENCE_IMPEDANCE) -> float:
        """Mean power in dBm into ``impedance`` ohms."""
        watts = self.mean_power_watts(impedance)
        if watts <= 0.0:
            return -math.inf
        return watts_to_dbm(watts)

    def energy(self) -> float:
        """Sum of squared samples times dt (volt^2 * seconds)."""
        return float(np.sum(self.samples**2)) * self.dt

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def slice_time(self, t_start: float, t_stop: float) -> "Waveform":
        """Extract the samples whose timestamps lie in ``[t_start, t_stop)``."""
        t = self.times()
        mask = (t >= t_start) & (t < t_stop)
        idx = np.nonzero(mask)[0]
        if len(idx) == 0:
            raise ValueError(
                f"time slice [{t_start}, {t_stop}) selects no samples"
            )
        return Waveform(self.samples[idx], self.sample_rate, t[idx[0]])

    def repeat(self, times: int) -> "Waveform":
        """Tile the record ``times`` times end to end."""
        if times < 1:
            raise ValueError("repeat count must be >= 1")
        return Waveform(np.tile(self.samples, times), self.sample_rate, self.t0)

    def resample(self, new_rate: float) -> "Waveform":
        """Linear-interpolation resampling to ``new_rate``.

        Adequate for the oversampled baseband signals used in this
        framework; spectrally exact resampling is not required because
        signature extraction windows the record anyway.
        """
        if not (new_rate > 0):
            raise ValueError("new_rate must be positive")
        if new_rate == self.sample_rate:
            return self.copy()
        old_t = self.times()
        n_new = max(1, int(round(self.duration * new_rate)))
        new_t = self.t0 + np.arange(n_new) / new_rate
        new_samples = np.interp(new_t, old_t, self.samples)
        return Waveform(new_samples, new_rate, self.t0)

    def pad_to(self, n: int) -> "Waveform":
        """Zero-pad the record to ``n`` samples (no-op if already longer)."""
        if n <= len(self):
            return self.copy()
        padded = np.zeros(n)
        padded[: len(self)] = self.samples
        return Waveform(padded, self.sample_rate, self.t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Waveform(n={len(self)}, fs={self.sample_rate:.6g} Hz, "
            f"duration={self.duration:.6g} s, rms={self.rms():.6g} V)"
        )


class PiecewiseLinearStimulus:
    """A baseband PWL test stimulus defined by breakpoint voltages.

    The paper encodes the stimulus as the breakpoints of a piecewise-linear
    waveform and lets a genetic algorithm move them (Section 3.1).  We fix
    the breakpoints on a uniform time grid spanning ``duration`` seconds so
    that the genetic string is simply the vector of breakpoint voltages.

    Parameters
    ----------
    levels:
        Breakpoint voltages.  ``len(levels) >= 2``.
    duration:
        Total stimulus duration in seconds.
    v_limit:
        Hard amplitude bound; levels are clipped into ``[-v_limit, v_limit]``
        which models the AWG full-scale range.
    """

    def __init__(
        self,
        levels: Sequence[float],
        duration: float,
        v_limit: float = 1.0,
    ):
        levels = np.asarray(levels, dtype=float)
        if levels.ndim != 1 or len(levels) < 2:
            raise ValueError("need at least two PWL breakpoint levels")
        if not np.all(np.isfinite(levels)):
            # np.clip passes NaN through, so catch it before it poisons
            # every later interpolation
            raise ValueError(
                "PWL breakpoint levels must be finite (got NaN or infinity)"
            )
        if not (duration > 0):
            raise ValueError("duration must be positive")
        if not (v_limit > 0):
            raise ValueError("v_limit must be positive")
        self.levels = np.clip(levels, -v_limit, v_limit)
        self.duration = float(duration)
        self.v_limit = float(v_limit)

    @property
    def n_breakpoints(self) -> int:
        return len(self.levels)

    def breakpoint_times(self) -> np.ndarray:
        """Times of the PWL breakpoints (uniform grid, inclusive of ends)."""
        return np.linspace(0.0, self.duration, len(self.levels))

    def to_waveform(self, sample_rate: float) -> Waveform:
        """Sample the PWL curve at ``sample_rate``."""
        if not (sample_rate > 0):
            raise ValueError("sample_rate must be positive")
        n = max(2, int(round(self.duration * sample_rate)))
        t = np.arange(n) / sample_rate
        samples = np.interp(t, self.breakpoint_times(), self.levels)
        return Waveform(samples, sample_rate)

    # ------------------------------------------------------------------
    # genetic-string encoding (Section 3.1: "Breakpoints of the PWL
    # stimulus are encoded as a genetic string")
    # ------------------------------------------------------------------
    def to_gene(self) -> np.ndarray:
        """Flatten to the genetic-string representation (levels only)."""
        return self.levels.copy()

    @classmethod
    def from_gene(
        cls,
        gene: Sequence[float],
        duration: float,
        v_limit: float = 1.0,
    ) -> "PiecewiseLinearStimulus":
        """Rebuild a stimulus from a genetic string (inverse of to_gene)."""
        return cls(np.asarray(gene, dtype=float), duration, v_limit)

    def perturbed(self, rng: np.random.Generator, scale: float) -> "PiecewiseLinearStimulus":
        """Return a copy with gaussian perturbation of the levels."""
        noise = rng.normal(0.0, scale, size=len(self.levels))
        return PiecewiseLinearStimulus(
            self.levels + noise, self.duration, self.v_limit
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PiecewiseLinearStimulus(n={self.n_breakpoints}, "
            f"duration={self.duration:.3g} s, v_limit={self.v_limit:.3g} V)"
        )
