"""The paper's simulation experiment (Section 4.1, Figures 7-10).

Pipeline:

1. Optimize a 16-breakpoint PWL stimulus for the 900 MHz LNA family with
   the genetic algorithm (five generations, as in the paper) -- Figure 7.
2. Monte-Carlo 100 training + 25 validation LNA instances with all ten
   process parameters uniform within +/- 20 %.
3. For every device, compute the *direct-simulation* specs (the paper's
   x-axes) and capture the signature through the load board with 1 mV
   gaussian measurement noise.
4. Fit the calibration relationships on the training set and predict the
   validation devices' specs from their signatures alone.
5. Report std(err) per spec -- the numbers under Figures 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.circuits.device import SpecSet
from repro.circuits.lna import LNA900, lna_parameter_space
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import (
    SignaturePathConfig,
    SignatureTestBoard,
    simulation_config,
)
from repro.regression.metrics import r2_score, rmse, std_err
from repro.runtime.calibration import (
    CalibrationModel,
    CalibrationSession,
    measure_signatures,
)
from repro.runtime.executor import Executor, get_executor
from repro.testgen.genetic import GAConfig
from repro.testgen.optimizer import OptimizationResult, SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding

__all__ = ["SimulationExperimentResult", "run_simulation_experiment"]

#: paper-reported std(err) values for Figures 8-10
PAPER_STD_ERR = {"gain_db": 0.06, "iip3_dbm": 0.034, "nf_db": 0.34}


@dataclass
class SimulationExperimentResult:
    """Everything Figures 7-10 need."""

    stimulus: PiecewiseLinearStimulus
    optimization: Optional[OptimizationResult]
    calibration: CalibrationModel
    #: validation-device spec matrices, columns (gain_db, nf_db, iip3_dbm)
    true_specs: np.ndarray
    predicted_specs: np.ndarray
    train_true_specs: np.ndarray
    #: raw signature matrices, for ablation studies over the regressor
    train_signatures: np.ndarray = None
    val_signatures: np.ndarray = None
    std_errors: Dict[str, float] = field(default_factory=dict)
    rms_errors: Dict[str, float] = field(default_factory=dict)
    r2: Dict[str, float] = field(default_factory=dict)

    def scatter(self, spec: str) -> Tuple[np.ndarray, np.ndarray]:
        """(direct simulation, predicted) series for one spec's figure."""
        j = SpecSet.NAMES.index(spec)
        return self.true_specs[:, j], self.predicted_specs[:, j]

    def summary(self) -> str:
        lines = []
        for name in SpecSet.NAMES:
            lines.append(
                f"{name}: std(err) = {self.std_errors[name]:.4f} "
                f"(paper {PAPER_STD_ERR[name]:.3f}), "
                f"RMS = {self.rms_errors[name]:.4f}, "
                f"R^2 = {self.r2[name]:.4f} "
                f"[model: {self.calibration.chosen[name]}]"
            )
        return "\n".join(lines)


_CACHE: Dict[tuple, SimulationExperimentResult] = {}


def run_simulation_experiment(
    seed: int = 2002,
    n_train: int = 100,
    n_val: int = 25,
    n_breakpoints: int = 16,
    ga_config: Optional[GAConfig] = None,
    stimulus: Union[PiecewiseLinearStimulus, str, None] = None,
    board_config: Optional[SignaturePathConfig] = None,
    noise_vrms: Optional[float] = None,
    use_cache: bool = True,
    executor: Optional[Union[Executor, str]] = None,
) -> SimulationExperimentResult:
    """Run (or fetch from cache) the full simulation experiment.

    Parameters
    ----------
    seed:
        Master seed; the run is fully reproducible.
    n_train, n_val:
        Training / validation device counts (paper: 100 / 25).
    n_breakpoints:
        PWL gene length.
    ga_config:
        Genetic-algorithm settings; default is the paper's 5 generations.
    stimulus:
        ``None`` runs the GA; a :class:`PiecewiseLinearStimulus` skips
        optimization (ablations); the string ``"ramp"``/``"flat"``/
        ``"random"`` selects an unoptimized baseline stimulus.
    board_config:
        Signature-path override (default: the paper's simulation setup).
    noise_vrms:
        Override the digitizer measurement noise (ablations).
    use_cache:
        Reuse results across benchmark processes within one session.
    executor:
        Batch backend (:mod:`repro.parallel`) for the GA fitness
        evaluations and the Monte-Carlo signature captures; ``None`` =
        serial.  Results are bit-identical across backends, so the
        executor is deliberately *not* part of the cache key.
    """
    cache_key = (
        seed,
        n_train,
        n_val,
        n_breakpoints,
        repr(ga_config),
        stimulus if isinstance(stimulus, (str, type(None))) else id(stimulus),
        repr(board_config),
        noise_vrms,
    )
    if use_cache and cache_key in _CACHE:
        return _CACHE[cache_key]

    rng = np.random.default_rng(seed)
    config = board_config if board_config is not None else simulation_config()
    if noise_vrms is not None:
        config.digitizer_noise_vrms = noise_vrms
    board = SignatureTestBoard(config)
    space = lna_parameter_space()
    encoding = StimulusEncoding(
        n_breakpoints=n_breakpoints, duration=config.capture_seconds, v_limit=0.4
    )

    # ------------------------------------------------------------------
    # stimulus (Figure 7)
    # ------------------------------------------------------------------
    optimization: Optional[OptimizationResult] = None
    if stimulus is None:
        optimizer = SignatureStimulusOptimizer(
            board_config=config,
            device_factory=LNA900,
            space=space,
            encoding=encoding,
            ga_config=ga_config if ga_config is not None else GAConfig(),
            rel_step=0.03,
            executor=get_executor(executor),
        )
        optimization = optimizer.optimize(rng)
        stim = optimization.stimulus
    elif isinstance(stimulus, str):
        stim = _baseline_stimulus(stimulus, encoding, rng)
    else:
        stim = stimulus

    # ------------------------------------------------------------------
    # Monte-Carlo devices
    # ------------------------------------------------------------------
    train_points = space.sample(rng, n_train)
    val_points = space.sample(rng, n_val)
    train_devices = [LNA900(space.to_dict(p)) for p in train_points]
    val_devices = [LNA900(space.to_dict(p)) for p in val_points]

    train_specs = np.vstack([d.specs().as_vector() for d in train_devices])
    val_specs = np.vstack([d.specs().as_vector() for d in val_devices])

    train_sigs = measure_signatures(board, stim, train_devices, rng, executor=executor)
    val_sigs = measure_signatures(board, stim, val_devices, rng, executor=executor)

    # ------------------------------------------------------------------
    # calibration + validation (Figures 8-10)
    # ------------------------------------------------------------------
    session = CalibrationSession()
    model = session.fit(train_sigs, train_specs, rng=rng)
    predicted = model.predict_matrix(val_sigs)

    std_errors = {}
    rms_errors = {}
    r2 = {}
    for j, name in enumerate(SpecSet.NAMES):
        std_errors[name] = std_err(val_specs[:, j], predicted[:, j])
        rms_errors[name] = rmse(val_specs[:, j], predicted[:, j])
        r2[name] = r2_score(val_specs[:, j], predicted[:, j])

    result = SimulationExperimentResult(
        stimulus=stim,
        optimization=optimization,
        calibration=model,
        true_specs=val_specs,
        predicted_specs=predicted,
        train_true_specs=train_specs,
        train_signatures=train_sigs,
        val_signatures=val_sigs,
        std_errors=std_errors,
        rms_errors=rms_errors,
        r2=r2,
    )
    if use_cache:
        _CACHE[cache_key] = result
    return result


def _baseline_stimulus(
    kind: str, encoding: StimulusEncoding, rng: np.random.Generator
) -> PiecewiseLinearStimulus:
    """Unoptimized reference stimuli for the ablation benchmarks."""
    n, v = encoding.n_breakpoints, encoding.v_limit
    t = np.linspace(0.0, 1.0, n)
    if kind == "ramp":
        levels = v * (2.0 * t - 1.0)
    elif kind == "flat":
        levels = np.full(n, 0.5 * v)
    elif kind == "random":
        levels = rng.uniform(-v, v, size=n)
    else:
        raise ValueError(f"unknown baseline stimulus {kind!r}")
    return PiecewiseLinearStimulus(levels, encoding.duration, v)
