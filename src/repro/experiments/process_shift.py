"""Lot-to-lot process shift: when does a calibration expire?

The paper calibrates once and produces thereafter, implicitly assuming
the process stays where the training lot sampled it.  Real fabs drift:
a later lot's parameter *means* move by a fraction of the within-lot
sigma.  This experiment quantifies the consequences:

* prediction errors on a shifted lot, with the original calibration;
* how much of the damage the signature outlier screen flags (a shifted
  lot should look suspicious *before* its predictions are trusted);
* full recovery after recalibrating on the shifted lot.

The machinery is the paper's own; only the Monte-Carlo sampling moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuits.device import SpecSet
from repro.circuits.lna import LNA900, lna_parameter_space
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.regression.metrics import rmse
from repro.runtime.calibration import CalibrationSession
from repro.runtime.outlier import SignatureOutlierScreen

__all__ = ["ProcessShiftResult", "shifted_space", "run_process_shift_experiment"]


def shifted_space(shift_fraction: float) -> ParameterSpace:
    """The LNA process with every parameter's mean moved.

    ``shift_fraction`` moves each nominal by that fraction of the
    parameter's own one-sigma band (a +0.5 shift is a solid lot-to-lot
    excursion; +1.5 is a process event).  Band widths stay the same.
    """
    base = lna_parameter_space()
    params = []
    for p in base:
        params.append(
            ProcessParameter(
                name=p.name,
                nominal=p.nominal * (1.0 + shift_fraction * p.fractional_std),
                rel_variation=p.rel_variation,
                distribution=p.distribution,
            )
        )
    return ParameterSpace(params)


@dataclass
class ProcessShiftResult:
    """Prediction quality before/after the lot shift and after recovery."""

    shift_fraction: float
    #: spec -> RMS error on an unshifted validation lot (the baseline)
    baseline_errors: Dict[str, float]
    #: spec -> RMS error on the shifted lot, original calibration
    shifted_errors: Dict[str, float]
    #: spec -> RMS error on the shifted lot after recalibration
    recalibrated_errors: Dict[str, float]
    #: fraction of shifted-lot devices the outlier screen flags
    outlier_flag_rate: float
    #: fraction of unshifted devices flagged (false-alarm reference)
    false_alarm_rate: float
    #: mean outlier score of the shifted lot -- a mean shift rarely makes
    #: individual devices implausible, but it raises the whole lot's
    #: score; lot-level drift detection watches this statistic
    mean_score_shifted: float = 0.0
    mean_score_baseline: float = 0.0

    def summary(self) -> str:
        lines = [
            f"process shift: {self.shift_fraction:+.1f} sigma on every mean",
            f"{'spec':>10s}  {'baseline':>9s}  {'shifted':>9s}  {'recal':>9s}",
        ]
        for name in SpecSet.NAMES:
            lines.append(
                f"{name:>10s}  {self.baseline_errors[name]:9.4f}  "
                f"{self.shifted_errors[name]:9.4f}  "
                f"{self.recalibrated_errors[name]:9.4f}"
            )
        lines.append(
            f"outlier screen flags {self.outlier_flag_rate:.0%} of the shifted "
            f"lot (false alarms {self.false_alarm_rate:.0%}); lot-level mean "
            f"score {self.mean_score_shifted:.2f} vs baseline "
            f"{self.mean_score_baseline:.2f}"
        )
        return "\n".join(lines)


_CACHE: Dict[tuple, ProcessShiftResult] = {}


def run_process_shift_experiment(
    seed: int = 77,
    shift_fraction: float = 1.0,
    n_train: int = 80,
    n_val: int = 30,
    stimulus=None,
    use_cache: bool = True,
) -> ProcessShiftResult:
    """Calibrate on the nominal lot, produce on a mean-shifted one.

    ``stimulus`` defaults to the main experiment's GA winner.
    """
    key = (seed, shift_fraction, n_train, n_val, id(stimulus) if stimulus is not None else None)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    if stimulus is None:
        from repro.experiments.lna_simulation import run_simulation_experiment

        stimulus = run_simulation_experiment().stimulus

    rng = np.random.default_rng(seed)
    board = SignatureTestBoard(simulation_config())
    lot_a = lna_parameter_space()
    lot_b = shifted_space(shift_fraction)

    def lot(space: ParameterSpace, n: int):
        points = space.sample(rng, n)
        devices = [LNA900(space.to_dict(p)) for p in points]
        specs = np.vstack([d.specs().as_vector() for d in devices])
        sigs = np.vstack([board.signature(d, stimulus, rng=rng) for d in devices])
        return specs, sigs

    train_specs, train_sigs = lot(lot_a, n_train)
    base_specs, base_sigs = lot(lot_a, n_val)
    shift_specs, shift_sigs = lot(lot_b, n_val)

    calibration = CalibrationSession().fit(train_sigs, train_specs, rng=rng)
    screen = SignatureOutlierScreen().fit(train_sigs)

    def errors(true, sigs, model) -> Dict[str, float]:
        pred = model.predict_matrix(sigs)
        return {
            name: rmse(true[:, j], pred[:, j])
            for j, name in enumerate(SpecSet.NAMES)
        }

    baseline = errors(base_specs, base_sigs, calibration)
    shifted = errors(shift_specs, shift_sigs, calibration)

    # recovery: recalibrate on a training lot drawn from the shifted process
    recal_specs, recal_sigs = lot(lot_b, n_train)
    recal_model = CalibrationSession().fit(recal_sigs, recal_specs, rng=rng)
    recal = errors(shift_specs, shift_sigs, recal_model)

    result = ProcessShiftResult(
        shift_fraction=shift_fraction,
        baseline_errors=baseline,
        shifted_errors=shifted,
        recalibrated_errors=recal,
        outlier_flag_rate=float(np.mean(screen.flag_batch(shift_sigs))),
        false_alarm_rate=float(np.mean(screen.flag_batch(base_sigs))),
        mean_score_shifted=float(np.mean(screen.score_batch(shift_sigs))),
        mean_score_baseline=float(np.mean(screen.score_batch(base_sigs))),
    )
    if use_cache:
        _CACHE[key] = result
    return result
