"""Experiment drivers reproducing the paper's evaluation (Section 4).

* :mod:`repro.experiments.lna_simulation` -- the simulation experiment:
  optimized stimulus (Figure 7) and predicted-vs-direct scatter for gain,
  IIP3 and NF (Figures 8-10).
* :mod:`repro.experiments.hardware` -- the RF2401 hardware experiment
  simulated end to end: 55 devices, 28 calibration / 27 validation,
  100 kHz LO offset, 1 MHz digitizer (Figures 12-13).
* :mod:`repro.experiments.phase_study` -- the Section 2.1 phase analysis
  (Equations 4-5): same-LO cancellation vs offset-LO FFT-magnitude
  robustness.

Experiment functions cache their results per argument set, because
several benchmarks report different slices of the same run.
"""

from repro.experiments.lna_simulation import (
    SimulationExperimentResult,
    run_simulation_experiment,
)
from repro.experiments.hardware import (
    HardwareExperimentResult,
    run_hardware_experiment,
)
from repro.experiments.phase_study import PhaseStudyResult, run_phase_study
from repro.experiments.process_shift import (
    ProcessShiftResult,
    run_process_shift_experiment,
    shifted_space,
)

__all__ = [
    "SimulationExperimentResult",
    "run_simulation_experiment",
    "HardwareExperimentResult",
    "run_hardware_experiment",
    "PhaseStudyResult",
    "run_phase_study",
    "ProcessShiftResult",
    "run_process_shift_experiment",
    "shifted_space",
]
