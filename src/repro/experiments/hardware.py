"""The paper's hardware experiment, simulated end to end (Section 4.2).

The paper built a 900 MHz front-end board around an RF Microdevices
RF2401 receiver IC and tested 55 devices: 28 to build the calibration
relationships, 27 for validation.  Since no simulation netlist was
available, the stimulus was optimized on a *behavioral model* of the LNA
-- this module does exactly the same.

What the "bench" adds over the clean simulation experiment, and why the
paper's hardware errors (0.16 dB gain, 0.13 dB IIP3) are a few times its
simulation errors:

* device specs are *measured* on conventional instruments, so the
  training targets themselves carry measurement error;
* socket/contact repeatability: every insertion sees a slightly
  different path gain, independently for the spec measurement and the
  signature capture;
* unknown path phase per insertion (the test-lead interconnect issue),
  handled by the 100 kHz LO offset + FFT-magnitude signature;
* only 28 calibration devices instead of 100.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.parameters import ParameterSpace, ProcessParameter
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.instruments.network_analyzer import GainAnalyzer
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.loadboard.signature_path import (
    SignaturePathConfig,
    SignatureTestBoard,
    hardware_config,
)
from repro.regression.metrics import r2_score, rmse, std_err
from repro.runtime.calibration import CalibrationModel, CalibrationSession
from repro.testgen.genetic import GAConfig
from repro.testgen.optimizer import SignatureStimulusOptimizer
from repro.testgen.pwl import StimulusEncoding

__all__ = [
    "HardwareExperimentResult",
    "run_hardware_experiment",
    "rf2401_family_space",
    "rf2401_device",
]

#: paper-reported RMS errors for Figures 12-13
PAPER_RMS_ERR = {"gain_db": 0.16, "iip3_dbm": 0.13}

#: specs the hardware experiment measures (the paper measured only these)
HW_SPEC_NAMES = ("gain_db", "iip3_dbm")


def rf2401_family_space() -> ParameterSpace:
    """Behavioral 'process space' of the RF2401 front-end family.

    Without a netlist the devices are characterized directly by their
    datasheet-level behavioral parameters; lot-to-lot spread is the
    variation band.
    """
    return ParameterSpace(
        [
            ProcessParameter("gain_db", nominal=15.0, rel_variation=0.08),
            ProcessParameter("nf_db", nominal=4.0, rel_variation=0.10),
            ProcessParameter("iip3_dbm", nominal=-8.0, rel_variation=0.10),
        ]
    )


def rf2401_device(params: Dict[str, float]) -> BehavioralAmplifier:
    """One front-end instance from behavioral parameters."""
    return BehavioralAmplifier(
        center_frequency=900e6,
        gain_db=params["gain_db"],
        nf_db=params["nf_db"],
        iip3_dbm=params["iip3_dbm"],
        iip2_dbm=params["iip3_dbm"] + 20.0,
    )


@dataclass
class HardwareExperimentResult:
    """Everything Figures 12-13 need."""

    stimulus: PiecewiseLinearStimulus
    calibration: CalibrationModel
    #: measured (ATE) and predicted specs for the validation devices,
    #: columns ordered as HW_SPEC_NAMES
    measured_specs: np.ndarray
    predicted_specs: np.ndarray
    rms_errors: Dict[str, float] = field(default_factory=dict)
    std_errors: Dict[str, float] = field(default_factory=dict)
    r2: Dict[str, float] = field(default_factory=dict)
    capture_seconds: float = 5e-3

    def scatter(self, spec: str) -> Tuple[np.ndarray, np.ndarray]:
        """(direct measurement, signature prediction) series for one spec."""
        j = HW_SPEC_NAMES.index(spec)
        return self.measured_specs[:, j], self.predicted_specs[:, j]

    def summary(self) -> str:
        lines = []
        for name in HW_SPEC_NAMES:
            lines.append(
                f"{name}: RMS err = {self.rms_errors[name]:.4f} "
                f"(paper {PAPER_RMS_ERR[name]:.2f}), "
                f"std(err) = {self.std_errors[name]:.4f}, "
                f"R^2 = {self.r2[name]:.4f} "
                f"[model: {self.calibration.chosen[name]}]"
            )
        return "\n".join(lines)


_CACHE: Dict[tuple, HardwareExperimentResult] = {}


def run_hardware_experiment(
    seed: int = 1955,
    n_calibration: int = 28,
    n_validation: int = 27,
    socket_sigma_db: float = 0.05,
    ga_config: Optional[GAConfig] = None,
    board_config: Optional[SignaturePathConfig] = None,
    use_cache: bool = True,
) -> HardwareExperimentResult:
    """Run (or fetch from cache) the simulated hardware experiment.

    Parameters
    ----------
    seed:
        Master seed.
    n_calibration, n_validation:
        Device split (paper: 28 / 27 out of 55).
    socket_sigma_db:
        1-sigma per-insertion contact-gain repeatability.
    ga_config:
        GA settings for the behavioral-model stimulus optimization;
        default is a reduced run (the 5 ms capture makes each fitness
        evaluation heavy).
    board_config:
        Signature-path override (default: the paper's hardware setup).
    """
    cache_key = (
        seed,
        n_calibration,
        n_validation,
        socket_sigma_db,
        repr(ga_config),
        repr(board_config),
    )
    if use_cache and cache_key in _CACHE:
        return _CACHE[cache_key]

    rng = np.random.default_rng(seed)
    config = board_config if board_config is not None else hardware_config()
    board = SignatureTestBoard(config)
    space = rf2401_family_space()
    encoding = StimulusEncoding(
        n_breakpoints=16, duration=config.capture_seconds, v_limit=0.4
    )

    # stimulus optimized on the behavioral model (no netlist available)
    optimizer = SignatureStimulusOptimizer(
        board_config=_deterministic(config),
        device_factory=rf2401_device,
        space=space,
        encoding=encoding,
        ga_config=(
            ga_config
            if ga_config is not None
            else GAConfig(population_size=10, generations=3)
        ),
        rel_step=0.03,
    )
    stimulus = optimizer.optimize(rng).stimulus

    # ------------------------------------------------------------------
    # the 55 devices and their bench measurements
    # ------------------------------------------------------------------
    n_total = n_calibration + n_validation
    points = space.sample(rng, n_total)
    devices = [rf2401_device(space.to_dict(p)) for p in points]

    gain_meter = GainAnalyzer(test_power_dbm=-35.0, repeatability_db=0.02)
    ip3_meter = SpectrumAnalyzer(tone_power_dbm=-28.0, repeatability_db=0.05)

    measured = np.empty((n_total, len(HW_SPEC_NAMES)))
    signatures = []
    for i, device in enumerate(devices):
        # conventional ATE insertion (its own socket contact)
        ate_view = _socket_view(device, rng, socket_sigma_db)
        measured[i, 0] = gain_meter.measure_gain_db(ate_view, rng=rng)
        measured[i, 1] = ip3_meter.measure_iip3_dbm(ate_view, rng=rng)
        # low-cost tester insertion (another socket contact, random phase)
        sig_view = _socket_view(device, rng, socket_sigma_db)
        signatures.append(board.signature(sig_view, stimulus, rng=rng))
    signatures = np.vstack(signatures)

    # ------------------------------------------------------------------
    # 28 calibration / 27 validation
    # ------------------------------------------------------------------
    cal = slice(0, n_calibration)
    val = slice(n_calibration, n_total)
    session = CalibrationSession(spec_names=HW_SPEC_NAMES)
    model = session.fit(signatures[cal], measured[cal], rng=rng)
    predicted = model.predict_matrix(signatures[val])

    rms_errors = {}
    std_errors = {}
    r2 = {}
    for j, name in enumerate(HW_SPEC_NAMES):
        rms_errors[name] = rmse(measured[val, j], predicted[:, j])
        std_errors[name] = std_err(measured[val, j], predicted[:, j])
        r2[name] = r2_score(measured[val, j], predicted[:, j])

    result = HardwareExperimentResult(
        stimulus=stimulus,
        calibration=model,
        measured_specs=measured[val],
        predicted_specs=predicted,
        rms_errors=rms_errors,
        std_errors=std_errors,
        r2=r2,
        capture_seconds=config.capture_seconds,
    )
    if use_cache:
        _CACHE[cache_key] = result
    return result


def _socket_view(
    device: BehavioralAmplifier,
    rng: np.random.Generator,
    sigma_db: float,
) -> BehavioralAmplifier:
    """The device as one insertion sees it: contact gain error applied."""
    if sigma_db <= 0.0:
        return device
    specs = device.specs()
    return device.with_specs(gain_db=specs.gain_db + rng.normal(0.0, sigma_db))


def _deterministic(config: SignaturePathConfig) -> SignaturePathConfig:
    """A copy of the path config suitable for noise-free sensitivity runs.

    The optimizer evaluates signatures without an rng, which already
    suppresses noise; the random path phase however *requires* an rng, so
    the optimization view pins the phase instead (magnitude signatures
    make the pinned value irrelevant).
    """
    from dataclasses import replace

    return replace(config, random_path_phase=False, path_phase_rad=0.0)
