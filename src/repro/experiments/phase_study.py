"""The Section 2.1 phase-robustness study (Equations 4-5, Figures 2-3).

Sweeps the signal-path phase mismatch ``phi`` and quantifies what each
signature style sees:

* **Same-LO, time-domain signature** (Figure 2): Equation 4 predicts the
  signature scales as ``cos(phi)`` and vanishes at odd multiples of
  pi/2 -- a quarter wavelength is 0.75 cm at 10 GHz, so this happens in
  real fixtures.
* **Offset-LO, FFT-magnitude signature** (Figure 3): Equation 5 shows the
  magnitude is independent of ``phi``.

The study reports, per phase, the signature's RMS level and its distance
from the ``phi = 0`` reference vector (what a calibration model trained
at one phase would see at another).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard

__all__ = ["PhaseStudyResult", "run_phase_study"]


@dataclass
class PhaseStudyResult:
    """Per-phase signature behaviour of the two configurations."""

    phases: np.ndarray
    #: same-LO time-domain signature RMS at each phase
    same_lo_rms: np.ndarray
    #: Equation 4 prediction: |cos(phi)| * (RMS at phi = 0)
    eq4_prediction: np.ndarray
    #: relative L2 distance of the same-LO time-domain signature from phi=0
    same_lo_distance: np.ndarray
    #: relative L2 distance of the offset-LO FFT-magnitude signature
    offset_fftmag_distance: np.ndarray

    def worst_case(self) -> Dict[str, float]:
        """Maximum signature drift of each style across the sweep."""
        return {
            "same_lo_time_domain": float(np.max(self.same_lo_distance)),
            "offset_lo_fft_magnitude": float(np.max(self.offset_fftmag_distance)),
        }

    def summary(self) -> str:
        wc = self.worst_case()
        lines = [
            "worst-case signature drift over path phase:",
            f"  same-LO time-domain signature:      {wc['same_lo_time_domain'] * 100:.1f} %",
            f"  offset-LO FFT-magnitude signature:  {wc['offset_lo_fft_magnitude'] * 100:.3f} %",
        ]
        null_rms = float(np.min(self.same_lo_rms))
        peak_rms = float(np.max(self.same_lo_rms))
        lines.append(
            f"  same-LO signature null depth: {null_rms:.2e} V rms "
            f"(peak {peak_rms:.3f} V rms) -- Equation 4 cancellation"
        )
        return "\n".join(lines)


def run_phase_study(
    seed: int = 7,
    n_phases: int = 17,
    lo_offset_hz: float = 100e3,
    ideal_mixers: bool = True,
) -> PhaseStudyResult:
    """Sweep the path phase through a full turn and compare signatures.

    Parameters
    ----------
    seed:
        Seeds the stimulus only; captures are noise-free so the phase
        effect is isolated.
    n_phases:
        Sweep points over [0, 2 pi].
    lo_offset_hz:
        LO offset of the modified (Figure 3) configuration.
    ideal_mixers:
        With ideal multipliers Equation 4 holds exactly; with the default
        harmonic-rich mixers small deviations appear (also physical).
    """
    rng = np.random.default_rng(seed)
    device = BehavioralAmplifier(
        center_frequency=900e6, gain_db=16.0, nf_db=2.0, iip3_dbm=3.0
    )
    mixer_kw = {}
    if ideal_mixers:
        mixer_kw = {
            "mixer1": Mixer(0.5, MixerHarmonics.ideal()),
            "mixer2": Mixer(0.5, MixerHarmonics.ideal()),
        }
    base = SignaturePathConfig(
        lo_offset_hz=0.0,
        lpf_cutoff_hz=450e3,
        digitizer_rate=1e6,
        digitizer_noise_vrms=0.0,
        digitizer_bits=None,
        capture_seconds=2e-3,
        include_device_noise=False,
        **mixer_kw,
    )
    stimulus = PiecewiseLinearStimulus(
        rng.uniform(-0.3, 0.3, 16), duration=base.capture_seconds, v_limit=0.4
    )

    phases = np.linspace(0.0, 2.0 * np.pi, n_phases)
    same_rms = np.empty(n_phases)
    same_dist = np.empty(n_phases)
    offset_dist = np.empty(n_phases)
    same_ref: Optional[np.ndarray] = None
    offset_ref: Optional[np.ndarray] = None

    for i, phi in enumerate(phases):
        same_cfg = replace(base, path_phase_rad=float(phi))
        same_board = SignatureTestBoard(same_cfg)
        td = same_board.time_signature(device, stimulus)
        same_rms[i] = float(np.sqrt(np.mean(td**2)))
        if same_ref is None:
            same_ref = td
        same_dist[i] = np.linalg.norm(td - same_ref) / np.linalg.norm(same_ref)

        off_cfg = replace(
            base, path_phase_rad=float(phi), lo_offset_hz=lo_offset_hz
        )
        off_board = SignatureTestBoard(off_cfg)
        mag = off_board.signature(device, stimulus)
        if offset_ref is None:
            offset_ref = mag
        offset_dist[i] = np.linalg.norm(mag - offset_ref) / np.linalg.norm(offset_ref)

    eq4 = np.abs(np.cos(phases)) * same_rms[0]
    return PhaseStudyResult(
        phases=phases,
        same_lo_rms=same_rms,
        eq4_prediction=eq4,
        same_lo_distance=same_dist,
        offset_fftmag_distance=offset_dist,
    )
