"""Statistical process parameters and Monte-Carlo sampling.

Section 4.1 of the paper varies resistor/capacitor values and the BJT model
parameters (Is, beta_f, V_af, r_b, i_kf) uniformly within +/- 20 % of their
nominals.  :class:`ParameterSpace` captures such a set of parameters with an
ordering, so parameter vectors, sensitivity matrices and Monte-Carlo draws
all agree on which column is which.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["ProcessParameter", "ParameterSpace", "uniform_percent"]


@dataclass(frozen=True)
class ProcessParameter:
    """One statistically varying circuit parameter.

    Attributes
    ----------
    name:
        Unique identifier (e.g. ``"beta_f"`` or ``"R_load"``).
    nominal:
        Nominal value.
    rel_variation:
        Half-width of the variation band as a fraction of nominal
        (0.2 means +/- 20 %).
    distribution:
        ``"uniform"`` (paper default) or ``"gaussian"``; gaussian draws use
        ``rel_variation * nominal / 3`` as sigma so the 3-sigma point
        coincides with the uniform band edge, and are truncated to the band.
    """

    name: str
    nominal: float
    rel_variation: float = 0.2
    distribution: str = "uniform"

    def __post_init__(self):
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if self.nominal == 0.0:
            raise ValueError(f"{self.name}: nominal must be non-zero")
        if not (0.0 <= self.rel_variation < 1.0):
            raise ValueError(
                f"{self.name}: rel_variation must be in [0, 1), got {self.rel_variation}"
            )
        if self.distribution not in ("uniform", "gaussian"):
            raise ValueError(
                f"{self.name}: unknown distribution {self.distribution!r}"
            )

    @property
    def fractional_std(self) -> float:
        """Standard deviation of the *fractional* deviation from nominal.

        ``rel_variation / sqrt(3)`` for the uniform distribution,
        ``rel_variation / 3`` for the (3-sigma-truncated) gaussian.
        Sensitivity analysis uses this to express perturbations in
        process-sigma units, so predicted spec errors come out directly
        in spec units.
        """
        if self.distribution == "uniform":
            return self.rel_variation / math.sqrt(3.0)
        return self.rel_variation / 3.0

    @property
    def lower(self) -> float:
        """Lower band edge."""
        return self.nominal - abs(self.nominal) * self.rel_variation

    @property
    def upper(self) -> float:
        """Upper band edge."""
        return self.nominal + abs(self.nominal) * self.rel_variation

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one value (or ``size`` values) from the distribution."""
        if self.distribution == "uniform":
            return rng.uniform(self.lower, self.upper, size=size)
        sigma = abs(self.nominal) * self.rel_variation / 3.0
        draw = rng.normal(self.nominal, sigma, size=size)
        return np.clip(draw, self.lower, self.upper)

    def clip(self, value: float) -> float:
        """Clamp a value into the variation band."""
        return float(min(max(value, self.lower), self.upper))


def uniform_percent(name: str, nominal: float, percent: float = 20.0) -> ProcessParameter:
    """Convenience constructor: uniform +/- ``percent`` % around nominal."""
    return ProcessParameter(name=name, nominal=nominal, rel_variation=percent / 100.0)


class ParameterSpace:
    """An ordered set of process parameters.

    The ordering fixes the meaning of parameter vectors everywhere in the
    framework: sensitivity-matrix columns, Monte-Carlo sample rows and
    perturbation vectors all follow :meth:`names`.
    """

    def __init__(self, parameters: Iterable[ProcessParameter]):
        params = list(parameters)
        if not params:
            raise ValueError("parameter space must contain at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self._params: List[ProcessParameter] = params
        self._index: Dict[str, int] = {p.name: i for i, p in enumerate(params)}

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[ProcessParameter]:
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> ProcessParameter:
        return self._params[self._index[name]]

    def names(self) -> List[str]:
        """Parameter names in canonical (column) order."""
        return [p.name for p in self._params]

    def index_of(self, name: str) -> int:
        """Column index of ``name``."""
        return self._index[name]

    # ------------------------------------------------------------------
    # vectors and dicts
    # ------------------------------------------------------------------
    def nominal_vector(self) -> np.ndarray:
        """Vector of nominal values in canonical order."""
        return np.array([p.nominal for p in self._params])

    def fractional_std_vector(self) -> np.ndarray:
        """Per-parameter fractional-deviation standard deviations."""
        return np.array([p.fractional_std for p in self._params])

    def to_dict(self, vector: Sequence[float]) -> Dict[str, float]:
        """Convert a canonical-order vector into a name -> value mapping."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self),):
            raise ValueError(
                f"vector length {vector.shape} does not match space size {len(self)}"
            )
        return dict(zip(self.names(), vector.tolist()))

    def to_vector(self, values: Dict[str, float]) -> np.ndarray:
        """Convert a name -> value mapping into a canonical-order vector.

        Missing names take their nominal value; unknown names are an error.
        """
        unknown = set(values) - set(self._index)
        if unknown:
            raise KeyError(f"unknown parameter names: {sorted(unknown)}")
        vec = self.nominal_vector()
        for name, value in values.items():
            vec[self._index[name]] = value
        return vec

    # ------------------------------------------------------------------
    # sampling and perturbation
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` independent process points; shape ``(n, k)``."""
        if n < 1:
            raise ValueError("n must be >= 1")
        cols = [p.sample(rng, size=n) for p in self._params]
        return np.column_stack(cols)

    def perturbed_vector(self, name: str, rel_step: float) -> np.ndarray:
        """Nominal vector with one parameter moved by ``rel_step`` fraction.

        Used for finite-difference sensitivity estimation.
        """
        vec = self.nominal_vector()
        i = self._index[name]
        vec[i] = vec[i] * (1.0 + rel_step)
        return vec

    def normalize(self, vectors: np.ndarray) -> np.ndarray:
        """Express process points as fractional deviations from nominal.

        Accepts shape ``(k,)`` or ``(n, k)``; returns the same shape.
        Sensitivity analysis operates on these normalized deviations so
        parameters with different physical units are comparable.
        """
        vectors = np.asarray(vectors, dtype=float)
        nom = self.nominal_vector()
        return (vectors - nom) / nom

    def denormalize(self, deviations: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        deviations = np.asarray(deviations, dtype=float)
        nom = self.nominal_vector()
        return nom + deviations * nom

    def subset(self, names: Sequence[str]) -> "ParameterSpace":
        """A new space containing only the named parameters (in given order)."""
        return ParameterSpace([self[name] for name in names])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParameterSpace({self.names()})"
