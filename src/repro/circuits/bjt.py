"""Simplified Gummel-Poon BJT model: bias, small-signal and noise.

The paper's process variables for the 900 MHz LNA are the BJT saturation
current ``Is``, forward current gain ``beta_f``, forward Early voltage
``V_af``, base resistance ``r_b`` and the beta high-injection corner
``i_kf`` (Section 4.1).  This module implements the pieces of the
Gummel-Poon model those parameters live in:

* collector current with high-injection roll-off:
  ``Ic = Is exp(Vbe/Vt) / qb`` with
  ``qb = (1 + sqrt(1 + 4 Is exp(Vbe/Vt) / i_kf)) / 2``;
* ideal base current ``Ib = Is exp(Vbe/Vt) / beta_f`` (so the effective
  DC beta ``Ic/Ib = beta_f / qb`` degrades at high injection);
* bias solution of a resistive divider + emitter-resistor network;
* small-signal ``gm`` (including the qb correction), ``r_pi``, ``r_o``
  (Early effect);
* the classic bipolar noise-figure expression in terms of ``r_b``, ``gm``
  and beta.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "THERMAL_VOLTAGE",
    "BJTParameters",
    "BiasNetwork",
    "BJTOperatingPoint",
    "solve_bias",
    "bjt_noise_factor",
]

#: kT/q at 300 K, volts.
THERMAL_VOLTAGE = 0.02585


@dataclass(frozen=True)
class BJTParameters:
    """Gummel-Poon parameters used by the paper (SPICE names in comments)."""

    is_sat: float  # IS  - transport saturation current (A)
    beta_f: float  # BF  - ideal forward current gain
    vaf: float  # VAF - forward Early voltage (V)
    rb: float  # RB  - base resistance (ohm)
    ikf: float  # IKF - forward-beta high-injection corner (A)

    def __post_init__(self):
        if not (self.is_sat > 0):
            raise ValueError("is_sat must be positive")
        if not (self.beta_f > 1):
            raise ValueError("beta_f must exceed 1")
        if not (self.vaf > 0):
            raise ValueError("vaf must be positive")
        if self.rb < 0:
            raise ValueError("rb must be non-negative")
        if not (self.ikf > 0):
            raise ValueError("ikf must be positive")


@dataclass(frozen=True)
class BiasNetwork:
    """Resistive-divider bias network of a common-emitter stage.

    ``r1`` from supply to base, ``r2`` from base to ground, ``re`` from
    emitter to ground (DC stabilisation; assumed RF-bypassed), and an
    optional DC collector resistance ``rc_dc`` (zero for an inductive
    load, as in a tuned LNA).
    """

    vcc: float
    r1: float
    r2: float
    re: float
    rc_dc: float = 0.0

    def __post_init__(self):
        if not (self.vcc > 0):
            raise ValueError("vcc must be positive")
        for name in ("r1", "r2", "re"):
            if not (getattr(self, name) > 0):
                raise ValueError(f"{name} must be positive")
        if self.rc_dc < 0:
            raise ValueError("rc_dc must be non-negative")

    @property
    def v_thevenin(self) -> float:
        """Thevenin voltage of the base divider."""
        return self.vcc * self.r2 / (self.r1 + self.r2)

    @property
    def r_thevenin(self) -> float:
        """Thevenin resistance of the base divider."""
        return self.r1 * self.r2 / (self.r1 + self.r2)


@dataclass(frozen=True)
class BJTOperatingPoint:
    """Solved DC operating point and small-signal quantities."""

    vbe: float  # base-emitter voltage (V)
    vce: float  # collector-emitter voltage (V)
    ic: float  # collector current (A)
    ib: float  # base current (A)
    qb: float  # normalized base charge (high-injection factor)
    gm: float  # transconductance dIc/dVbe (S)
    r_pi: float  # small-signal input resistance (ohm)
    r_o: float  # output resistance from Early effect (ohm)
    beta_dc: float  # Ic / Ib

    @property
    def beta_ac(self) -> float:
        """Small-signal current gain ``gm * r_pi``."""
        return self.gm * self.r_pi


def _currents(params: BJTParameters, vbe: float, vt: float):
    """Collector/base currents and qb at a given Vbe."""
    x = params.is_sat * math.exp(vbe / vt)
    qb = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * x / params.ikf))
    ic = x / qb
    ib = x / params.beta_f
    return ic, ib, qb, x


def solve_bias(
    params: BJTParameters,
    network: BiasNetwork,
    vt: float = THERMAL_VOLTAGE,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> BJTOperatingPoint:
    """Solve the DC bias point of the divider-biased CE stage.

    Solves the base-loop KVL
    ``V_th = Ib R_th + Vbe + (Ic + Ib) Re`` for ``Vbe`` by bisection
    (the residual is strictly monotonic in ``Vbe``), then evaluates the
    small-signal model at the solution.

    Raises
    ------
    ValueError
        If the network cannot forward-bias the junction.
    """
    vth = network.v_thevenin
    rth = network.r_thevenin

    def residual(vbe: float) -> float:
        ic, ib, _qb, _x = _currents(params, vbe, vt)
        return vth - ib * rth - vbe - (ic + ib) * network.re

    lo, hi = 0.1, 1.1
    if residual(lo) <= 0.0:
        raise ValueError(
            "bias network cannot forward-bias the transistor "
            f"(V_thevenin = {vth:.3f} V)"
        )
    if residual(hi) >= 0.0:
        raise ValueError("bias solution above Vbe = 1.1 V; network is unphysical")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        r = residual(mid)
        if abs(r) < tol or (hi - lo) < 1e-15:
            break
        if r > 0.0:
            lo = mid
        else:
            hi = mid
    vbe = 0.5 * (lo + hi)

    ic, ib, qb, x = _currents(params, vbe, vt)
    # gm = dIc/dVbe with the qb(x) correction:
    # Ic = x / qb(x); dIc/dx = (qb - x qb') / qb^2; dx/dVbe = x / Vt
    dqb_dx = 1.0 / (params.ikf * math.sqrt(1.0 + 4.0 * x / params.ikf))
    gm = (x / vt) * (qb - x * dqb_dx) / (qb * qb)
    r_pi = (params.beta_f / qb) / gm if gm > 0 else math.inf
    vce = network.vcc - ic * network.rc_dc - (ic + ib) * network.re
    if vce <= 0.2:
        raise ValueError(f"transistor saturated (Vce = {vce:.3f} V)")
    r_o = (params.vaf + vce) / ic
    return BJTOperatingPoint(
        vbe=vbe,
        vce=vce,
        ic=ic,
        ib=ib,
        qb=qb,
        gm=gm,
        r_pi=r_pi,
        r_o=r_o,
        beta_dc=ic / ib,
    )


def bjt_noise_factor(
    gm: float,
    beta: float,
    rb: float,
    source_resistance: float = 50.0,
) -> float:
    """Noise factor of a common-emitter BJT stage.

    The classic expression (thermal noise of ``r_b``, collector and base
    shot noise, flicker noise ignored at RF):

    ``F = 1 + rb/Rs + 1/(2 gm Rs) + gm (Rs + rb)^2 / (2 beta Rs)``
    """
    if not (gm > 0):
        raise ValueError("gm must be positive")
    if not (beta > 0):
        raise ValueError("beta must be positive")
    if rb < 0 or source_resistance <= 0:
        raise ValueError("rb must be >= 0 and source resistance positive")
    rs = source_resistance
    return (
        1.0
        + rb / rs
        + 1.0 / (2.0 * gm * rs)
        + gm * (rs + rb) ** 2 / (2.0 * beta * rs)
    )
