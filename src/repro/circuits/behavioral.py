"""Behavioral RF amplifier model.

This is the DUT representation used inside signature-path simulations and
conventional instrument models.  It is parameterized directly by the
datasheet quantities (gain, NF, IIP3, optional IIP2 and envelope
bandwidth) and converts them to a memoryless polynomial via
:mod:`repro.circuits.nonlinear`.  The hardware experiment of Section 4.2
uses exactly this kind of behavioral model, because the RF2401's netlist
was not available: *"the baseband test stimulus in this case was obtained
by applying the optimization process on a behavioral model of the LNA"*.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.circuits.noisefig import added_output_noise_vrms
from repro.circuits.nonlinear import PolynomialNonlinearity, poly_from_specs
from repro.dsp.waveform import Waveform

__all__ = ["BehavioralAmplifier"]


class BehavioralAmplifier(RFDevice):
    """Memoryless polynomial amplifier with thermal noise.

    Parameters
    ----------
    center_frequency:
        Design frequency in Hz (used for bookkeeping; the memoryless model
        itself is frequency-flat over the signature baseband).
    gain_db, nf_db, iip3_dbm:
        Datasheet specifications.
    iip2_dbm:
        Optional input IP2; ``None`` suppresses even-order products.
    envelope_bandwidth:
        Optional single-pole *modulation* bandwidth in Hz: the device
        passes the carrier but low-passes its envelope (bias-network
        memory, narrow matching).  ``None`` (default) models a device
        whose bandwidth is far beyond the signature baseband, like the
        tuned LNA.
    noise_bandwidth:
        Bandwidth over which device noise is integrated when adding noise
        to time-domain responses.  Defaults to half the record's sample
        rate at processing time.
    """

    def __init__(
        self,
        center_frequency: float,
        gain_db: float,
        nf_db: float,
        iip3_dbm: float,
        iip2_dbm: Optional[float] = None,
        envelope_bandwidth: Optional[float] = None,
        noise_bandwidth: Optional[float] = None,
    ):
        if nf_db < 0:
            raise ValueError("noise figure cannot be below 0 dB")
        self.center_frequency = float(center_frequency)
        self._gain_db = float(gain_db)
        self._nf_db = float(nf_db)
        self._iip3_dbm = float(iip3_dbm)
        self._iip2_dbm = None if iip2_dbm is None else float(iip2_dbm)
        self.envelope_bandwidth = envelope_bandwidth
        self.noise_bandwidth = noise_bandwidth
        a1, a2, a3 = poly_from_specs(gain_db, iip3_dbm, iip2_dbm)
        self._poly = PolynomialNonlinearity(a1=a1, a2=a2, a3=a3)

    # ------------------------------------------------------------------
    # RFDevice interface
    # ------------------------------------------------------------------
    def specs(self) -> SpecSet:
        return SpecSet(
            gain_db=self._gain_db, nf_db=self._nf_db, iip3_dbm=self._iip3_dbm
        )

    @property
    def polynomial(self) -> PolynomialNonlinearity:
        """The underlying memoryless transfer."""
        return self._poly

    def envelope_poly(self) -> Tuple[float, float, float]:
        return self._poly.coefficients()

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        """Pass a passband record through the device.

        Applies the memoryless polynomial, then (optionally) the
        modulation-bandwidth one-pole on the carrier-band envelope, then
        adds the device's *added* output noise (``(F-1) G k T B``) if
        ``rng`` is given -- the source's own kTB noise belongs to the
        input record.
        """
        out = self._poly.apply(wf)
        if self.envelope_bandwidth is not None:
            from repro.dsp.passband import envelope_one_pole

            fc = self.center_frequency
            nyquist = wf.sample_rate / 2.0
            if not (0.0 < fc < nyquist):
                raise ValueError(
                    "record cannot represent the carrier for envelope filtering"
                )
            half_width = 0.95 * min(fc, nyquist - fc)
            out = envelope_one_pole(out, fc, self.envelope_bandwidth, half_width)
        if rng is not None:
            bw = self.noise_bandwidth
            if bw is None:
                bw = wf.sample_rate / 2.0
            sigma = added_output_noise_vrms(self._gain_db, self._nf_db, bw)
            out = Waveform(
                out.samples + rng.normal(0.0, sigma, size=len(out)),
                out.sample_rate,
                out.t0,
            )
        return out

    def with_specs(
        self,
        gain_db: Optional[float] = None,
        nf_db: Optional[float] = None,
        iip3_dbm: Optional[float] = None,
    ) -> "BehavioralAmplifier":
        """A copy with some specifications replaced (device-to-device spread)."""
        return BehavioralAmplifier(
            center_frequency=self.center_frequency,
            gain_db=self._gain_db if gain_db is None else gain_db,
            nf_db=self._nf_db if nf_db is None else nf_db,
            iip3_dbm=self._iip3_dbm if iip3_dbm is None else iip3_dbm,
            iip2_dbm=self._iip2_dbm,
            envelope_bandwidth=self.envelope_bandwidth,
            noise_bandwidth=self.noise_bandwidth,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BehavioralAmplifier(gain={self._gain_db:.2f} dB, "
            f"NF={self._nf_db:.2f} dB, IIP3={self._iip3_dbm:.2f} dBm)"
        )
