"""Analytic model of the paper's 900 MHz low-noise amplifier (Figure 6).

The paper simulates a discrete 900 MHz BJT LNA in SpectreRF; we replace
the transistor-level simulator with an analytic circuit model that keeps
the same parameter -> specification physics:

* **Bias** -- resistive divider + emitter resistor solved through the
  Gummel-Poon equations of :mod:`repro.circuits.bjt`, so ``Is``,
  ``beta_f`` and ``i_kf`` shift the collector current exactly the way they
  do in SPICE.
* **Gain** -- inductively degenerated common-emitter stage with a parallel
  RLC collector tank.  Voltage gain ``gm Zl / (1 + gm Xe)`` where ``Xe``
  is the degeneration reactance at 900 MHz and ``Zl`` the tank impedance
  (de-tuned by tank-capacitor variation), in parallel with the Early-effect
  output resistance.
* **Noise figure** -- the classic bipolar formula of
  :func:`repro.circuits.bjt.bjt_noise_factor`; ``r_b`` dominates and is
  nearly invisible to the gain, which is precisely why the paper's NF
  prediction error (0.34 dB) is several times worse than its gain error
  (0.06 dB).
* **IIP3** -- exponential nonlinearity linearized by the series-feedback
  loop gain ``T = gm Xe``:  ``V_IIP3 = 2 sqrt(2) Vt (1 + T)^(3/2)``.

Ten process parameters vary (five resistors/capacitor values, five BJT
parameters), uniformly within +/- 20 % as in Section 4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.bjt import (
    THERMAL_VOLTAGE,
    BiasNetwork,
    BJTOperatingPoint,
    BJTParameters,
    bjt_noise_factor,
    solve_bias,
)
from repro.circuits.device import RFDevice, SpecSet
from repro.circuits.noisefig import factor_to_nf_db
from repro.circuits.parameters import ParameterSpace, uniform_percent
from repro.dsp.sources import vpeak_to_dbm
from repro.dsp.units import db20
from repro.dsp.waveform import Waveform

__all__ = ["LNADesign", "LNA900", "lna_parameter_space"]


@dataclass(frozen=True)
class LNADesign:
    """Fixed design constants of the 900 MHz LNA (not process-varying)."""

    center_frequency: float = 900e6  # Hz
    vcc: float = 3.0  # supply (V)
    l_degeneration: float = 2.6e-9  # emitter degeneration inductor (H)
    l_tank: float = 10e-9  # collector tank inductor (H)
    source_resistance: float = 50.0  # ohm
    #: IIP2 is quoted this many dB above IIP3 (even-order products are
    #: weak in the narrowband tuned stage but not exactly zero).
    iip2_offset_db: float = 20.0


#: Nominal process-parameter values (Section 4.1 variables).
NOMINAL_PROCESS: Dict[str, float] = {
    # resistors / capacitor
    "r1": 3.9e3,  # divider, supply side (ohm)
    "r2": 2.7e3,  # divider, ground side (ohm)
    "re": 82.0,  # DC emitter resistor (ohm)
    "r_load": 135.0,  # tank parallel loss resistance (ohm)
    "c_tank": 3.127e-12,  # tank capacitor (F); resonates l_tank at 900 MHz
    # BJT model parameters (the paper's five)
    "is_sat": 2e-16,  # A
    "beta_f": 100.0,
    "vaf": 60.0,  # V
    "rb": 35.0,  # ohm
    "ikf": 0.05,  # A
}


def lna_parameter_space(percent: float = 20.0) -> ParameterSpace:
    """The paper's statistical parameter space: +/- ``percent`` % uniform."""
    return ParameterSpace(
        [uniform_percent(name, nominal, percent) for name, nominal in NOMINAL_PROCESS.items()]
    )


class LNA900(RFDevice):
    """One manufactured instance of the 900 MHz LNA.

    Parameters
    ----------
    process:
        Mapping of process-parameter name to value; missing entries take
        their nominal value.  Use
        :func:`lna_parameter_space` + :meth:`ParameterSpace.to_dict` to
        generate Monte-Carlo instances.
    design:
        Fixed (non-varying) design constants.
    """

    def __init__(
        self,
        process: Optional[Dict[str, float]] = None,
        design: LNADesign = LNADesign(),
    ):
        self.design = design
        values = dict(NOMINAL_PROCESS)
        if process:
            unknown = set(process) - set(values)
            if unknown:
                raise KeyError(f"unknown process parameters: {sorted(unknown)}")
            values.update(process)
        self.process = values
        self.center_frequency = design.center_frequency

        self._bjt = BJTParameters(
            is_sat=values["is_sat"],
            beta_f=values["beta_f"],
            vaf=values["vaf"],
            rb=values["rb"],
            ikf=values["ikf"],
        )
        self._network = BiasNetwork(
            vcc=design.vcc, r1=values["r1"], r2=values["r2"], re=values["re"]
        )
        self._op: BJTOperatingPoint = solve_bias(self._bjt, self._network)
        self._behavioral: Optional[BehavioralAmplifier] = None

    # ------------------------------------------------------------------
    # circuit analysis
    # ------------------------------------------------------------------
    @property
    def operating_point(self) -> BJTOperatingPoint:
        """Solved DC operating point."""
        return self._op

    @property
    def degeneration_reactance(self) -> float:
        """Emitter degeneration reactance ``w0 Le`` at the design frequency."""
        return 2.0 * math.pi * self.design.center_frequency * self.design.l_degeneration

    @property
    def loop_gain(self) -> float:
        """Series-feedback loop gain ``T = gm Xe``."""
        return self._op.gm * self.degeneration_reactance

    def tank_impedance(self, frequency: Optional[float] = None) -> float:
        """Magnitude of the collector tank impedance at ``frequency``.

        Parallel RLC with ``r_load`` in parallel with the transistor's
        ``r_o``:  ``|Z| = R_eff / sqrt(1 + Q^2 (f/f0 - f0/f)^2)``.
        """
        f = self.design.center_frequency if frequency is None else frequency
        lt = self.design.l_tank
        ct = self.process["c_tank"]
        r_eff = 1.0 / (1.0 / self.process["r_load"] + 1.0 / self._op.r_o)
        f0 = 1.0 / (2.0 * math.pi * math.sqrt(lt * ct))
        q = r_eff / (2.0 * math.pi * f0 * lt)
        detune = f / f0 - f0 / f
        return r_eff / math.sqrt(1.0 + (q * detune) ** 2)

    def voltage_gain(self, frequency: Optional[float] = None) -> float:
        """Linear voltage gain ``gm Zl / (1 + T)`` at ``frequency``."""
        zl = self.tank_impedance(frequency)
        return self._op.gm * zl / (1.0 + self.loop_gain)

    # ------------------------------------------------------------------
    # specifications
    # ------------------------------------------------------------------
    def gain_db(self, frequency: Optional[float] = None) -> float:
        """Power gain at ``frequency`` (matched 50-ohm convention)."""
        return db20(self.voltage_gain(frequency))

    def nf_db(self) -> float:
        """Noise figure at the design frequency."""
        factor = bjt_noise_factor(
            gm=self._op.gm,
            beta=self._op.beta_dc,
            rb=self._bjt.rb,
            source_resistance=self.design.source_resistance,
        )
        return factor_to_nf_db(factor)

    def iip3_dbm(self) -> float:
        """Input-referred IP3 from feedback-linearized exponential."""
        v_iip3 = 2.0 * math.sqrt(2.0) * THERMAL_VOLTAGE * (1.0 + self.loop_gain) ** 1.5
        return vpeak_to_dbm(v_iip3)

    def specs(self) -> SpecSet:
        return SpecSet(
            gain_db=self.gain_db(), nf_db=self.nf_db(), iip3_dbm=self.iip3_dbm()
        )

    # ------------------------------------------------------------------
    # behavioral view (used by the signature path and passband simulator)
    # ------------------------------------------------------------------
    def to_behavioral(self) -> BehavioralAmplifier:
        """Behavioral equivalent carrying the same specs.

        The tank's half-power bandwidth (f0 / 2Q, about 190 MHz here) is
        far above the 10 MHz baseband used for signature extraction, so
        envelope dynamics are negligible and the behavioral model is
        memoryless.
        """
        if self._behavioral is None:
            s = self.specs()
            self._behavioral = BehavioralAmplifier(
                center_frequency=self.design.center_frequency,
                gain_db=s.gain_db,
                nf_db=s.nf_db,
                iip3_dbm=s.iip3_dbm,
                iip2_dbm=s.iip3_dbm + self.design.iip2_offset_db,
            )
        return self._behavioral

    def envelope_poly(self):
        return self.to_behavioral().envelope_poly()

    def process_rf(self, wf: Waveform, rng: Optional[np.random.Generator] = None) -> Waveform:
        return self.to_behavioral().process_rf(wf, rng)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.specs()
        return (
            f"LNA900(gain={s.gain_db:.2f} dB, NF={s.nf_db:.2f} dB, "
            f"IIP3={s.iip3_dbm:.2f} dBm, Ic={self._op.ic * 1e3:.2f} mA)"
        )
