"""Noise-figure conversions and measurement math.

Provides the noise bookkeeping shared by DUT models and the noise-figure
meter instrument:

* dB <-> linear noise-factor conversions,
* Friis cascade formula for multi-stage front ends,
* Y-factor noise-figure computation (how real NF meters work),
* the output-noise voltage a device with given gain/NF injects into the
  signature path.

Conventions: available-power noise, reference temperature ``T0 = 290 K``,
reference impedance 50 ohms.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.dsp.noise import BOLTZMANN, ROOM_TEMPERATURE_K
from repro.dsp.units import db, undb

__all__ = [
    "nf_db_to_factor",
    "factor_to_nf_db",
    "friis_cascade_nf_db",
    "enr_db_to_ratio",
    "y_factor_nf_db",
    "output_noise_vrms",
    "added_output_noise_vrms",
    "input_referred_noise_vrms",
]

_REFERENCE_IMPEDANCE = 50.0


def nf_db_to_factor(nf_db: float) -> float:
    """Noise figure (dB) to noise factor F (linear)."""
    return undb(nf_db)


def factor_to_nf_db(factor: float) -> float:
    """Noise factor F (linear) to noise figure (dB).

    lint-ranges: factor=[1, 1e6]
    lint-float32-budget: 1e-3
    """
    if factor < 1.0:
        raise ValueError(f"noise factor must be >= 1, got {factor}")
    return db(factor)


def friis_cascade_nf_db(stages: Sequence[Tuple[float, float]]) -> float:
    """Cascade noise figure via the Friis formula.

    Parameters
    ----------
    stages:
        Sequence of ``(gain_db, nf_db)`` tuples, first stage first.

    Returns
    -------
    Total noise figure in dB.
    """
    if not stages:
        raise ValueError("need at least one stage")
    total_f = 0.0
    cumulative_gain = 1.0
    for i, (gain_db, nf_db) in enumerate(stages):
        f = nf_db_to_factor(nf_db)
        if i == 0:
            total_f = f
        else:
            total_f += (f - 1.0) / cumulative_gain
        cumulative_gain *= undb(gain_db)
    return factor_to_nf_db(total_f)


def enr_db_to_ratio(enr_db: float) -> float:
    """Excess-noise ratio of a noise source, dB to linear."""
    return undb(enr_db)


def y_factor_nf_db(y: float, enr_db: float) -> float:
    """Noise figure from a Y-factor measurement.

    ``Y`` is the ratio of measured output noise powers with the noise
    source hot vs cold; ``F = ENR / (Y - 1)``.

    lint-ranges: y=[1, 1e3] enr_db=[0, 30]
    """
    if y <= 1.0:
        raise ValueError(f"Y factor must exceed 1 (got {y}); device swamped by noise?")
    factor = enr_db_to_ratio(enr_db) / (y - 1.0)
    # measurement noise can push the computed factor slightly below 1
    return factor_to_nf_db(max(factor, 1.0))


def output_noise_vrms(
    gain_db: float,
    nf_db: float,
    bandwidth_hz: float,
    impedance: float = _REFERENCE_IMPEDANCE,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Total output noise voltage of a device driven by a matched source.

    The available output noise power of a two-port with gain ``G`` and
    noise factor ``F`` fed from a matched resistive source is
    ``F * G * k T B``; converting available power to voltage across the
    reference impedance gives ``v = sqrt(F G k T B R)``.
    """
    if bandwidth_hz < 0:
        raise ValueError("bandwidth must be non-negative")
    f = nf_db_to_factor(nf_db)
    g = undb(gain_db)
    power = f * g * BOLTZMANN * temperature_k * bandwidth_hz
    return math.sqrt(power * impedance)


def added_output_noise_vrms(
    gain_db: float,
    nf_db: float,
    bandwidth_hz: float,
    impedance: float = _REFERENCE_IMPEDANCE,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Noise the device itself adds at its output (excludes amplified kTB).

    ``(F - 1) G k T B`` converted to volts.  This is the quantity device
    models inject in :meth:`RFDevice.process_rf`: the source's own thermal
    noise, if relevant, is part of the input record, so injecting the
    *total* ``F G k T B`` would double-count it and bias Y-factor
    measurements.
    """
    if bandwidth_hz < 0:
        raise ValueError("bandwidth must be non-negative")
    f = nf_db_to_factor(nf_db)
    g = undb(gain_db)
    power = (f - 1.0) * g * BOLTZMANN * temperature_k * bandwidth_hz
    return math.sqrt(max(power, 0.0) * impedance)


def input_referred_noise_vrms(
    nf_db: float,
    bandwidth_hz: float,
    impedance: float = _REFERENCE_IMPEDANCE,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Device-added noise referred to the input (excludes the source's kTB)."""
    if bandwidth_hz < 0:
        raise ValueError("bandwidth must be non-negative")
    f = nf_db_to_factor(nf_db)
    power = (f - 1.0) * BOLTZMANN * temperature_k * bandwidth_hz
    return math.sqrt(max(power, 0.0) * impedance)
