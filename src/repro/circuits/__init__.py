"""Device-under-test (DUT) substrate.

The paper evaluates its signature-test methodology on a 900 MHz low-noise
amplifier simulated in SpectreRF, plus real RF2401 front-end devices.  This
package provides the equivalent Python substrate:

* :mod:`repro.circuits.parameters` -- statistical process parameters and
  Monte-Carlo sampling (the +/-20 % uniform variations of Section 4.1).
* :mod:`repro.circuits.bjt` -- Gummel-Poon-style BJT bias and small-signal
  model with the paper's parameters (Is, beta_f, V_af, r_b, i_kf).
* :mod:`repro.circuits.lna` -- analytic 900 MHz LNA producing gain, noise
  figure and IIP3 from component and transistor parameters.
* :mod:`repro.circuits.nonlinear` -- memoryless polynomial nonlinearity
  math (gain compression, IP3, P1dB relationships).
* :mod:`repro.circuits.noisefig` -- noise-figure conversions, Friis
  cascade, Y-factor math.
* :mod:`repro.circuits.behavioral` -- behavioral RF amplifier used as the
  DUT inside signature-path simulations.
* :mod:`repro.circuits.pa`, :mod:`repro.circuits.attenuator`,
  :mod:`repro.circuits.mixer_dut` -- the other front-end device classes the
  paper's introduction targets.
"""

from repro.circuits.device import RFDevice, SpecSet
from repro.circuits.parameters import (
    ProcessParameter,
    ParameterSpace,
    uniform_percent,
)
from repro.circuits.noisefig import (
    nf_db_to_factor,
    factor_to_nf_db,
    friis_cascade_nf_db,
    y_factor_nf_db,
    output_noise_vrms,
)
from repro.circuits.nonlinear import (
    PolynomialNonlinearity,
    poly_from_specs,
    iip3_dbm_from_poly,
    p1db_dbm_from_iip3,
)
from repro.circuits.bjt import BJTParameters, BJTOperatingPoint, solve_bias
from repro.circuits.lna import LNA900, LNADesign, lna_parameter_space
from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.pa import PowerAmplifier
from repro.circuits.attenuator import Attenuator
from repro.circuits.mixer_dut import DownconversionMixerDUT
from repro.circuits.gilbert import GilbertCellMixer, gilbert_parameter_space
from repro.circuits.faults import (
    FAULT_LIBRARY,
    FaultyDevice,
    bias_shift_fault,
    dead_stage_fault,
    open_input_fault,
    shorted_output_fault,
)

__all__ = [
    "RFDevice",
    "SpecSet",
    "ProcessParameter",
    "ParameterSpace",
    "uniform_percent",
    "nf_db_to_factor",
    "factor_to_nf_db",
    "friis_cascade_nf_db",
    "y_factor_nf_db",
    "output_noise_vrms",
    "PolynomialNonlinearity",
    "poly_from_specs",
    "iip3_dbm_from_poly",
    "p1db_dbm_from_iip3",
    "BJTParameters",
    "BJTOperatingPoint",
    "solve_bias",
    "LNA900",
    "LNADesign",
    "lna_parameter_space",
    "BehavioralAmplifier",
    "PowerAmplifier",
    "Attenuator",
    "DownconversionMixerDUT",
    "GilbertCellMixer",
    "gilbert_parameter_space",
    "FaultyDevice",
    "FAULT_LIBRARY",
    "open_input_fault",
    "shorted_output_fault",
    "dead_stage_fault",
    "bias_shift_fault",
]
