"""Behavioral attenuator DUT.

A passive matched attenuator has gain ``-L`` dB and, being passive and
matched, a noise figure equal to its loss.  Its nonlinearity is very weak
(high IIP3).  Attenuators are in the paper's list of target front-end
devices; they make a good smoke-test DUT because every spec is linked to a
single parameter (the loss).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.circuits.nonlinear import PolynomialNonlinearity, poly_from_specs
from repro.dsp.waveform import Waveform

__all__ = ["Attenuator"]


class Attenuator(RFDevice):
    """A matched resistive attenuator.

    Parameters
    ----------
    center_frequency:
        Nominal operating frequency (the model is frequency flat).
    loss_db:
        Insertion loss in dB (positive number).
    iip3_dbm:
        Effective input IP3; passive parts are very linear (default
        +50 dBm).
    """

    def __init__(
        self,
        center_frequency: float,
        loss_db: float,
        iip3_dbm: float = 50.0,
    ):
        if loss_db < 0:
            raise ValueError("loss_db must be non-negative")
        self.center_frequency = float(center_frequency)
        self._loss_db = float(loss_db)
        self._iip3_dbm = float(iip3_dbm)
        a1, a2, a3 = poly_from_specs(-loss_db, iip3_dbm)
        self._poly = PolynomialNonlinearity(a1=a1, a2=a2, a3=a3)

    @property
    def loss_db(self) -> float:
        return self._loss_db

    def specs(self) -> SpecSet:
        # passive matched attenuator: NF equals the loss
        return SpecSet(
            gain_db=-self._loss_db, nf_db=self._loss_db, iip3_dbm=self._iip3_dbm
        )

    def envelope_poly(self) -> Tuple[float, float, float]:
        return self._poly.coefficients()

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        out = self._poly.apply(wf)
        if rng is not None:
            from repro.circuits.noisefig import added_output_noise_vrms

            sigma = added_output_noise_vrms(
                -self._loss_db, self._loss_db, wf.sample_rate / 2.0
            )
            out = Waveform(
                out.samples + rng.normal(0.0, sigma, size=len(out)),
                out.sample_rate,
                out.t0,
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Attenuator(loss={self._loss_db:.1f} dB)"
