"""Common DUT interface.

Every device the framework can test -- circuit-level LNA, behavioral
amplifier, PA, attenuator, mixer -- exposes the same small surface:

* datasheet specifications (:meth:`RFDevice.specs`),
* a passband time-domain transfer (:meth:`RFDevice.process_rf`) used by
  conventional instrument models and the brute-force passband simulator,
* an envelope-domain polynomial (:meth:`RFDevice.envelope_poly`) used by
  the fast signature-path engine,
* the device's output noise level, tied to its noise figure.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = ["SpecSet", "RFDevice"]


@dataclass(frozen=True)
class SpecSet:
    """The three datasheet specifications the paper predicts.

    Attributes
    ----------
    gain_db:
        Small-signal power gain at the design frequency.
    nf_db:
        Noise figure in dB.
    iip3_dbm:
        Input-referred third-order intercept point in dBm.
    """

    gain_db: float
    nf_db: float
    iip3_dbm: float

    NAMES = ("gain_db", "nf_db", "iip3_dbm")

    def as_vector(self) -> np.ndarray:
        """Specs as a fixed-order vector (gain, NF, IIP3)."""
        return np.array([self.gain_db, self.nf_db, self.iip3_dbm])

    @classmethod
    def from_vector(cls, v) -> "SpecSet":
        v = np.asarray(v, dtype=float)
        if v.shape != (3,):
            raise ValueError(f"spec vector must have 3 entries, got shape {v.shape}")
        return cls(gain_db=float(v[0]), nf_db=float(v[1]), iip3_dbm=float(v[2]))

    def as_dict(self) -> Dict[str, float]:
        return {
            "gain_db": self.gain_db,
            "nf_db": self.nf_db,
            "iip3_dbm": self.iip3_dbm,
        }


class RFDevice(abc.ABC):
    """Abstract RF device under test."""

    #: design (center) frequency in Hz
    center_frequency: float

    @abc.abstractmethod
    def specs(self) -> SpecSet:
        """True datasheet specifications of this device instance."""

    @abc.abstractmethod
    def envelope_poly(self) -> Tuple[float, float, float]:
        """Memoryless voltage polynomial ``(a1, a2, a3)`` around the carrier.

        ``y = a1 x + a2 x^2 + a3 x^3`` models the device for signals near
        its design frequency; ``a1`` carries the gain and ``a3`` the
        third-order nonlinearity consistent with the IIP3 spec.
        """

    @abc.abstractmethod
    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        """Passband time-domain transfer, including device noise if ``rng``.

        Used by the conventional-instrument models (gain/NF/IIP3 bench
        tests) and by the brute-force passband validator.
        """

    def output_noise_vrms(self, bandwidth_hz: float) -> float:
        """Device-generated output noise (V rms) in ``bandwidth_hz``.

        Default implementation ties the noise level to the device's gain
        and noise figure via the available-power convention; see
        :func:`repro.circuits.noisefig.output_noise_vrms`.
        """
        from repro.circuits.noisefig import output_noise_vrms

        s = self.specs()
        return output_noise_vrms(s.gain_db, s.nf_db, bandwidth_hz)
