"""Memoryless polynomial nonlinearity math.

RF amplifier nonlinearity near the carrier is modeled the classic way:

    y = a1 x + a2 x^2 + a3 x^3

with ``a1`` the linear voltage gain and ``a3 < 0`` for compressive
behaviour.  This module collects the standard identities relating the
polynomial coefficients to the datasheet numbers the paper predicts
(IIP3, and by extension the 1 dB compression point):

* two-tone IM3: each third-order product has amplitude ``(3/4) |a3| A^3``
  for per-tone input amplitude ``A``;
* input IP3 voltage: ``V_IIP3 = sqrt((4/3) |a1 / a3|)`` (peak volts);
* P1dB: ``P1dB = IIP3 - 9.64 dB`` for a pure third-order compressive
  characteristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.dsp.sources import dbm_to_vpeak, vpeak_to_dbm
from repro.dsp.units import db20, undb20
from repro.dsp.waveform import Waveform

__all__ = [
    "PolynomialNonlinearity",
    "poly_from_specs",
    "iip3_dbm_from_poly",
    "iip2_dbm_from_poly",
    "p1db_dbm_from_iip3",
    "gain_compression_db",
]

#: Gap between IIP3 and the input 1 dB compression point for a pure
#: third-order memoryless characteristic (the classic 9.64 dB figure).
IIP3_TO_P1DB_DB = 9.6357


def poly_from_specs(
    gain_db: float,
    iip3_dbm: float,
    iip2_dbm: Optional[float] = None,
) -> Tuple[float, float, float]:
    """Polynomial coefficients consistent with gain / IIP3 (and IIP2).

    Parameters
    ----------
    gain_db:
        Small-signal power gain; in the matched 50-ohm convention the
        voltage gain is ``10**(gain_db / 20)``.
    iip3_dbm:
        Input-referred third-order intercept, dBm.
    iip2_dbm:
        Optional input-referred second-order intercept; ``None`` yields
        ``a2 = 0`` (a fully differential device).

    Returns
    -------
    ``(a1, a2, a3)`` with ``a3 <= 0`` (compressive).
    """
    a1 = undb20(gain_db)
    v_ip3 = dbm_to_vpeak(iip3_dbm)
    a3 = -(4.0 / 3.0) * a1 / (v_ip3**2)
    if iip2_dbm is None:
        a2 = 0.0
    else:
        # IM2 product amplitude is (a2/1) A^2 at per-tone amplitude A;
        # intercept with the linear term a1 A gives V_IIP2 = a1 / a2.
        v_ip2 = dbm_to_vpeak(iip2_dbm)
        a2 = a1 / v_ip2
    return a1, a2, a3


def iip3_dbm_from_poly(a1: float, a3: float) -> float:
    """Input IP3 in dBm from polynomial coefficients."""
    if a3 == 0.0:
        return math.inf
    v_ip3 = math.sqrt((4.0 / 3.0) * abs(a1 / a3))
    return vpeak_to_dbm(v_ip3)


def iip2_dbm_from_poly(a1: float, a2: float) -> float:
    """Input IP2 in dBm from polynomial coefficients."""
    if a2 == 0.0:
        return math.inf
    return vpeak_to_dbm(abs(a1 / a2))


def p1db_dbm_from_iip3(iip3_dbm: float) -> float:
    """Input 1 dB compression point implied by IIP3 (third-order model)."""
    return iip3_dbm - IIP3_TO_P1DB_DB


def gain_compression_db(a1: float, a3: float, amplitude: float) -> float:
    """Large-signal gain change (dB) of a tone of peak ``amplitude``.

    The describing-function gain of ``a1 x + a3 x^3`` for a sine input is
    ``a1 + (3/4) a3 A^2``; this returns its ratio to ``a1`` in dB
    (negative for compression).
    """
    if a1 == 0.0:
        raise ValueError("a1 must be non-zero")
    effective = a1 + 0.75 * a3 * amplitude**2
    if effective <= 0.0:
        return -math.inf
    return db20(effective / a1)


@dataclass(frozen=True)
class PolynomialNonlinearity:
    """A memoryless third-order polynomial transfer ``a1 x + a2 x^2 + a3 x^3``.

    The polynomial is only physical up to the amplitude where its slope
    reverses; beyond ``saturation_amplitude`` the output is held at the
    polynomial's extremum, modeling hard saturation instead of the
    unphysical fold-back of a raw cubic.
    """

    a1: float
    a2: float = 0.0
    a3: float = 0.0

    @property
    def saturation_amplitude(self) -> float:
        """Input amplitude where ``d y / d x = 0`` (inf if non-compressive)."""
        if self.a3 >= 0.0:
            return math.inf
        # y' = a1 + 2 a2 x + 3 a3 x^2 = 0; take the positive root
        disc = self.a2**2 - 3.0 * self.a1 * self.a3
        if disc < 0:
            return math.inf
        return (self.a2 + math.sqrt(disc)) / (-3.0 * self.a3)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the transfer on an array of sample values."""
        x = np.asarray(x, dtype=float)
        sat = self.saturation_amplitude
        if math.isfinite(sat):
            x = np.clip(x, -sat, sat)
        return self.a1 * x + self.a2 * x**2 + self.a3 * x**3

    def apply(self, wf: Waveform) -> Waveform:
        """Apply the transfer to a waveform."""
        return Waveform(self(wf.samples), wf.sample_rate, wf.t0)

    def gain_db(self) -> float:
        """Small-signal power gain in dB (matched convention)."""
        if self.a1 <= 0.0:
            raise ValueError("a1 must be positive for a gain in dB")
        return db20(self.a1)

    def iip3_dbm(self) -> float:
        """Input IP3 implied by the coefficients."""
        return iip3_dbm_from_poly(self.a1, self.a3)

    def coefficients(self) -> Tuple[float, float, float]:
        return (self.a1, self.a2, self.a3)

    # ------------------------------------------------------------------
    # narrowband (describing-function) view
    # ------------------------------------------------------------------
    def describing_function(self, amplitudes: np.ndarray) -> np.ndarray:
        """First-harmonic complex gain ``G(A)`` for a carrier of peak ``A``.

        For a narrowband signal ``u = Re[U e^{jwt}]`` through a memoryless
        nonlinearity, the carrier-band output is ``G(|U|) U`` with

            G(A) = (1 / (pi A)) * integral_0^2pi f(A cos t) cos t dt.

        Within the polynomial's validity range this is exactly
        ``a1 + (3/4) a3 A^2``; beyond the fold-back point the saturating
        transfer (output held at the polynomial extremum) is integrated
        numerically, giving the smooth gain compression a real amplifier
        exhibits instead of the raw cubic's unphysical fold-back.
        """
        amplitudes = np.asarray(amplitudes, dtype=float)
        scalar = amplitudes.ndim == 0
        amplitudes = np.atleast_1d(amplitudes)
        if np.any(amplitudes < 0):
            raise ValueError("amplitudes must be non-negative")
        out = self.a1 + 0.75 * self.a3 * amplitudes**2
        sat = self.saturation_amplitude
        if math.isfinite(sat):
            over = amplitudes > sat
            if np.any(over):
                theta = np.linspace(0.0, 2.0 * np.pi, 129)[:-1]
                cos_t = np.cos(theta)
                a_over = amplitudes[over]
                # f(A cos t) on an (n_over, n_theta) grid; __call__ clips
                u = a_over[:, None] * cos_t[None, :]
                first = np.mean(self(u) * cos_t[None, :], axis=1) * 2.0
                out[over] = first / a_over
        return out[0] if scalar else out

    def describing_gain_table(
        self, max_amplitude: float, n_points: int = 256
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sampled ``(A, G(A))`` table for fast interpolation.

        The signature-path engine evaluates the describing function on
        long envelope records; interpolating a precomputed table is much
        cheaper than per-sample quadrature.  Tables are memoized on the
        coefficient triple, so repeated captures of the same device (the
        optimizer's finite-difference loop, Monte-Carlo lots) skip the
        quadrature entirely.  The returned arrays are shared and marked
        read-only; copy before mutating.
        """
        if max_amplitude <= 0:
            raise ValueError("max_amplitude must be positive")
        return _describing_gain_table(
            self.a1, self.a2, self.a3, float(max_amplitude), int(n_points)
        )


@lru_cache(maxsize=1024)
def _describing_gain_table(
    a1: float, a2: float, a3: float, max_amplitude: float, n_points: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized describing-gain table (see ``describing_gain_table``)."""
    poly = PolynomialNonlinearity(a1, a2, a3)
    grid = np.linspace(0.0, max_amplitude, n_points)
    table = poly.describing_function(grid)
    grid.setflags(write=False)
    table.setflags(write=False)
    return grid, table
