"""Analytic Gilbert-cell downconversion mixer.

The paper's target device list includes mixers; this module gives that
class the same circuit-level treatment the LNA gets: specifications
derived from bias and component values through the standard Gilbert-cell
approximations, so process parameters move gain/NF/IIP3 the way silicon
does.

Topology assumed: bipolar Gilbert cell -- an emitter-degenerated RF
differential pair under a fully switched LO quad, resistive loads.

* **Bias**: the tail current comes from a mirror reference,
  ``I_EE = (Vcc - Vbe_ref) / R_bias``; each RF-pair device carries
  ``I_EE / 2`` (with the Gummel-Poon ``qb`` high-injection correction
  applied to its transconductance).
* **Conversion gain**: a fully switched quad multiplies the RF pair's
  output by a square wave, whose fundamental contributes the classic
  ``2/pi``:  ``Av = (2/pi) * Gm * R_L`` with the degenerated pair's
  ``Gm = gm / (1 + gm R_E / 2)``.
* **SSB noise figure**: switching folds noise from both sidebands and the
  quad adds its own -- captured by the standard ``pi^2/4`` factor over
  the pair's input-referred noise resistance:
  ``F = 1 + (pi^2 / 4) * (2 r_b + R_E + 1/gm) / R_s``.
* **IIP3**: the degenerated differential pair's odd nonlinearity,
  feedback-linearized like the LNA's:
  ``V_IIP3 = 4 sqrt(2) V_t (1 + T)^(3/2)`` with ``T = gm R_E / 2``
  (the extra factor 2 over the single-ended stage reflects the pair's
  2 V_t linear aperture).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuits.bjt import THERMAL_VOLTAGE, BJTParameters
from repro.circuits.device import RFDevice, SpecSet
from repro.dsp.units import db20
from repro.circuits.noisefig import factor_to_nf_db
from repro.circuits.nonlinear import PolynomialNonlinearity, poly_from_specs
from repro.circuits.parameters import ParameterSpace, uniform_percent
from repro.dsp.sources import vpeak_to_dbm
from repro.dsp.waveform import Waveform

__all__ = ["GilbertCellMixer", "GilbertDesign", "gilbert_parameter_space"]


@dataclass(frozen=True)
class GilbertDesign:
    """Fixed design constants of the mixer."""

    rf_frequency: float = 900e6
    lo_frequency: float = 800e6  # IF = 100 MHz
    vcc: float = 3.0
    source_resistance: float = 50.0
    v_ref: float = 0.78  # mirror reference Vbe (V)


#: Nominal process-varying values.
NOMINAL_PROCESS: Dict[str, float] = {
    "r_bias": 1.1e3,  # tail-mirror resistor (ohm) -> I_EE ~ 2 mA
    "r_load": 250.0,  # load resistors (ohm)
    "r_degen": 30.0,  # RF-pair degeneration, per side (ohm)
    "is_sat": 2e-16,
    "beta_f": 100.0,
    "rb": 40.0,
    "ikf": 0.02,
}


def gilbert_parameter_space(percent: float = 20.0) -> ParameterSpace:
    """+/- ``percent`` % uniform process space for the Gilbert cell."""
    return ParameterSpace(
        [uniform_percent(name, nom, percent) for name, nom in NOMINAL_PROCESS.items()]
    )


class GilbertCellMixer(RFDevice):
    """One manufactured Gilbert-cell mixer instance.

    Parameters
    ----------
    process:
        Name -> value overrides of :data:`NOMINAL_PROCESS`.
    design:
        Fixed constants.
    """

    def __init__(
        self,
        process: Optional[Dict[str, float]] = None,
        design: GilbertDesign = GilbertDesign(),
    ):
        self.design = design
        values = dict(NOMINAL_PROCESS)
        if process:
            unknown = set(process) - set(values)
            if unknown:
                raise KeyError(f"unknown process parameters: {sorted(unknown)}")
            values.update(process)
        self.process = values
        self.center_frequency = design.rf_frequency
        self.lo_frequency = design.lo_frequency

        # bias: mirror reference sets the tail current
        i_ee = (design.vcc - design.v_ref) / values["r_bias"]
        if i_ee <= 0:
            raise ValueError("bias network produces no tail current")
        self._i_ee = i_ee
        ic = i_ee / 2.0
        # high-injection correction on the RF pair's transconductance
        x = ic / values["ikf"]
        qb = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * x))
        self._gm = (ic / THERMAL_VOLTAGE) / qb
        self._qb = qb
        self._behavioral_poly: Optional[PolynomialNonlinearity] = None

    # ------------------------------------------------------------------
    # bias / small-signal accessors
    # ------------------------------------------------------------------
    @property
    def tail_current(self) -> float:
        """Total tail current I_EE (A)."""
        return self._i_ee

    @property
    def gm(self) -> float:
        """Per-side RF transconductance (S), qb-corrected."""
        return self._gm

    @property
    def if_frequency(self) -> float:
        return abs(self.design.rf_frequency - self.design.lo_frequency)

    @property
    def loop_gain(self) -> float:
        """Degeneration feedback factor ``T = gm R_E / 2``."""
        return self._gm * self.process["r_degen"] / 2.0

    # ------------------------------------------------------------------
    # specifications
    # ------------------------------------------------------------------
    def conversion_gain_db(self) -> float:
        """SSB voltage conversion gain, dB."""
        g_m = self._gm / (1.0 + self.loop_gain)
        av = (2.0 / math.pi) * g_m * self.process["r_load"]
        return db20(av)

    def nf_db(self) -> float:
        """SSB noise figure, dB."""
        rs = self.design.source_resistance
        r_noise = 2.0 * self.process["rb"] + self.process["r_degen"] + 1.0 / self._gm
        factor = 1.0 + (math.pi**2 / 4.0) * r_noise / rs
        return factor_to_nf_db(factor)

    def iip3_dbm(self) -> float:
        """Input-referred IP3, dBm."""
        v_iip3 = (
            4.0 * math.sqrt(2.0) * THERMAL_VOLTAGE * (1.0 + self.loop_gain) ** 1.5
        )
        return vpeak_to_dbm(v_iip3)

    def specs(self) -> SpecSet:
        return SpecSet(
            gain_db=self.conversion_gain_db(),
            nf_db=self.nf_db(),
            iip3_dbm=self.iip3_dbm(),
        )

    # ------------------------------------------------------------------
    # behavioral view
    # ------------------------------------------------------------------
    def _poly(self) -> PolynomialNonlinearity:
        if self._behavioral_poly is None:
            s = self.specs()
            self._behavioral_poly = PolynomialNonlinearity(
                *poly_from_specs(s.gain_db, s.iip3_dbm)
            )
        return self._behavioral_poly

    def envelope_poly(self):
        return self._poly().coefficients()

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        """RF-port record -> IF-port record (nonlinearity + translation)."""
        from repro.circuits.noisefig import added_output_noise_vrms
        from repro.dsp.mixer import Mixer, MixerHarmonics
        from repro.dsp.sources import tone

        nonlinear = self._poly().apply(wf)
        lo = tone(self.lo_frequency, wf.duration, wf.sample_rate, amplitude=1.0)
        lo = Waveform(lo.samples[: len(nonlinear)], wf.sample_rate, wf.t0)
        core = Mixer(conversion_gain=2.0, harmonics=MixerHarmonics.ideal())
        out = core.mix(nonlinear, lo)
        if rng is not None:
            s = self.specs()
            sigma = added_output_noise_vrms(s.gain_db, s.nf_db, wf.sample_rate / 2.0)
            out = Waveform(
                out.samples + rng.normal(0.0, sigma, size=len(out)),
                out.sample_rate,
                out.t0,
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.specs()
        return (
            f"GilbertCellMixer(gain={s.gain_db:.2f} dB, NF={s.nf_db:.2f} dB, "
            f"IIP3={s.iip3_dbm:.2f} dBm, I_EE={self._i_ee * 1e3:.2f} mA)"
        )
