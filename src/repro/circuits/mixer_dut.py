"""Behavioral downconversion-mixer DUT.

Mixers are the fourth device class in the paper's target list.  As a DUT
(rather than a load-board component) a mixer is characterized by its
conversion gain, noise figure and input IP3, like an amplifier -- but its
"gain" is measured between different frequencies (RF in, IF out).  For
signature testing the framework treats the mixer's RF->IF conversion as
the device polynomial and folds the frequency translation into the
signature path's second conversion stage.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.circuits.nonlinear import PolynomialNonlinearity, poly_from_specs
from repro.dsp.mixer import Mixer, MixerHarmonics
from repro.dsp.sources import tone
from repro.dsp.waveform import Waveform

__all__ = ["DownconversionMixerDUT"]


class DownconversionMixerDUT(RFDevice):
    """A downconversion mixer treated as a device under test.

    Parameters
    ----------
    rf_frequency:
        RF port design frequency, Hz.
    lo_frequency:
        LO frequency, Hz; the IF is ``|rf - lo|``.
    conversion_gain_db:
        SSB conversion gain (negative for a passive mixer).
    nf_db:
        SSB noise figure.
    iip3_dbm:
        Input-referred IP3.
    lo_drive_dbm:
        LO power the conversion gain is specified at (bookkeeping).
    """

    def __init__(
        self,
        rf_frequency: float,
        lo_frequency: float,
        conversion_gain_db: float = -6.5,
        nf_db: float = 7.0,
        iip3_dbm: float = 12.0,
        lo_drive_dbm: float = 7.0,
    ):
        if rf_frequency <= 0 or lo_frequency <= 0:
            raise ValueError("frequencies must be positive")
        if rf_frequency == lo_frequency:
            raise ValueError("RF and LO must differ for a nonzero IF")
        self.center_frequency = float(rf_frequency)
        self.lo_frequency = float(lo_frequency)
        self.lo_drive_dbm = float(lo_drive_dbm)
        self._gain_db = float(conversion_gain_db)
        self._nf_db = float(nf_db)
        self._iip3_dbm = float(iip3_dbm)
        a1, a2, a3 = poly_from_specs(conversion_gain_db, iip3_dbm)
        self._poly = PolynomialNonlinearity(a1=a1, a2=a2, a3=a3)

    @property
    def if_frequency(self) -> float:
        """Intermediate frequency ``|rf - lo|``."""
        return abs(self.center_frequency - self.lo_frequency)

    def specs(self) -> SpecSet:
        return SpecSet(
            gain_db=self._gain_db, nf_db=self._nf_db, iip3_dbm=self._iip3_dbm
        )

    def envelope_poly(self) -> Tuple[float, float, float]:
        return self._poly.coefficients()

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        """RF-port record -> IF-port record.

        Applies the nonlinearity at the RF port, then the frequency
        translation by an internal near-ideal switching core (the
        polynomial already owns the conversion gain, so the core's
        fundamental product is normalized to unity conversion).
        """
        nonlinear = self._poly.apply(wf)
        lo = tone(self.lo_frequency, wf.duration, wf.sample_rate, amplitude=1.0)
        lo = Waveform(lo.samples[: len(nonlinear)], wf.sample_rate, wf.t0)
        # ideal multiplier with gain 2 so a unit RF tone yields a unit IF tone
        core = Mixer(conversion_gain=2.0, harmonics=MixerHarmonics.ideal())
        out = core.mix(nonlinear, lo)
        if rng is not None:
            from repro.circuits.noisefig import added_output_noise_vrms

            sigma = added_output_noise_vrms(self._gain_db, self._nf_db, wf.sample_rate / 2.0)
            out = Waveform(
                out.samples + rng.normal(0.0, sigma, size=len(out)),
                out.sample_rate,
                out.t0,
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DownconversionMixerDUT(RF={self.center_frequency / 1e6:.0f} MHz, "
            f"LO={self.lo_frequency / 1e6:.0f} MHz, "
            f"gain={self._gain_db:.1f} dB)"
        )
