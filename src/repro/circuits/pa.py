"""Behavioral power-amplifier DUT.

The paper's target device classes include power amplifiers ("LNAs, power
amplifiers, attenuators and mixers", Section 1).  A PA differs from an LNA
in being driven much closer to saturation: its compression behaviour is
the spec of interest, its NF is high and mostly irrelevant, and its
envelope bandwidth can matter (bias-network memory).  This model captures
those traits on top of the same polynomial machinery.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.circuits.nonlinear import (
    PolynomialNonlinearity,
    p1db_dbm_from_iip3,
    poly_from_specs,
)
from repro.dsp.sources import dbm_to_vpeak
from repro.dsp.units import watts_to_dbm
from repro.dsp.waveform import Waveform

__all__ = ["PowerAmplifier"]


class PowerAmplifier(RFDevice):
    """A saturating power amplifier.

    Parameters
    ----------
    center_frequency:
        Design frequency, Hz.
    gain_db:
        Small-signal gain.
    p1db_out_dbm:
        Output-referred 1 dB compression point, dBm.  Internally converted
        to the equivalent IIP3 via the classic 9.64 dB relation.
    nf_db:
        Noise figure (PAs are noisy; default 6 dB).
    envelope_bandwidth:
        Optional single-pole envelope bandwidth, Hz.
    """

    def __init__(
        self,
        center_frequency: float,
        gain_db: float,
        p1db_out_dbm: float,
        nf_db: float = 6.0,
        envelope_bandwidth: Optional[float] = None,
    ):
        self.center_frequency = float(center_frequency)
        self._gain_db = float(gain_db)
        self._p1db_out_dbm = float(p1db_out_dbm)
        self._nf_db = float(nf_db)
        self.envelope_bandwidth = envelope_bandwidth
        # output P1dB -> input P1dB -> IIP3
        p1db_in = p1db_out_dbm - gain_db + 1.0
        self._iip3_dbm = p1db_in + 9.6357
        a1, a2, a3 = poly_from_specs(gain_db, self._iip3_dbm)
        self._poly = PolynomialNonlinearity(a1=a1, a2=a2, a3=a3)

    @property
    def p1db_in_dbm(self) -> float:
        """Input-referred 1 dB compression point."""
        return p1db_dbm_from_iip3(self._iip3_dbm)

    @property
    def p1db_out_dbm(self) -> float:
        """Output-referred 1 dB compression point."""
        return self._p1db_out_dbm

    @property
    def psat_out_dbm(self) -> float:
        """Saturated output power (polynomial extremum), dBm."""
        sat_in = self._poly.saturation_amplitude
        sat_out = float(self._poly(np.array([sat_in]))[0])
        if sat_out <= 0:
            return -math.inf
        watts = sat_out**2 / (2.0 * 50.0)
        return watts_to_dbm(watts)

    def specs(self) -> SpecSet:
        return SpecSet(
            gain_db=self._gain_db, nf_db=self._nf_db, iip3_dbm=self._iip3_dbm
        )

    def envelope_poly(self) -> Tuple[float, float, float]:
        return self._poly.coefficients()

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        out = self._poly.apply(wf)
        if self.envelope_bandwidth is not None:
            from repro.dsp.passband import envelope_one_pole

            fc = self.center_frequency
            nyquist = wf.sample_rate / 2.0
            half_width = 0.95 * min(fc, nyquist - fc)
            out = envelope_one_pole(out, fc, self.envelope_bandwidth, half_width)
        if rng is not None:
            from repro.circuits.noisefig import added_output_noise_vrms

            sigma = added_output_noise_vrms(self._gain_db, self._nf_db, wf.sample_rate / 2.0)
            out = Waveform(
                out.samples + rng.normal(0.0, sigma, size=len(out)),
                out.sample_rate,
                out.t0,
            )
        return out

    def drive_level_for_backoff(self, backoff_db: float) -> float:
        """Input power (dBm) that operates the PA ``backoff_db`` below P1dB."""
        return self.p1db_in_dbm - backoff_db

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PowerAmplifier(gain={self._gain_db:.1f} dB, "
            f"P1dB_out={self._p1db_out_dbm:.1f} dBm)"
        )
