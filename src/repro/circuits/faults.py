"""Catastrophic and gross-defect fault models.

Signature test is calibrated on *parametrically varying* good devices;
production also sees catastrophically defective parts (opens, shorts,
dead stages).  Such devices fall far off the calibration manifold, so
they are caught not by the regression but by outlier screening
(:mod:`repro.runtime.outlier`).  This module supplies the defect models
used to exercise that screen.

Each fault wraps a healthy :class:`~repro.circuits.device.RFDevice` and
distorts its behaviour the way the physical defect would.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.dsp.waveform import Waveform

__all__ = [
    "FaultyDevice",
    "open_input_fault",
    "shorted_output_fault",
    "dead_stage_fault",
    "bias_shift_fault",
    "FAULT_LIBRARY",
]


class FaultyDevice(RFDevice):
    """A device whose behaviour is a distorted version of a healthy one.

    Parameters
    ----------
    healthy:
        The underlying good device.
    name:
        Defect label (for reports).
    gain_delta_db:
        Gain change of the defect (large negative for opens/dead stages).
    extra_nf_db:
        Noise-figure degradation.
    iip3_delta_dbm:
        Linearity change (a damaged output stage compresses early).
    """

    def __init__(
        self,
        healthy: RFDevice,
        name: str,
        gain_delta_db: float = 0.0,
        extra_nf_db: float = 0.0,
        iip3_delta_dbm: float = 0.0,
    ):
        self.healthy = healthy
        self.name = name
        self.gain_delta_db = float(gain_delta_db)
        self.extra_nf_db = float(extra_nf_db)
        self.iip3_delta_dbm = float(iip3_delta_dbm)
        self.center_frequency = healthy.center_frequency

    def specs(self) -> SpecSet:
        base = self.healthy.specs()
        return SpecSet(
            gain_db=base.gain_db + self.gain_delta_db,
            nf_db=max(0.0, base.nf_db + self.extra_nf_db),
            iip3_dbm=base.iip3_dbm + self.iip3_delta_dbm,
        )

    def envelope_poly(self) -> Tuple[float, float, float]:
        from repro.circuits.nonlinear import poly_from_specs

        s = self.specs()
        return poly_from_specs(s.gain_db, s.iip3_dbm)

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        from repro.circuits.nonlinear import PolynomialNonlinearity
        from repro.circuits.noisefig import added_output_noise_vrms

        s = self.specs()
        out = PolynomialNonlinearity(*self.envelope_poly()).apply(wf)
        if rng is not None:
            sigma = added_output_noise_vrms(s.gain_db, s.nf_db, wf.sample_rate / 2.0)
            out = Waveform(
                out.samples + rng.normal(0.0, sigma, size=len(out)),
                out.sample_rate,
                out.t0,
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultyDevice({self.name!r}, on {self.healthy!r})"


def open_input_fault(healthy: RFDevice) -> FaultyDevice:
    """Open bond/trace at the input: almost nothing gets through."""
    return FaultyDevice(
        healthy, "open_input", gain_delta_db=-40.0, extra_nf_db=30.0
    )


def shorted_output_fault(healthy: RFDevice) -> FaultyDevice:
    """Output shorted to ground through a low impedance: heavy loss."""
    return FaultyDevice(
        healthy, "shorted_output", gain_delta_db=-25.0, extra_nf_db=10.0
    )


def dead_stage_fault(healthy: RFDevice) -> FaultyDevice:
    """An unbiased gain stage: the device is a lossy passive path."""
    base_gain = healthy.specs().gain_db
    return FaultyDevice(
        healthy,
        "dead_stage",
        gain_delta_db=-(base_gain + 10.0),  # net -10 dB through parasitics
        extra_nf_db=15.0,
        iip3_delta_dbm=20.0,  # passive paths are linear
    )


def bias_shift_fault(healthy: RFDevice) -> FaultyDevice:
    """A resistor defect pushing the bias far off: soft but gross.

    The subtlest library member -- only a few dB of gain and early
    compression -- sits near the edge of what outlier screening can
    separate from extreme process corners.
    """
    return FaultyDevice(
        healthy,
        "bias_shift",
        gain_delta_db=-5.0,
        extra_nf_db=2.0,
        iip3_delta_dbm=-8.0,
    )


#: name -> constructor, for sweeping the whole defect library
FAULT_LIBRARY = {
    "open_input": open_input_fault,
    "shorted_output": shorted_output_fault,
    "dead_stage": dead_stage_fault,
    "bias_shift": bias_shift_fault,
}
