"""Analog switch parasitics for test-access networks.

IEEE 1149.4 analog boundary modules (ABMs) reach the DUT through CMOS
transmission gates onto the AT1/AT2 analog test buses (Syri et al.).
Each closed switch contributes a series on-resistance -- a frequency-flat
insertion loss against the port impedances -- and each switched node a
shunt capacitance whose RC pole low-passes the accessed signal.  This
module is the behavioral model of one such switch stage; the load-board
layer (:class:`repro.loadboard.scenario_paths.AbmAccessPath`) chains
them into a full access path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dsp.units import db20

__all__ = ["SwitchParasitics"]


@dataclass(frozen=True)
class SwitchParasitics:
    """One series analog switch: on-resistance plus node capacitance.

    ``r_on_ohm`` is the closed-channel series resistance (tens of ohms
    for CMOS transmission gates); ``c_node_farads`` the total shunt
    capacitance of the switched node (junction + bus-segment trace).

    lint-ranges: r_on_ohm=[0, 1e4] c_node_farads=[1e-15, 1e-6]
    """

    r_on_ohm: float = 50.0
    c_node_farads: float = 15e-12

    def __post_init__(self):
        if self.r_on_ohm < 0:
            raise ValueError("switch on-resistance must be non-negative")
        if self.c_node_farads <= 0:
            raise ValueError("node capacitance must be positive")

    def insertion_loss_db(self, port_impedance_ohm: float = 50.0) -> float:
        """Series-resistance insertion loss between matched ports, in dB.

        The switch sits between a ``Z``-ohm source and a ``Z``-ohm load,
        so the delivered voltage scales by ``2Z / (2Z + R_on)``:

            loss = 20 log10(1 + R_on / (2 Z))
        """
        if port_impedance_ohm <= 0:
            raise ValueError("port impedance must be positive")
        return db20(1.0 + self.r_on_ohm / (2.0 * port_impedance_ohm))

    def pole_hz(self, port_impedance_ohm: float = 50.0) -> float:
        """Dominant RC pole of the switched node, in Hz.

        The node capacitance is driven through the switch resistance in
        series with the port impedance: ``f = 1 / (2 pi (R_on + Z) C)``.
        """
        if port_impedance_ohm <= 0:
            raise ValueError("port impedance must be positive")
        r_total = self.r_on_ohm + port_impedance_ohm
        return 1.0 / (2.0 * math.pi * r_total * self.c_node_farads)
