"""Determinism rules: every Monte-Carlo path must be seed-reproducible.

The calibration map ``A = A_p . A_s^+`` (paper Eq. 3) is fit from
simulated device populations; if any link in that chain draws from an
unseeded or global RNG, the map -- and every downstream spec prediction
-- is irreproducible.  Three rules enforce the repo's RNG discipline:

* ``determinism-unseeded-rng`` -- ``np.random.default_rng()`` with no
  seed, except as the documented ``rng=None`` fallback idiom::

      rng = rng if rng is not None else np.random.default_rng()

      if rng is None:
          rng = np.random.default_rng()

  (the fallback keeps library APIs convenient in exploratory use while
  every experiment / production path passes a seeded generator down).
* ``determinism-legacy-np-random`` -- any use of the legacy global-state
  API (``np.random.seed``, ``np.random.normal``, ``np.random.rand``,
  ``np.random.RandomState``, ...).  Only the ``Generator`` API is
  allowed; the global stream is cross-module shared state.
* ``determinism-module-rng`` -- RNG construction at module level.  Even
  a *seeded* module-level generator is hidden mutable state: its stream
  position depends on import order and every prior caller.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.engine import Finding, ModuleSource, Rule

__all__ = [
    "UnseededRngRule",
    "LegacyNpRandomRule",
    "ModuleLevelRngRule",
    "DETERMINISM_RULES",
]

#: ``np.random`` attributes that are part of the modern, explicit API.
ALLOWED_NP_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Constructors whose module-level use creates shared RNG state.
RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Generator"})


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``np.random.default_rng``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_np_random_chain(chain: Optional[str]) -> bool:
    if chain is None:
        return False
    return chain.startswith("np.random.") or chain.startswith("numpy.random.")


def _rng_callee_name(node: ast.Call) -> Optional[str]:
    """Name of the RNG constructor being called, if any."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in RNG_CONSTRUCTORS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in RNG_CONSTRUCTORS:
        chain = _attr_chain(func)
        if chain is None or _is_np_random_chain(chain) or "." not in chain:
            return func.attr
    return None


def _build_parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _is_none_check(test: ast.AST) -> bool:
    """True for ``X is None`` / ``X is not None`` comparisons."""
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


def _is_fallback_idiom(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> bool:
    """Is this unseeded call the documented ``rng=None`` fallback?"""
    node: ast.AST = call
    while node in parents:
        parent = parents[node]
        if isinstance(parent, ast.IfExp) and _is_none_check(parent.test):
            return True
        if isinstance(parent, ast.If) and _is_none_check(parent.test):
            return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return False
        node = parent
    return False


class UnseededRngRule(Rule):
    name = "determinism-unseeded-rng"
    description = (
        "np.random.default_rng() with no seed outside the documented "
        "`rng=None` fallback idiom"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        parents = _build_parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _rng_callee_name(node) != "default_rng":
                continue
            if node.args or node.keywords:
                continue
            if _is_fallback_idiom(node, parents):
                continue
            yield self.finding(
                module,
                node,
                "unseeded np.random.default_rng(); pass a seed (or thread an "
                "rng parameter with the `rng if rng is not None else "
                "default_rng()` fallback) so the run is reproducible",
            )


class LegacyNpRandomRule(Rule):
    name = "determinism-legacy-np-random"
    description = (
        "legacy global-state np.random.<name> API (seed/rand/normal/...); "
        "use np.random.default_rng() generators"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if not _is_np_random_chain(chain):
                continue
            leaf = chain.split(".")[-1]
            if leaf in ALLOWED_NP_RANDOM_ATTRS:
                continue
            yield self.finding(
                module,
                node,
                f"legacy global-state RNG `{chain}`; use an explicit "
                "np.random.Generator (np.random.default_rng(seed)) instead",
            )


class ModuleLevelRngRule(Rule):
    name = "determinism-module-rng"
    description = (
        "RNG constructed at module level (shared mutable stream state, "
        "even when seeded)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Call) and _rng_callee_name(node) is not None:
                    yield self.finding(
                        module,
                        node,
                        "module-level RNG state; construct generators inside "
                        "the function or class that uses them and thread "
                        "seeds explicitly",
                    )


DETERMINISM_RULES = (UnseededRngRule(), LegacyNpRandomRule(), ModuleLevelRngRule())
