"""mtime-keyed per-file result cache for incremental linting.

``make lint`` runs on every push and before every commit; re-parsing
~200 files to re-derive facts that have not changed is wasted time.  The
cache stores, per file, the local findings *and* the cross-module
:class:`~repro.analysis.project.ModuleSummary`, keyed on the file's
``(mtime_ns, size)``.  A warm re-run after a one-file edit re-analyzes
exactly that file; the project-level rules then replay over the cached
summaries (cheap pure-python dictionaries, no ASTs), so interprocedural
findings stay correct even when the *other* end of a call edge is the
file that changed.

The whole cache is invalidated automatically when the linter itself
changes: the key includes a signature over the rule names and the
``repro.analysis`` package's own file stats.  The manifest is one JSON
file (default ``.lint-cache/lint-cache.json``), written atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding, Rule

__all__ = ["LintCache", "rules_signature"]

CACHE_SCHEMA_VERSION = 2
_MANIFEST_NAME = "lint-cache.json"


def rules_signature(rules: Sequence[Rule]) -> str:
    """Hash identifying the rule set *and* the analyzer implementation.

    Any edit to a module in ``repro.analysis`` -- including the
    ``absint/`` subpackage, hence the recursive walk -- bumps the
    signature via the package files' stats, so a stale cache can never
    mask a behavior change in the linter itself.  Range annotations live
    in the analyzed files and invalidate per-file entries through the
    ordinary ``(mtime_ns, size)`` keys.
    """
    digest = hashlib.sha256()
    digest.update(str(CACHE_SCHEMA_VERSION).encode())
    for name in sorted(rule.name for rule in rules):
        digest.update(name.encode())
        digest.update(b"\x00")
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for root, dirs, files in os.walk(package_dir):
        dirs[:] = sorted(
            d for d in dirs if d != "__pycache__" and not d.startswith(".")
        )
        for entry in sorted(files):
            if not entry.endswith(".py"):
                continue
            full = os.path.join(root, entry)
            try:
                stat = os.stat(full)
            except OSError:
                continue
            rel = os.path.relpath(full, package_dir)
            digest.update(f"{rel}:{stat.st_mtime_ns}:{stat.st_size}".encode())
    return digest.hexdigest()


class LintCache:
    """One manifest of per-file lint results, keyed by file stats."""

    def __init__(self, cache_dir: str, signature: str):
        self.cache_dir = cache_dir
        self.signature = signature
        self.manifest_path = os.path.join(cache_dir, _MANIFEST_NAME)
        self.hits = 0
        self.misses = 0
        self._files: Dict[str, Dict[str, object]] = {}
        #: one cached cross-module result: {"key": ..., "findings": [...]}
        self._project: Optional[Dict[str, object]] = None
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if (
            data.get("schema") != CACHE_SCHEMA_VERSION
            or data.get("signature") != self.signature
        ):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files
        project = data.get("project")
        if isinstance(project, dict):
            self._project = project

    @staticmethod
    def _key(path: str) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return stat.st_mtime_ns, stat.st_size

    def lookup(
        self, path: str
    ) -> Optional[Tuple[List[Finding], Optional[Dict[str, object]]]]:
        """Cached (findings, summary dict) when the file is unchanged."""
        abspath = os.path.abspath(path)
        entry = self._files.get(abspath)
        key = self._key(abspath)
        if (
            entry is None
            or key is None
            or entry.get("mtime_ns") != key[0]
            or entry.get("size") != key[1]
        ):
            self.misses += 1
            return None
        self.hits += 1
        findings = [
            Finding(
                path=f["path"],
                line=f["line"],
                col=f["col"],
                rule=f["rule"],
                message=f["message"],
            )
            for f in entry.get("findings", [])
        ]
        return findings, entry.get("summary")

    def store(
        self,
        path: str,
        findings: Sequence[Finding],
        summary: Optional[Dict[str, object]],
    ) -> None:
        abspath = os.path.abspath(path)
        key = self._key(abspath)
        if key is None:
            return
        self._files[abspath] = {
            "mtime_ns": key[0],
            "size": key[1],
            "findings": [f.to_dict() for f in findings],
            "summary": summary,
        }
        self._dirty = True

    @staticmethod
    def project_key(stats: Sequence[Tuple[str, int, int]]) -> str:
        """Hash of every analyzed file's ``(path, mtime_ns, size)``.

        When nothing under the analyzed roots changed, the cross-module
        pass (symbol resolution, dataflow, the absint fixpoint) would
        recompute exactly the same findings -- so a warm run replays
        them from the manifest instead.
        """
        digest = hashlib.sha256()
        for path, mtime_ns, size in sorted(stats):
            digest.update(f"{path}:{mtime_ns}:{size}".encode())
        return digest.hexdigest()

    def lookup_project(self, key: str) -> Optional[List[Finding]]:
        """Cached cross-module findings for an identical file set."""
        if self._project is None or self._project.get("key") != key:
            return None
        return [
            Finding(
                path=f["path"],
                line=f["line"],
                col=f["col"],
                rule=f["rule"],
                message=f["message"],
            )
            for f in self._project.get("findings", [])
        ]

    def store_project(self, key: str, findings: Sequence[Finding]) -> None:
        self._project = {
            "key": key,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Write the manifest atomically (best-effort on read-only dirs).

        A no-op on fully-warm runs: serializing an unchanged manifest is
        the single most expensive step of an incremental run.
        """
        if not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
        }
        text = json.dumps(payload, separators=(",", ":"))
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".lint-cache-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, self.manifest_path)
        except OSError:
            return
        self._dirty = False
