"""mtime-keyed per-file result cache for incremental linting.

``make lint`` runs on every push and before every commit; re-parsing
~200 files to re-derive facts that have not changed is wasted time.  The
cache stores, per file, the local findings *and* the cross-module
:class:`~repro.analysis.project.ModuleSummary`, keyed on the file's
``(mtime_ns, size)``.  A warm re-run after a one-file edit re-analyzes
exactly that file; the project-level rules then replay over the cached
summaries (cheap pure-python dictionaries, no ASTs), so interprocedural
findings stay correct even when the *other* end of a call edge is the
file that changed.

The whole cache is invalidated automatically when the linter itself
changes: the key includes a signature over the rule names and the
``repro.analysis`` package's own file stats.  The manifest is one JSON
file (default ``.lint-cache/lint-cache.json``), written atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding, Rule

__all__ = ["LintCache", "rules_signature"]

CACHE_SCHEMA_VERSION = 1
_MANIFEST_NAME = "lint-cache.json"


def rules_signature(rules: Sequence[Rule]) -> str:
    """Hash identifying the rule set *and* the analyzer implementation.

    Any edit to a module in ``repro.analysis`` (new rule logic, changed
    inference) bumps the signature via the package files' stats, so a
    stale cache can never mask a behavior change in the linter itself.
    """
    digest = hashlib.sha256()
    digest.update(str(CACHE_SCHEMA_VERSION).encode())
    for name in sorted(rule.name for rule in rules):
        digest.update(name.encode())
        digest.update(b"\x00")
    package_dir = os.path.dirname(os.path.abspath(__file__))
    try:
        entries = sorted(os.listdir(package_dir))
    except OSError:
        entries = []
    for entry in entries:
        if not entry.endswith(".py"):
            continue
        full = os.path.join(package_dir, entry)
        try:
            stat = os.stat(full)
        except OSError:
            continue
        digest.update(f"{entry}:{stat.st_mtime_ns}:{stat.st_size}".encode())
    return digest.hexdigest()


class LintCache:
    """One manifest of per-file lint results, keyed by file stats."""

    def __init__(self, cache_dir: str, signature: str):
        self.cache_dir = cache_dir
        self.signature = signature
        self.manifest_path = os.path.join(cache_dir, _MANIFEST_NAME)
        self.hits = 0
        self.misses = 0
        self._files: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if (
            data.get("schema") != CACHE_SCHEMA_VERSION
            or data.get("signature") != self.signature
        ):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    @staticmethod
    def _key(path: str) -> Optional[Tuple[int, int]]:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return stat.st_mtime_ns, stat.st_size

    def lookup(
        self, path: str
    ) -> Optional[Tuple[List[Finding], Optional[Dict[str, object]]]]:
        """Cached (findings, summary dict) when the file is unchanged."""
        abspath = os.path.abspath(path)
        entry = self._files.get(abspath)
        key = self._key(abspath)
        if (
            entry is None
            or key is None
            or entry.get("mtime_ns") != key[0]
            or entry.get("size") != key[1]
        ):
            self.misses += 1
            return None
        self.hits += 1
        findings = [
            Finding(
                path=f["path"],
                line=f["line"],
                col=f["col"],
                rule=f["rule"],
                message=f["message"],
            )
            for f in entry.get("findings", [])
        ]
        return findings, entry.get("summary")

    def store(
        self,
        path: str,
        findings: Sequence[Finding],
        summary: Optional[Dict[str, object]],
    ) -> None:
        abspath = os.path.abspath(path)
        key = self._key(abspath)
        if key is None:
            return
        self._files[abspath] = {
            "mtime_ns": key[0],
            "size": key[1],
            "findings": [f.to_dict() for f in findings],
            "summary": summary,
        }
        self._dirty = True

    def save(self) -> None:
        """Write the manifest atomically (best-effort on read-only dirs).

        A no-op on fully-warm runs: serializing an unchanged manifest is
        the single most expensive step of an incremental run.
        """
        if not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "signature": self.signature,
            "files": self._files,
        }
        text = json.dumps(payload, separators=(",", ":"))
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".lint-cache-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, self.manifest_path)
        except OSError:
            return
        self._dirty = False
