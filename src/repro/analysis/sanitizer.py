"""Runtime floating-point sanitizer: make NaN/Inf *births* loud.

Static rules catch domain mixing they can see; they cannot catch a
``log10(0)`` fed by data.  The signature pipeline is exactly the kind of
code where a NaN born in one stage (a zero-power bin, a degenerate
covariance) propagates silently through the calibration solve and
surfaces three modules later as a slightly-wrong spec prediction --
the worst possible failure mode for a framework whose whole claim is
that the cheap signature can be *trusted* in place of real
measurements.

:func:`fp_sanitizer` turns NumPy's ``invalid`` and ``divide`` warnings
into :class:`FloatingPointError` at the operation that created the
non-finite value.  The test suite runs every test under it (an autouse
fixture in ``tests/conftest.py``); tests exercising intentional
non-finite arithmetic opt out with ``@pytest.mark.allow_nonfinite``.

Library code with a *legitimate* non-finite (``watts_to_dbm(0.0)``
returning ``-inf`` as a documented sentinel) scopes its own
``np.errstate`` locally, so it stays quiet under the sanitizer without
the caller giving up coverage.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["fp_sanitizer", "SANITIZER_MARKER"]

#: pytest marker name used to opt a test out of the sanitizer.
SANITIZER_MARKER = "allow_nonfinite"


@contextmanager
def fp_sanitizer() -> Iterator[None]:
    """Raise :class:`FloatingPointError` where NaN/Inf are created.

    ``invalid`` (0/0, inf-inf, sqrt/log of a negative) and ``divide``
    (x/0, log of 0) raise; ``overflow`` and ``underflow`` keep NumPy's
    defaults -- overflow to inf in intermediate magnitudes is ordinary
    in envelope simulation and is not, by itself, a propagating bug.
    """
    with np.errstate(invalid="raise", divide="raise"):
        yield
