"""Unit-domain rules: keep dB and linear quantities from silently mixing.

Every spec the paper predicts (gain, NF, IIP3; Eqs. 6-10) lives in the
log domain, while waveform samples, voltage gains, and noise factors are
linear.  Adding a dB quantity to a linear one -- or spelling a domain
crossing as raw ``10*log10`` arithmetic instead of a named converter --
produces numbers that look plausible and are silently wrong.  Two rules
guard against that:

* ``units-inline-db-conversion`` -- inline ``10*log10(x)`` /
  ``20*log10(x)`` / ``10**(x/10)`` / ``10**(x/20)`` arithmetic anywhere
  except the designated converter module :mod:`repro.dsp.units`.
* ``units-mixed-domain`` -- ``+``/``-`` between an operand whose name
  marks it as dB-domain (``gain_db``, ``iip3_dbm``, ...) and one whose
  name marks it as linear-domain (``vout_vrms``, ``noise_watts``, ...),
  and ``*``/``/`` between two dB-domain operands (dB quantities add;
  their product is meaningless).

Domain classification is by naming convention: identifiers are split on
underscores, a ``db``/``dbm`` token marks the dB domain, and tokens like
``vrms``/``watts``/``vpeak`` mark the linear domain.  Converter calls
are classified by what they return (``undb(gain_db)`` is linear), and a
``<src>_to_<dst>`` function name is classified by its destination
(``vpeak_to_dbm(...)`` is dB).  Names matching neither convention are
neutral and never flagged.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import Finding, ModuleSource, Rule

__all__ = ["InlineDbConversionRule", "MixedDomainRule", "UNITS_RULES"]

#: Module(s) where raw dB arithmetic is the whole point.
DESIGNATED_CONVERSION_MODULES: Tuple[str, ...] = (
    os.path.join("repro", "dsp", "units.py"),
)

#: Name tokens marking a quantity as log-domain.
DB_TOKENS = frozenset({"db", "dbm", "dbc", "dbv"})

#: Name tokens marking a quantity as linear-domain.
LINEAR_TOKENS = frozenset(
    {
        "vpeak",
        "vrms",
        "vpp",
        "volts",
        "volt",
        "vout",
        "vin",
        "watts",
        "milliwatts",
        "amplitude",
        "amplitudes",
        "linear",
        "ratio",
        "factor",
    }
)

#: Converter functions and the domain of their *return value*.
CONVERTER_RETURNS = {
    "db": "db",
    "db20": "db",
    "undb": "linear",
    "undb20": "linear",
}

_LOG_FACTORS = (10, 10.0, 20, 20.0)


def _is_log10_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "log10"
    if isinstance(func, ast.Attribute):
        return func.attr == "log10"
    return False


def _is_const(node: ast.AST, values: Tuple[float, ...]) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value in values
    )


class InlineDbConversionRule(Rule):
    name = "units-inline-db-conversion"
    description = (
        "inline 10*log10 / 10**(x/10) dB arithmetic outside repro.dsp.units; "
        "use db()/undb()/db20()/undb20()/watts_to_dbm()/dbm_to_watts()"
    )
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        normalized = os.path.normpath(module.path)
        if any(normalized.endswith(m) for m in DESIGNATED_CONVERSION_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Mult):
                pairs = ((node.left, node.right), (node.right, node.left))
                for factor, other in pairs:
                    if _is_const(factor, _LOG_FACTORS) and _is_log10_call(other):
                        kind = "db20()" if factor.value in (20, 20.0) else "db()"
                        yield self.finding(
                            module,
                            node,
                            f"inline linear->dB conversion "
                            f"`{factor.value:g}*log10(...)`; use "
                            f"repro.dsp.units.{kind}",
                        )
                        break
            elif isinstance(node.op, ast.Pow):
                if not _is_const(node.left, (10, 10.0)):
                    continue
                exponent = node.right
                if isinstance(exponent, ast.BinOp) and isinstance(exponent.op, ast.Div):
                    if _is_const(exponent.right, _LOG_FACTORS):
                        denom = exponent.right.value
                        kind = "undb20()" if denom in (20, 20.0) else "undb()"
                        yield self.finding(
                            module,
                            node,
                            f"inline dB->linear conversion `10**(x/{denom:g})`; "
                            f"use repro.dsp.units.{kind}",
                        )


def _tokens_of(name: str) -> Tuple[str, ...]:
    return tuple(t for t in name.lower().split("_") if t)


def _domain_of_name(name: str) -> Optional[str]:
    """Domain implied by an identifier, honoring ``<src>_to_<dst>`` names."""
    tokens = _tokens_of(name)
    if "to" in tokens:
        # a converter-style name describes its destination domain
        last_to = len(tokens) - 1 - tokens[::-1].index("to")
        tokens = tokens[last_to + 1:]
    if any(t in DB_TOKENS for t in tokens):
        return "db"
    if any(t in LINEAR_TOKENS for t in tokens):
        return "linear"
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _domain_of(node: ast.AST) -> Optional[str]:
    """Best-effort unit domain of an expression, or ``None`` if unknown."""
    if isinstance(node, ast.Name):
        return _domain_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return _domain_of_name(node.attr)
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name is None:
            return None
        if name in CONVERTER_RETURNS:
            return CONVERTER_RETURNS[name]
        return _domain_of_name(name)
    if isinstance(node, ast.UnaryOp):
        return _domain_of(node.operand)
    if isinstance(node, ast.Subscript):
        return _domain_of(node.value)
    return None


class MixedDomainRule(Rule):
    name = "units-mixed-domain"
    description = (
        "arithmetic mixing dB-named and linear-named operands without a "
        "db()/undb() conversion in between"
    )
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            left, right = _domain_of(node.left), _domain_of(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if {left, right} == {"db", "linear"}:
                    yield self.finding(
                        module,
                        node,
                        "adds/subtracts a dB-domain operand and a linear-domain "
                        "operand; convert one side with repro.dsp.units "
                        "(db/undb/db20/undb20) first",
                    )
            elif isinstance(node.op, (ast.Mult, ast.Div)):
                if left == "db" and right == "db":
                    yield self.finding(
                        module,
                        node,
                        "multiplies/divides two dB-domain operands; dB "
                        "quantities compose by addition -- convert to linear "
                        "with repro.dsp.units.undb()/undb20() first",
                    )


UNITS_RULES = (InlineDbConversionRule(), MixedDomainRule())
