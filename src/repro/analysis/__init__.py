"""signature-lint: domain-aware static analysis for the repro library.

The paper's framework substitutes one cheap signature for a battery of
per-spec RF measurements; that substitution is only sound if the
numerics behind the calibration map are trustworthy.  This package is
the machine-checked half of that trust: an AST lint engine
(:mod:`repro.analysis.engine`) plus rule sets tuned to this codebase's
failure modes --

* :mod:`repro.analysis.units` -- dB vs. linear domain mixing, inline
  ``10*log10`` conversions outside :mod:`repro.dsp.units`;
* :mod:`repro.analysis.determinism` -- unseeded / legacy / module-level
  RNG use that would make Monte-Carlo calibration irreproducible;
* :mod:`repro.analysis.api` -- ``__all__`` discipline and star imports;
* :mod:`repro.analysis.numerics` -- in-place ndarray-parameter mutation,
  float ``==``, ``assert`` in library code;
* :mod:`repro.analysis.verifyrules` -- ``verify-relation-seeded``:
  ``@relation`` metamorphic relations must take an explicit ``rng``/seed
  parameter and never draw from global RNG state.

On top of the per-file rules sit *project-level* rules that resolve
imports and call edges across the whole repository
(:mod:`repro.analysis.project`):

* :mod:`repro.analysis.dataflow` -- ``units-domain-flow``: a value in
  one unit domain (log / linear / frequency) flowing across a call edge
  into a parameter that expects another;
* :mod:`repro.analysis.parallel` -- ``par-unpicklable-task``,
  ``par-captured-rng``, ``par-global-mutation`` for callables reachable
  from ``map_tasks`` dispatch sites;
* :mod:`repro.analysis.contracts` -- ``batch-shape-mismatch`` for
  ``*_batch`` / ``*_matrix`` sibling APIs fed the wrong-shaped value;
* :mod:`repro.analysis.absint` -- interval abstract interpretation of
  the numeric chain (``num-log-nonpositive``, ``num-div-zero``,
  ``num-cancellation``, ``num-float32-unsafe``) plus the
  ``--numerics-report`` float32 certification artifact;
* :mod:`repro.analysis.concurrency` -- lockset/lock-order analysis over
  thread roots discovered in the call graph
  (``conc-unlocked-shared-write``, ``conc-lock-escape``,
  ``conc-lock-order-cycle``, ``conc-blocking-under-lock``) plus the
  opt-in runtime lock-order sanitizer used by the test suite and
  ``repro soak --sanitize-locks``.

Run it with ``python -m repro.analysis [paths]`` (or ``python -m repro
lint``); suppress a finding in place with a ``# repro-lint:
disable=<rule>`` comment (``lint-unknown-suppression`` flags typos in
those comments).  :func:`analyze_project` adds an mtime-keyed result
cache so warm re-runs only re-parse edited files.
``tests/analysis/test_self_clean.py`` keeps the repository itself
lint-clean.
"""

from __future__ import annotations

from typing import List

from repro.analysis.driver import ProjectReport, analyze_project
from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    UnjustifiedSuppressionRule,
    UnknownSuppressionRule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    parse_suppressions,
)

__all__ = [
    "Finding",
    "ModuleSource",
    "ProjectReport",
    "Rule",
    "UnjustifiedSuppressionRule",
    "UnknownSuppressionRule",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "iter_python_files",
    "parse_suppressions",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in rule, in reporting order."""
    from repro.analysis.absint.rules import ABSINT_RULES
    from repro.analysis.api import API_RULES
    from repro.analysis.concurrency.rules import CONCURRENCY_RULES
    from repro.analysis.contracts import CONTRACT_RULES
    from repro.analysis.dataflow import DATAFLOW_RULES
    from repro.analysis.determinism import DETERMINISM_RULES
    from repro.analysis.numerics import NUMERICS_RULES
    from repro.analysis.parallel import PARALLEL_RULES
    from repro.analysis.units import UNITS_RULES
    from repro.analysis.verifyrules import VERIFY_RULES

    rules: List[Rule] = [
        *UNITS_RULES,
        *DETERMINISM_RULES,
        *API_RULES,
        *NUMERICS_RULES,
        *DATAFLOW_RULES,
        *PARALLEL_RULES,
        *CONTRACT_RULES,
        *VERIFY_RULES,
        *ABSINT_RULES,
        *CONCURRENCY_RULES,
    ]
    rules.append(UnknownSuppressionRule(rule.name for rule in rules))
    rules.append(UnjustifiedSuppressionRule())
    return rules
