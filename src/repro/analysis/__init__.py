"""signature-lint: domain-aware static analysis for the repro library.

The paper's framework substitutes one cheap signature for a battery of
per-spec RF measurements; that substitution is only sound if the
numerics behind the calibration map are trustworthy.  This package is
the machine-checked half of that trust: an AST lint engine
(:mod:`repro.analysis.engine`) plus rule sets tuned to this codebase's
failure modes --

* :mod:`repro.analysis.units` -- dB vs. linear domain mixing, inline
  ``10*log10`` conversions outside :mod:`repro.dsp.units`;
* :mod:`repro.analysis.determinism` -- unseeded / legacy / module-level
  RNG use that would make Monte-Carlo calibration irreproducible;
* :mod:`repro.analysis.api` -- ``__all__`` discipline and star imports;
* :mod:`repro.analysis.numerics` -- in-place ndarray-parameter mutation,
  float ``==``, ``assert`` in library code.

Run it with ``python -m repro.analysis [paths]`` (or ``python -m repro
lint``); suppress a finding in place with a ``# repro-lint:
disable=<rule>`` comment.  ``tests/analysis/test_self_clean.py`` keeps
the repository itself lint-clean.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    parse_suppressions,
)

__all__ = [
    "Finding",
    "ModuleSource",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "parse_suppressions",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in rule, in reporting order."""
    from repro.analysis.api import API_RULES
    from repro.analysis.determinism import DETERMINISM_RULES
    from repro.analysis.numerics import NUMERICS_RULES
    from repro.analysis.units import UNITS_RULES

    return [*UNITS_RULES, *DETERMINISM_RULES, *API_RULES, *NUMERICS_RULES]
