"""Project-level lint driver: cache-aware per-file pass + cross-module rules.

:func:`analyze_project` is what ``python -m repro.analysis`` (and
``make lint``) actually runs.  It splits the rule set in two:

* **file rules** (plain :class:`Rule`) run per file, exactly as
  :func:`repro.analysis.engine.analyze_source` would, and their findings
  are cached alongside the file's :class:`ModuleSummary`;
* **project rules** (:class:`~repro.analysis.project.ProjectRule`)
  replay every run over the full set of summaries -- cached or fresh --
  through a :class:`~repro.analysis.project.ProjectIndex`, so a
  one-file edit still re-judges every call edge that touches it while
  re-parsing only the edited file.

Project-rule findings are filtered through the *owning file's*
suppressions and test-file status, mirroring the per-file engine's
semantics; a ``# repro-lint: disable=units-domain-flow`` on the call
line works the same whether the rule is local or interprocedural.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cache import LintCache, rules_signature
from repro.analysis.engine import (
    Finding,
    ModuleSource,
    PARSE_ERROR_RULE,
    Rule,
    iter_python_files,
)
from repro.analysis.project import (
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
    summarize_module,
)

__all__ = ["ProjectReport", "analyze_project"]


@dataclass
class ProjectReport:
    """Everything one lint run produced, plus cache accounting."""

    findings: List[Finding] = field(default_factory=list)
    #: files parsed and analyzed this run (cache misses)
    analyzed: int = 0
    #: files served entirely from the cache
    cached: int = 0
    #: the run's module summaries (for post-hoc project queries like
    #: the --numerics-report certification; not serialized anywhere)
    summaries: List[ModuleSummary] = field(default_factory=list, repr=False)
    #: True when the cross-module findings were replayed from the cache
    #: instead of re-running symbol resolution and the absint fixpoint
    project_from_cache: bool = False

    @property
    def files(self) -> int:
        return self.analyzed + self.cached

    def rule_counts(self) -> Dict[str, int]:
        """Findings per rule name, sorted descending then alphabetical."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def _analyze_one(
    path: str, file_rules: Sequence[Rule]
) -> Tuple[List[Finding], Optional[Dict[str, object]]]:
    """Fresh per-file analysis: (local findings, summary dict or None)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        module = ModuleSource.from_source(source, path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule=PARSE_ERROR_RULE,
            message=f"could not parse: {exc.msg}",
        )
        return [finding], None
    findings: List[Finding] = []
    for rule in file_rules:
        if rule.library_only and module.is_test:
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings), summarize_module(module).to_dict()


def _project_findings(
    summaries: Sequence[ModuleSummary], project_rules: Sequence[ProjectRule]
) -> List[Finding]:
    """Cross-module findings, filtered by the owning file's suppressions."""
    if not project_rules or not summaries:
        return []
    index = ProjectIndex(summaries)
    findings: Set[Finding] = set()
    for rule in project_rules:
        for finding in rule.check_project(index):
            owner = index.by_path.get(finding.path)
            if owner is not None:
                if rule.library_only and owner.is_test:
                    continue
                if owner.is_suppressed(finding.line, finding.rule):
                    continue
            findings.add(finding)
    return sorted(findings)


def analyze_project(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    cache_dir: Optional[str] = None,
) -> ProjectReport:
    """Run the full rule set over ``paths`` with optional incremental cache.

    ``rules`` defaults to :func:`repro.analysis.default_rules`.  With
    ``cache_dir`` set, unchanged files (same ``mtime_ns`` and size,
    same rule set, same analyzer sources) are served from the manifest
    and only edited files are re-parsed; project rules always re-run
    over the complete summary set, so interprocedural findings never go
    stale.
    """
    if rules is None:
        from repro.analysis import default_rules

        rules = default_rules()
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    cache = (
        LintCache(cache_dir, rules_signature(rules))
        if cache_dir is not None
        else None
    )

    report = ProjectReport()
    summaries: List[ModuleSummary] = []
    file_stats: List[Tuple[str, int, int]] = []
    for path in iter_python_files(paths):
        cached_entry = cache.lookup(path) if cache is not None else None
        if cached_entry is not None:
            local_findings, summary_dict = cached_entry
            report.cached += 1
        else:
            local_findings, summary_dict = _analyze_one(path, file_rules)
            report.analyzed += 1
            if cache is not None:
                cache.store(path, local_findings, summary_dict)
        report.findings.extend(local_findings)
        if summary_dict is not None:
            summaries.append(ModuleSummary.from_dict(summary_dict))
        if cache is not None:
            try:
                stat = os.stat(path)
                file_stats.append(
                    (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
                )
            except OSError:
                pass

    # cross-module pass: replayed from the manifest when nothing changed,
    # so a fully-warm run never re-runs symbol resolution or the absint
    # fixpoint (see tests/analysis/test_absint_cache.py)
    project_findings: Optional[List[Finding]] = None
    project_key: Optional[str] = None
    if cache is not None:
        project_key = LintCache.project_key(file_stats)
        project_findings = cache.lookup_project(project_key)
        report.project_from_cache = project_findings is not None
    if project_findings is None:
        project_findings = _project_findings(summaries, project_rules)
        if cache is not None and project_key is not None:
            cache.store_project(project_key, project_findings)

    report.findings.extend(project_findings)
    report.findings.sort()
    report.summaries = summaries
    if cache is not None:
        cache.save()
    return report
