"""API-surface rules: every public name is declared, no wildcard imports.

A production test library is consumed programmatically; its import
surface is part of the contract.  Three rules keep that surface
explicit:

* ``api-missing-all`` -- every library module defines ``__all__``
  (modules with nothing to export declare ``__all__ = []``).
* ``api-undeclared-public`` -- every public (non-underscore) top-level
  ``def`` / ``class`` appears in its module's ``__all__``; anything
  intentionally internal gets a leading underscore instead.
* ``api-star-import`` -- no ``from x import *``: wildcard imports defeat
  both static analysis and the ``__all__`` contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import Finding, ModuleSource, Rule

__all__ = [
    "MissingAllRule",
    "UndeclaredPublicRule",
    "StarImportRule",
    "API_RULES",
]


def _collect_all(tree: ast.Module) -> Optional[Set[str]]:
    """Names declared in ``__all__``, or ``None`` if it is never assigned.

    Handles plain assignment plus ``+=`` / ``.extend`` / ``.append``
    growth, collecting every string literal involved.
    """
    names: Optional[Set[str]] = None
    for stmt in tree.body:
        target_names: List[ast.expr] = []
        values: List[Optional[ast.expr]] = []
        if isinstance(stmt, ast.Assign):
            target_names = stmt.targets
            values = [stmt.value]
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            target_names = [stmt.target]
            values = [stmt.value]
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "__all__"
                and func.attr in ("extend", "append")
            ):
                target_names = [func.value]
                values = list(stmt.value.args)
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in target_names
        ):
            continue
        if names is None:
            names = set()
        for value in values:
            if value is None:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    names.add(node.value)
    return names


class MissingAllRule(Rule):
    name = "api-missing-all"
    description = "library module does not define __all__"
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if _collect_all(module.tree) is None:
            yield Finding(
                path=module.path,
                line=1,
                col=1,
                rule=self.name,
                message=(
                    "module defines no __all__; declare its public surface "
                    "(use `__all__ = []` for internal modules)"
                ),
            )


class UndeclaredPublicRule(Rule):
    name = "api-undeclared-public"
    description = "public top-level def/class missing from __all__"
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        declared = _collect_all(module.tree)
        if declared is None:
            return  # api-missing-all already covers this module
        for stmt in module.tree.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if stmt.name.startswith("_"):
                continue
            if stmt.name not in declared:
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                yield self.finding(
                    module,
                    stmt,
                    f"public {kind} `{stmt.name}` is not in __all__; add it "
                    "or rename it with a leading underscore",
                )


class StarImportRule(Rule):
    name = "api-star-import"
    description = "wildcard `from x import *`"
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == "*" for alias in node.names
            ):
                yield self.finding(
                    module,
                    node,
                    f"wildcard import from `{node.module or '.'}`; import the "
                    "needed names explicitly",
                )


API_RULES = (MissingAllRule(), UndeclaredPublicRule(), StarImportRule())
