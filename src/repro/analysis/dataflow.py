"""Interprocedural unit-domain dataflow: the ``units-domain-flow`` rule.

The per-file ``units-mixed-domain`` rule catches ``gain_db + vout_vrms``
inside one expression; it cannot see a linear value flowing *across a
call edge* into a parameter another module expects in dB.  That is
exactly how calibration maps rot: ``predict_gain(undb(g))`` type-checks,
runs, and silently shifts every predicted spec (paper Eqs. 6-10).

This rule walks every call site in the :class:`ProjectIndex`, resolves
the callee (imports, local defs, unique method names, dataclass
constructors), and compares each argument's inferred domain against the
parameter's.  Domains come from:

* parameter / variable *names* (``*_db``, ``*_dbm``, ``*_hz``,
  ``*_watts``, ``vrms``/``amplitude``/``ratio`` linear tokens),
* :mod:`repro.dsp.units` converter calls (``undb(x)`` returns linear and
  pins ``x`` to dB),
* docstring tags (``lint-domains: x=db, return=linear``) and string
  annotations (``x: "db"``),
* return-domain propagation through call edges (fixpoint over the
  whole project).

Only *cross-group* flows are flagged (log = db/dbm, lin = linear/watts,
freq = hz): dB into dBm is ordinary RF bookkeeping, linear into watts is
fine, but a log-domain value bound to a linear-domain parameter (or a
frequency into either) is a bug every time the inference is right.
Arguments or parameters with no inferable domain are never flagged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding
from repro.analysis.project import (
    ArgSummary,
    CallSummary,
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
    domain_group,
)

__all__ = ["DomainFlowRule", "DATAFLOW_RULES"]


class DomainFlowRule(ProjectRule):
    name = "units-domain-flow"
    description = (
        "call argument whose inferred unit domain (db/dbm vs linear/watts "
        "vs hz) conflicts with the callee parameter's domain"
    )
    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for summary in index.summaries:
            for func in summary.functions:
                for call in func.calls:
                    yield from self._check_call(index, summary, call)

    # -- helpers -----------------------------------------------------------

    def _callee_params(
        self, index: ProjectIndex, summary: ModuleSummary, call: CallSummary
    ) -> Optional[Tuple[str, List[str], Dict[str, str]]]:
        """(display name, positional params, param domains) of the callee."""
        resolved = index.resolve_callee(summary, call)
        if resolved is None:
            return None
        if resolved in index.functions:
            _, target = index.functions[resolved]
            params = list(target.params)
            if target.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            return resolved, params, dict(target.param_domains)
        if resolved in index.classes:
            _, cls = index.classes[resolved]
            return resolved, list(cls.init_params), dict(cls.param_domains)
        return None

    def _check_call(
        self, index: ProjectIndex, summary: ModuleSummary, call: CallSummary
    ) -> Iterator[Finding]:
        target = self._callee_params(index, summary, call)
        if target is None:
            return
        qualname, params, param_domains = target
        if not param_domains:
            return

        bound: List[Tuple[str, ArgSummary]] = []
        for position, arg in enumerate(call.args):
            if position < len(params):
                bound.append((params[position], arg))
        for keyword, arg in call.kwargs.items():
            if keyword in params:
                bound.append((keyword, arg))

        for param, arg in bound:
            expected = param_domains.get(param)
            if expected is None:
                continue
            actual = index.arg_domain(summary, arg)
            if actual is None:
                continue
            expected_group = domain_group(expected)
            actual_group = domain_group(actual)
            if (
                expected_group is None
                or actual_group is None
                or expected_group == actual_group
            ):
                continue
            yield Finding(
                path=summary.path,
                line=call.line,
                col=call.col,
                rule=self.name,
                message=(
                    f"`{arg.text or param}` flows as {actual}-domain into "
                    f"parameter `{param}` of `{qualname}`, which expects "
                    f"{expected}; convert with repro.dsp.units first"
                ),
            )


DATAFLOW_RULES = (DomainFlowRule(),)
