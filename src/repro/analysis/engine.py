"""Core of the signature-lint engine: rules, findings, walkers, suppression.

The engine is a thin AST pipeline: a :class:`ModuleSource` bundles one
parsed file (source text, AST, per-line suppressions, test-file flag),
each :class:`Rule` inspects it and yields :class:`Finding` objects, and
the walkers (:func:`analyze_source`, :func:`analyze_file`,
:func:`analyze_paths`) apply a rule set across files or directory trees,
filter suppressed findings, and return them sorted by location.

Suppression syntax (anywhere in a comment on the offending line)::

    x = gain_db + vout_vrms  # repro-lint: disable=units-mixed-domain -- why
    y = risky()              # repro-lint: disable=rule-a,rule-b -- why
    z = noisy()              # repro-lint: disable -- why

A bare ``disable`` (no ``=``) silences every rule on that line.  For a
statement spanning several lines the marker goes on the line where the
finding is reported (the first line of the offending node).  The
``-- <justification>`` tail is required in library code: a suppression
without one is itself flagged by ``lint-unjustified-suppression``, the
sibling of the ``lint-unknown-suppression`` typo check.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Finding",
    "Rule",
    "ModuleSource",
    "SEVERITY_LEVELS",
    "UnknownSuppressionRule",
    "UnjustifiedSuppressionRule",
    "iter_suppression_comments",
    "parse_suppressions",
    "severity_of",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
]

#: Marker introducing a suppression comment.
SUPPRESS_MARKER = "repro-lint:"

#: Directory names never descended into by :func:`iter_python_files`.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", ".eggs"}
)

#: Rule name used for findings produced by unparseable files.
PARSE_ERROR_RULE = "parse-error"

#: Rule name used for disable comments that name a nonexistent rule.
UNKNOWN_SUPPRESSION_RULE = "lint-unknown-suppression"

#: Rule name used for disable comments lacking a `` -- why`` justification.
UNJUSTIFIED_SUPPRESSION_RULE = "lint-unjustified-suppression"

#: Severity ordering used by ``--severity-threshold`` exit-code control.
SEVERITY_LEVELS = {"note": 0, "warning": 1, "error": 2}


def severity_of(rule_name: str, rules: Iterable["Rule"]) -> str:
    """Severity of a finding's rule; engine pseudo-rules are errors."""
    if rule_name == PARSE_ERROR_RULE:
        return "error"
    for rule in rules:
        if rule.name == rule_name:
            return rule.severity
    return "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the CLI's ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (the kebab-case identifier used in
    suppression comments and CLI filters), ``description`` (one line for
    ``--list-rules``), and optionally ``library_only`` (skip test files),
    then implement :meth:`check`.
    """

    name: str = ""
    description: str = ""
    #: Rules with ``library_only = True`` are not applied to test files
    #: (``tests/`` trees, ``test_*.py``, ``conftest.py``): tests may use
    #: bare asserts, inline conversions to cross-check the library, etc.
    library_only: bool = False
    #: ``note`` < ``warning`` < ``error``; findings below the CLI's
    #: ``--severity-threshold`` are still printed but don't fail the run.
    severity: str = "warning"

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: "ModuleSource", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` in ``module``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


@dataclass
class ModuleSource:
    """A parsed module plus the metadata rules need to judge it."""

    path: str
    source: str
    tree: ast.Module
    is_test: bool
    suppressions: Dict[int, Set[str]]

    @classmethod
    def from_source(
        cls, source: str, path: str, is_test: Optional[bool] = None
    ) -> "ModuleSource":
        """Parse ``source``; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(source, filename=path)
        if is_test is None:
            is_test = _looks_like_test_file(path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            is_test=is_test,
            suppressions=parse_suppressions(source),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "*" in rules or finding.rule in rules


def _looks_like_test_file(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    if any(p in ("tests", "test") for p in parts[:-1]):
        return True
    base = parts[-1]
    return base.startswith("test_") or base == "conftest.py"


def iter_suppression_comments(source: str):
    """Yield ``(line, rule names, justification)`` per disable comment.

    The special name ``"*"`` means all rules.  Comments are located with
    :mod:`tokenize` so marker text inside string literals is ignored.
    The justification is whatever follows a `` -- `` separator, stripped
    (empty string when the comment has none).
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenizeError:
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        text = tok.string.lstrip("#").strip()
        if not text.startswith(SUPPRESS_MARKER):
            continue
        directive = text[len(SUPPRESS_MARKER):].strip()
        directive, _, justification = directive.partition("--")
        directive = directive.strip()
        if directive == "disable":
            names = {"*"}
        elif directive.startswith("disable="):
            names = {
                n.strip() for n in directive[len("disable="):].split(",") if n.strip()
            }
            if "all" in names:
                names = {"*"}
        else:
            continue
        yield tok.start[0], names, justification.strip()


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for line, names, _ in iter_suppression_comments(source):
        suppressions.setdefault(line, set()).update(names)
    return suppressions


class UnknownSuppressionRule(Rule):
    """Flags ``disable=`` comments naming a rule that does not exist.

    A typo in a suppression comment (``disable=units-mixed-domian``)
    silences nothing and hides the author's intent; worse, a rule rename
    leaves stale suppressions behind.  This engine-level rule is
    constructed with the full registry of known rule names (every
    default rule plus the engine pseudo-rules) and reports any
    suppression naming anything else.
    """

    name = UNKNOWN_SUPPRESSION_RULE
    description = (
        "a `# repro-lint: disable=...` comment names a rule that does "
        "not exist (typo or stale suppression)"
    )

    def __init__(self, known_rules: Iterable[str]):
        self.known_rules: Set[str] = set(known_rules) | {
            "*",
            PARSE_ERROR_RULE,
            UNKNOWN_SUPPRESSION_RULE,
        }

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for line in sorted(module.suppressions):
            for rule_name in sorted(module.suppressions[line] - self.known_rules):
                yield Finding(
                    path=module.path,
                    line=line,
                    col=1,
                    rule=self.name,
                    message=(
                        f"suppression names unknown rule `{rule_name}`; "
                        "see --list-rules for valid names"
                    ),
                )


class UnjustifiedSuppressionRule(Rule):
    """Flags library-code ``disable`` comments with no `` -- why`` tail.

    A suppression is a claim that the rule is wrong *here*; the claim
    needs a recorded reason or the next reader has to re-derive it (or
    worse, trusts it blindly).  Test files are exempt -- their
    suppressions document themselves by the test they sit in.
    """

    name = UNJUSTIFIED_SUPPRESSION_RULE
    description = (
        "a `# repro-lint: disable=...` comment in library code carries "
        "no ` -- <justification>` explaining why the rule is wrong here"
    )
    library_only = True

    def check(self, module: "ModuleSource") -> Iterator[Finding]:
        for line, names, justification in iter_suppression_comments(
            module.source
        ):
            if justification:
                continue
            listed = "all rules" if "*" in names else ", ".join(sorted(names))
            yield Finding(
                path=module.path,
                line=line,
                col=1,
                rule=self.name,
                message=(
                    f"suppression of {listed} has no justification; append "
                    "` -- <reason>` to the disable comment"
                ),
            )


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    is_test: Optional[bool] = None,
) -> List[Finding]:
    """Run ``rules`` over one module's source text."""
    try:
        module = ModuleSource.from_source(source, path, is_test=is_test)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=PARSE_ERROR_RULE,
                message=f"could not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if rule.library_only and module.is_test:
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def analyze_file(path: str, rules: Sequence[Rule]) -> List[Finding]:
    """Run ``rules`` over one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, path, rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Directories are walked depth-first in sorted order; ``__pycache__``,
    VCS metadata, and build/cache directories are skipped.  A path that
    does not exist raises :class:`FileNotFoundError`.
    """
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            raise FileNotFoundError(path)


def analyze_paths(paths: Iterable[str], rules: Sequence[Rule]) -> List[Finding]:
    """Run ``rules`` over every python file under ``paths``, sorted."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(analyze_file(file_path, rules))
    return sorted(findings)
