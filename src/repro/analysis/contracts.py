"""Batch-contract rules: keep ``(batch, n)`` and per-device worlds apart.

PR 3 vectorized the signature path: every per-device API
(``capture``/``signature``/``predict``) grew a ``*_batch`` / ``*_matrix``
sibling operating on a whole device lot as one 2-D NumPy program.  The
two worlds are bit-identical by construction -- but only when each is
fed its own shape.  Handing ``signature_batch`` one device, or
``signature`` a device *list*, often still runs (NumPy broadcasting is
forgiving) and produces a silently transposed or broadcast-mangled
matrix downstream.

``batch-shape-mismatch`` discovers the sibling pairs *from the project
symbol table* (a function or method ``<base>_batch``/``<base>_matrix``
defined next to ``<base>`` in the same class or module) and checks the
primary data argument at every resolved call site:

* a batch API called with a value inferred single-item shaped
  (``device``, ``xs[i]``, a singular-named variable), or
* a per-device sibling called with a value inferred batch shaped
  (``devices``, a list/comprehension, a ``*_batch``/``vstack`` result,
  a slice).

Shape inference is by naming convention and local assignment tracking
(:mod:`repro.analysis.project`); values the inference cannot classify
are never flagged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding
from repro.analysis.project import (
    ArgSummary,
    CallSummary,
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
)

__all__ = ["BatchShapeRule", "CONTRACT_RULES", "sibling_pairs"]

_BATCH_SUFFIXES = ("_batch", "_matrix")


def sibling_pairs(index: ProjectIndex) -> Dict[str, str]:
    """Map qualified name -> role for every batch/per-item sibling pair.

    For ``repro.x.Board.capture_batch`` defined alongside
    ``repro.x.Board.capture``, the batch side maps to ``"batch"`` and the
    per-item side to ``"item"``.  Functions with no sibling are left out:
    a lone ``*_matrix`` helper has no per-item twin whose contract could
    be confused with.
    """
    roles: Dict[str, str] = {}
    for qualname in index.functions:
        for suffix in _BATCH_SUFFIXES:
            if not qualname.endswith(suffix):
                continue
            base = qualname[: -len(suffix)]
            if base in index.functions:
                roles[qualname] = "batch"
                roles[base] = "item"
    return roles


class BatchShapeRule(ProjectRule):
    name = "batch-shape-mismatch"
    description = (
        "batch API (*_batch/*_matrix) fed a single-item value, or its "
        "per-device sibling fed a batch-shaped value"
    )
    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        roles = sibling_pairs(index)
        if not roles:
            return
        for summary in index.summaries:
            for func in summary.functions:
                for call in func.calls:
                    yield from self._check_call(index, summary, call, roles)

    def _primary_arg(
        self, index: ProjectIndex, qualname: str, call: CallSummary
    ) -> Optional[Tuple[str, ArgSummary]]:
        """(param name, argument) bound to the callee's first data param."""
        _, target = index.functions[qualname]
        params: List[str] = list(target.params)
        if target.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        if not params:
            return None
        first = params[0]
        if call.args:
            return first, call.args[0]
        if first in call.kwargs:
            return first, call.kwargs[first]
        return None

    def _check_call(
        self,
        index: ProjectIndex,
        summary: ModuleSummary,
        call: CallSummary,
        roles: Dict[str, str],
    ) -> Iterator[Finding]:
        resolved = index.resolve_callee(summary, call)
        if resolved is None or resolved not in roles:
            return
        bound = self._primary_arg(index, resolved, call)
        if bound is None:
            return
        param, arg = bound
        role = roles[resolved]
        if role == "batch" and arg.shape == "item":
            yield Finding(
                path=summary.path,
                line=call.line,
                col=call.col,
                rule=self.name,
                message=(
                    f"batch API `{resolved}` receives single-item "
                    f"`{arg.text or param}` for `{param}`; wrap it in a "
                    f"list (`[{arg.text or param}]`) or call the per-item "
                    "sibling"
                ),
            )
        elif role == "item" and arg.shape == "batch":
            sibling = next(
                (
                    q
                    for q in roles
                    if roles[q] == "batch" and q.startswith(resolved + "_")
                ),
                None,
            )
            hint = f"use `{sibling}`" if sibling else "use the *_batch sibling"
            yield Finding(
                path=summary.path,
                line=call.line,
                col=call.col,
                rule=self.name,
                message=(
                    f"per-item API `{resolved}` receives batch-shaped "
                    f"`{arg.text or param}` for `{param}`; {hint} for whole "
                    "lots"
                ),
            )


CONTRACT_RULES = (BatchShapeRule(),)
