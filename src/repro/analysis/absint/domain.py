"""The abstract value domain: real intervals + NaN bit + float32 error bound.

One :class:`Interval` abstracts the set of values a variable can hold at
a program point:

* a closed interval ``[lo, hi]`` over the extended reals (``lo`` and
  ``hi`` may be ``+/-inf``; ``lo > hi`` encodes the empty set);
* ``may_nan`` -- whether NaN is reachable (``log10`` of a negative,
  ``inf - inf``, ``0 * inf``, ``0 / 0``, ``sqrt`` of a negative);
* ``err32`` -- an upper bound on the **absolute** rounding error the
  value would carry had the whole computation run in float32 instead of
  float64.  The model charges one float32 unit roundoff
  (``EPS32 * sup|result|``) per operation and propagates input errors
  through each operation's first-order sensitivity, which makes
  catastrophic cancellation (``x - y`` with ``x ~ y``) show up as the
  error blowup it really is.  ``err32 = inf`` means "no finite bound
  provable" (division by an interval reaching zero, ``log10`` of an
  interval reaching zero, ...).

The float64-vs-float32 framing matters for ROADMAP item 2: the planned
reduced-precision capture fast path is only safe where the *extra* error
from dropping to float32 stays under a declared per-function budget
(``lint-float32-budget:``), and ``err32`` is exactly that bound.

Unknown values are represented *outside* this class by ``None`` (no
information), mirroring the unit-domain inference: rules only fire on
values the analysis actually knows something about.  ``TOP`` (the full
real line, NaN reachable) is still available for operations that bound
their result intrinsically (``abs`` of anything is ``>= 0``).

All transfer functions are total: they accept any interval (including
empty and infinite endpoints) and return a sound over-approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = [
    "EPS32",
    "Interval",
    "TOP",
    "EMPTY",
    "const",
    "rng",
    "join",
    "widen",
    "add",
    "neg",
    "sub",
    "mul",
    "div",
    "absval",
    "sqrt",
    "log10",
    "pow10",
    "power",
    "minimum",
    "maximum",
    "clip",
    "bounded_unop",
    "cancellation_amplification",
    "narrow",
    "negate_op",
    "interval_tuple",
]

#: float32 unit roundoff (2**-24, round-to-nearest)
EPS32 = 2.0 ** -24

#: smallest increment used to narrow a strict bound (``x > 0``)
_TINY = 5e-324

_LN10 = math.log(10.0)


def _nextafter(value: float, toward: float) -> float:
    """``math.nextafter`` with a pre-3.9-safe fallback for the infinities."""
    if math.isinf(value):
        return value
    try:
        return math.nextafter(value, toward)
    except AttributeError:  # pragma: no cover - python < 3.9
        return value + (_TINY if toward > value else -_TINY)


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` over R U {+/-inf}, NaN reachability, float32 error."""

    lo: float
    hi: float
    may_nan: bool = False
    err32: float = 0.0

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and not self.is_empty

    def contains(self, value: float) -> bool:
        return not self.is_empty and self.lo <= value <= self.hi

    def contains_zero(self) -> bool:
        return self.contains(0.0)

    def reaches_nonpositive(self) -> bool:
        """Can the value be ``<= 0`` (the ``log10`` precondition check)?"""
        return not self.is_empty and self.lo <= 0.0

    def reaches_negative(self) -> bool:
        return not self.is_empty and self.lo < 0.0

    @property
    def mag_sup(self) -> float:
        """Largest possible magnitude (``sup |x|``)."""
        if self.is_empty:
            return 0.0
        return max(abs(self.lo), abs(self.hi))

    @property
    def mag_inf(self) -> float:
        """Smallest possible magnitude (``inf |x|``; 0 when 0 is inside)."""
        if self.is_empty:
            return 0.0
        if self.lo <= 0.0 <= self.hi:
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def same_sign(self) -> bool:
        """Entirely ``>= 0`` or entirely ``<= 0``."""
        return not self.is_empty and (self.lo >= 0.0 or self.hi <= 0.0)

    # -- formatting / serialization ----------------------------------------

    def __str__(self) -> str:
        if self.is_empty:
            return "(empty)"
        body = f"[{self.lo:.6g}, {self.hi:.6g}]"
        if self.may_nan:
            body += "?nan"
        return body

    def to_dict(self) -> dict:
        return {
            "lo": _json_float(self.lo),
            "hi": _json_float(self.hi),
            "may_nan": self.may_nan,
            "err32": _json_float(self.err32),
        }

    # -- lattice -----------------------------------------------------------

    def with_nan(self, may_nan: bool = True) -> "Interval":
        return replace(self, may_nan=self.may_nan or may_nan)


def _json_float(value: float):
    """JSON has no inf/nan literals; use strings for the non-finite ones."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):
        return "nan"
    return value


TOP = Interval(-math.inf, math.inf, may_nan=True, err32=math.inf)
EMPTY = Interval(math.inf, -math.inf)


def const(value: float) -> Interval:
    """The singleton interval of a literal constant.

    The float32 representation error of the constant itself is charged
    up front (``|c| * EPS32``), so a chain built from constants already
    carries the error a float32 pipeline would.
    """
    if math.isnan(value):
        return Interval(math.inf, -math.inf, may_nan=True)
    return Interval(value, value, err32=abs(value) * EPS32)


def rng(lo: float, hi: float, may_nan: bool = False) -> Interval:
    """A declared range (``lint-ranges:`` tag), taken as error-free.

    The float32 certificate bounds the error the *body's arithmetic*
    introduces for exactly-representable inputs.  Seeding a uniform
    absolute representation error (``mag_sup * EPS32``) instead would be
    sound but useless: the log transfer must divide an absolute input
    error by the interval's smallest magnitude, so a wide range like
    ``[1e-30, 1e30]`` would certify ``db`` at 1e53 absolute error.
    """
    iv = Interval(float(lo), float(hi), may_nan=may_nan)
    if iv.is_empty:
        return EMPTY
    return iv


def join(a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
    """Least upper bound; ``None`` (no information) absorbs everything."""
    if a is None or b is None:
        return None
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    return Interval(
        min(a.lo, b.lo),
        max(a.hi, b.hi),
        may_nan=a.may_nan or b.may_nan,
        err32=max(a.err32, b.err32),
    )


def widen(old: Optional[Interval], new: Optional[Interval]) -> Optional[Interval]:
    """Widening: any still-growing bound jumps straight to infinity.

    Guarantees termination of the interprocedural fixpoint: a chain of
    widenings can only move each endpoint to ``+/-inf`` once and flip
    ``may_nan`` once, so every slot stabilizes in finitely many steps.
    """
    if old is None or new is None:
        return None
    if old.is_empty:
        return new
    if new.is_empty:
        return old
    lo = old.lo if new.lo >= old.lo else -math.inf
    hi = old.hi if new.hi <= old.hi else math.inf
    err = old.err32 if new.err32 <= old.err32 else math.inf
    return Interval(lo, hi, may_nan=old.may_nan or new.may_nan, err32=err)


# ---------------------------------------------------------------------------
# arithmetic transfer functions
# ---------------------------------------------------------------------------


def _mul_bound(a: float, b: float) -> float:
    """IEEE-style interval product endpoint: ``0 * inf`` contributes 0.

    The NaN possibility of ``0 * inf`` is handled separately by the
    caller; for the *interval* endpoints the zero factor wins.
    """
    if (a == 0.0 and math.isinf(b)) or (b == 0.0 and math.isinf(a)):
        return 0.0
    return a * b


def _round_err(result: Interval, carried: float) -> float:
    """Carried first-order error + one unit roundoff on the result."""
    if math.isinf(carried):
        return math.inf
    sup = result.mag_sup
    if math.isinf(sup):
        return math.inf
    return carried + sup * EPS32


def add(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    nan = a.may_nan or b.may_nan
    # inf + (-inf) is NaN-reachable
    if (a.contains(math.inf) and b.contains(-math.inf)) or (
        a.contains(-math.inf) and b.contains(math.inf)
    ):
        nan = True
    out = Interval(a.lo + b.lo, a.hi + b.hi, may_nan=nan)
    return replace(out, err32=_round_err(out, a.err32 + b.err32))


def neg(a: Interval) -> Interval:
    if a.is_empty:
        return EMPTY
    return Interval(-a.hi, -a.lo, may_nan=a.may_nan, err32=a.err32)


def sub(a: Interval, b: Interval) -> Interval:
    return add(a, neg(b))


def cancellation_amplification(a: Interval, b: Interval) -> float:
    """How much ``a - b`` can amplify relative error, at minimum.

    ``sup(|a|, |b|) / sup|a - b|``: even the *largest* possible result is
    this many times smaller than the operands, so relative error grows
    by at least this factor on every evaluation -- the signature of
    catastrophic cancellation (as opposed to a difference that merely
    *can* pass near zero).  Returns ``inf`` when the difference is
    provably zero, ``0`` when nothing is known.
    """
    if a.is_empty or b.is_empty:
        return 0.0
    operand_mag = max(a.mag_sup, b.mag_sup)
    if operand_mag == 0.0 or math.isinf(operand_mag):
        return 0.0
    diff = sub(a, b)
    result_mag = diff.mag_sup
    if result_mag == 0.0:
        return math.inf
    return operand_mag / result_mag


def _no_zero_crossing(out: Interval) -> Interval:
    """Nudge an underflowed endpoint off zero.

    The domain models *real* arithmetic: a product or quotient of two
    zero-free intervals is zero-free, but the float endpoint computation
    can underflow to 0 (``5e-324 * 5e-324 == 0.0``) and would falsely
    re-introduce a div-zero hazard.  Callers invoke this only when the
    result is provably one-signed.
    """
    if out.is_empty:
        return out
    if out.lo == 0.0 and out.hi > 0.0:
        return replace(out, lo=_TINY)
    if out.hi == 0.0 and out.lo < 0.0:
        return replace(out, hi=-_TINY)
    return out


def mul(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    nan = a.may_nan or b.may_nan
    infinite = a.contains(math.inf) or a.contains(-math.inf)
    infinite_b = b.contains(math.inf) or b.contains(-math.inf)
    if (a.contains_zero() and infinite_b) or (b.contains_zero() and infinite):
        nan = True
    products = [
        _mul_bound(a.lo, b.lo),
        _mul_bound(a.lo, b.hi),
        _mul_bound(a.hi, b.lo),
        _mul_bound(a.hi, b.hi),
    ]
    out = Interval(min(products), max(products), may_nan=nan)
    if not a.contains_zero() and not b.contains_zero():
        out = _no_zero_crossing(out)
    carried = _mul_bound(a.err32, b.mag_sup) + _mul_bound(b.err32, a.mag_sup)
    return replace(out, err32=_round_err(out, carried))


def div(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    nan = a.may_nan or b.may_nan
    if b.contains_zero():
        # the result reaches +/-inf around the pole; 0/0 adds NaN
        if a.contains_zero():
            nan = True
        return Interval(-math.inf, math.inf, may_nan=nan, err32=math.inf)
    if (a.contains(math.inf) or a.contains(-math.inf)) and (
        b.contains(math.inf) or b.contains(-math.inf)
    ):
        nan = True  # inf / inf
    inv_candidates = [1.0 / b.lo, 1.0 / b.hi]
    inv = Interval(min(inv_candidates), max(inv_candidates))
    out = mul(a, inv)
    if not a.contains_zero():
        # x / y is zero-free when x is (the inv endpoints may hit 0 for
        # unbounded y, and a 0*inf inside mul may set a spurious NaN --
        # over the reals neither zero nor NaN is reachable here)
        out = _no_zero_crossing(out)
    else:
        nan = nan or out.may_nan
    b_inf = b.mag_inf
    carried = (a.err32 + _mul_bound(b.err32, out.mag_sup)) / b_inf
    return Interval(
        out.lo, out.hi, may_nan=nan, err32=_round_err(out, carried)
    )


def absval(a: Interval) -> Interval:
    if a.is_empty:
        return EMPTY
    if a.lo >= 0.0:
        out = Interval(a.lo, a.hi, may_nan=a.may_nan)
    elif a.hi <= 0.0:
        out = Interval(-a.hi, -a.lo, may_nan=a.may_nan)
    else:
        out = Interval(0.0, max(-a.lo, a.hi), may_nan=a.may_nan)
    return replace(out, err32=a.err32)


def sqrt(a: Interval) -> Interval:
    if a.is_empty:
        return EMPTY
    nan = a.may_nan or a.lo < 0.0
    clipped = Interval(max(a.lo, 0.0), a.hi)
    if clipped.is_empty:
        return Interval(math.inf, -math.inf, may_nan=True)
    out = Interval(math.sqrt(clipped.lo), math.sqrt(clipped.hi), may_nan=nan)
    if clipped.lo > 0.0 and a.err32 < clipped.lo:
        carried = a.err32 / (2.0 * math.sqrt(clipped.lo))
    elif math.isinf(a.err32):
        carried = math.inf
    else:
        # near zero the first-order bound fails; sqrt is the envelope
        carried = math.sqrt(a.err32)
    return replace(out, err32=_round_err(out, carried))


def log10(a: Interval, scale: float = 1.0) -> Interval:
    """``scale * log10(a)`` (scale 10 for dB power, 20 for dB amplitude)."""
    if a.is_empty:
        return EMPTY
    nan = a.may_nan or a.lo < 0.0
    positive = Interval(max(a.lo, 0.0), a.hi)
    if positive.is_empty or positive.hi == 0.0:
        # nothing positive to take a log of: -inf (log10(0)) and/or NaN
        return Interval(-math.inf, -math.inf, may_nan=nan, err32=math.inf)
    lo = -math.inf if positive.lo == 0.0 else scale * math.log10(positive.lo)
    hi = scale * math.log10(positive.hi)
    out = Interval(min(lo, hi), max(lo, hi), may_nan=nan)
    if positive.lo > 0.0 and not math.isinf(a.err32):
        carried = abs(scale) * a.err32 / (_LN10 * positive.lo)
        # scale*log10(x) is two rounded float32 ops, and libm's log10 is
        # only correct to ~2 ulp -- 3 extra ulps on top of _round_err's 1
        if not math.isinf(out.mag_sup):
            carried += 3.0 * out.mag_sup * EPS32
    else:
        carried = math.inf
    return replace(out, err32=_round_err(out, carried))


def pow10(a: Interval, scale: float = 1.0) -> Interval:
    """``10 ** (a / scale)`` (scale 10 undoes dB power, 20 dB amplitude)."""
    if a.is_empty:
        return EMPTY

    def _p(x: float) -> float:
        if x == -math.inf:
            return 0.0
        if x == math.inf:
            return math.inf
        try:
            return 10.0 ** (x / scale)
        except OverflowError:
            return math.inf

    lo, hi = _p(a.lo), _p(a.hi)
    out = Interval(min(lo, hi), max(lo, hi), may_nan=a.may_nan)
    if math.isinf(a.err32) or math.isinf(out.mag_sup):
        carried = math.inf
    else:
        # division rounding + libm exp error (~2 ulp), see log10 above
        carried = _LN10 / abs(scale) * out.mag_sup * a.err32
        carried += 3.0 * out.mag_sup * EPS32
    return replace(out, err32=_round_err(out, carried))


def power(a: Interval, exponent: Interval) -> Interval:
    """``a ** k`` for a *constant* integer-ish exponent; TOP otherwise."""
    if a.is_empty or exponent.is_empty:
        return EMPTY
    if not exponent.is_point:
        return TOP
    k = exponent.lo
    if k != int(k) or abs(k) > 64:
        return TOP
    k = int(k)
    if k == 0:
        return const(1.0)
    result = a
    for _ in range(abs(k) - 1):
        result = mul(result, a)
    if k < 0:
        result = div(const(1.0), result)
    return result


def minimum(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    return Interval(
        min(a.lo, b.lo),
        min(a.hi, b.hi),
        may_nan=a.may_nan or b.may_nan,
        err32=max(a.err32, b.err32),
    )


def maximum(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    return Interval(
        max(a.lo, b.lo),
        max(a.hi, b.hi),
        may_nan=a.may_nan or b.may_nan,
        err32=max(a.err32, b.err32),
    )


def clip(a: Interval, lo: Interval, hi: Interval) -> Interval:
    return minimum(maximum(a, lo), hi)


def bounded_unop(lo: float, hi: float) -> Interval:
    """Result of an intrinsically bounded op on unknown input (sin, cos)."""
    return Interval(lo, hi, may_nan=True, err32=max(abs(lo), abs(hi)) * EPS32)


# ---------------------------------------------------------------------------
# comparison narrowing (guard refinement)
# ---------------------------------------------------------------------------


def narrow(
    value: Optional[Interval], op: str, bound: float
) -> Optional[Interval]:
    """Refine ``value`` by the guard ``value <op> bound`` holding true.

    ``op`` is one of ``> >= < <= == !=``.  ``None`` (unknown) narrows to
    the guard's own constraint -- a guard is *information*.  Strict
    bounds move one ULP inward so ``x > 0`` really excludes zero, which
    is what lets a real ``if x <= 0: raise`` guard prove a following
    ``log10(x)`` safe.  NaN never satisfies a comparison, so any
    successful narrowing clears ``may_nan``.
    """
    if value is None:
        if op == "!=":
            # an interval can't encode a hole: `x != 0` on an unknown
            # value yields no usable bounds, so stay unknown rather than
            # claim the full line is proven
            return None
        value = Interval(-math.inf, math.inf)
    if value.is_empty:
        return value
    lo, hi = value.lo, value.hi
    if op == ">":
        lo = max(lo, _nextafter(bound, math.inf))
    elif op == ">=":
        lo = max(lo, bound)
    elif op == "<":
        hi = min(hi, _nextafter(bound, -math.inf))
    elif op == "<=":
        hi = min(hi, bound)
    elif op == "==":
        lo, hi = max(lo, bound), min(hi, bound)
    elif op == "!=":
        if lo == hi == bound:
            return EMPTY
        if lo == bound:
            lo = _nextafter(bound, math.inf)
        if hi == bound:
            hi = _nextafter(bound, -math.inf)
    else:
        return value
    out = Interval(lo, hi, may_nan=False, err32=value.err32)
    return EMPTY if out.is_empty else out


_NEGATED = {">": "<=", ">=": "<", "<": ">=", "<=": ">", "==": "!=", "!=": "=="}


def negate_op(op: str) -> Optional[str]:
    """The comparison holding on the *else* branch of ``value <op> bound``."""
    return _NEGATED.get(op)


def interval_tuple(iv: Interval) -> Tuple[float, float, bool, float]:
    """Stable tuple form used by fixpoint change detection."""
    return (iv.lo, iv.hi, iv.may_nan, iv.err32)
