"""AST -> numeric IR: the cacheable program the abstract interpreter runs.

The interprocedural fixpoint must replay from the lint cache without
re-parsing unchanged files, so -- like the rest of the project-level
substrate -- everything it needs is extracted into JSON-serializable
summaries at parse time.  :func:`extract_numerics` compresses a module
into :class:`NumericFunction` objects: the function's parameters, its
declared value ranges, its float32 error budget, and a structured
statement list that keeps exactly what interval analysis cares about
(assignments, returns, raises, branches with their comparison tests,
loops, ``np.errstate`` regions) and abstracts everything else to
"unknown".

Declared ranges come from ``lint-ranges:`` docstring tags::

    def capture(drive_dbm, atten_db):
        '''Capture one response.

        lint-ranges: drive_dbm=[-40, 10], atten_db=[0, 60]
        '''

and the per-function float32 budget (an *absolute* output error bound,
in the output's own units) from ``lint-float32-budget:``::

        lint-float32-budget: 1e-6

A dataclass (or any class) may declare field ranges in its class
docstring with the same ``lint-ranges:`` tag; they seed both its
constructor parameters and -- matching the project-wide unique-attribute
convention -- reads of ``obj.<field>`` anywhere in the project when the
field name is unambiguous.
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NumericFunction",
    "ModuleNumerics",
    "extract_numerics",
    "parse_range_tags",
    "parse_budget_tag",
]

_RANGE_TAG_RE = re.compile(r"^\s*lint-ranges:\s*(.+)$", re.MULTILINE)
_BUDGET_TAG_RE = re.compile(r"^\s*lint-float32-budget:\s*(\S+)", re.MULTILINE)
#: one ``name=[lo, hi]`` pair inside a lint-ranges tag
_PAIR_RE = re.compile(r"(\w+)\s*=\s*\[\s*([^,\]]+)\s*,\s*([^,\]]+)\s*\]")

_CMP_OPS = {
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

_BIN_OPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.Pow: "pow",
    ast.MatMult: "matmul",
    ast.Mod: "mod",
    ast.FloorDiv: "floordiv",
}


def _parse_bound(text: str) -> Optional[float]:
    text = text.strip().lower()
    if text in ("inf", "+inf"):
        return math.inf
    if text == "-inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def parse_range_tags(doc: Optional[str]) -> Dict[str, Tuple[float, float]]:
    """``lint-ranges: x=[-40, 10], y=[0, inf]`` -> ``{x: (-40, 10), ...}``."""
    ranges: Dict[str, Tuple[float, float]] = {}
    if not doc:
        return ranges
    for match in _RANGE_TAG_RE.finditer(doc):
        for pair in _PAIR_RE.finditer(match.group(1)):
            lo = _parse_bound(pair.group(2))
            hi = _parse_bound(pair.group(3))
            if lo is not None and hi is not None and lo <= hi:
                ranges[pair.group(1)] = (lo, hi)
    return ranges


def parse_budget_tag(doc: Optional[str]) -> Optional[float]:
    """``lint-float32-budget: 1e-6`` -> ``1e-6`` (absolute error bound)."""
    if not doc:
        return None
    match = _BUDGET_TAG_RE.search(doc)
    if match is None:
        return None
    budget = _parse_bound(match.group(1))
    if budget is None or budget <= 0:
        return None
    return budget


@dataclass
class NumericFunction:
    """One function's numeric program, ready for abstract interpretation."""

    qualname: str
    name: str
    line: int
    col: int
    params: List[str] = field(default_factory=list)
    #: declared param ranges from the ``lint-ranges:`` docstring tag
    ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: declared absolute float32 error budget, or None
    budget: Optional[float] = None
    #: structured statement list (see module docstring)
    body: List[dict] = field(default_factory=list)
    is_method: bool = False

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "params": list(self.params),
            "ranges": {k: [_bound_json(v[0]), _bound_json(v[1])] for k, v in self.ranges.items()},
            "budget": self.budget,
            "body": self.body,
            "is_method": self.is_method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NumericFunction":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            line=data["line"],
            col=data["col"],
            params=list(data.get("params", [])),
            ranges={
                k: (_bound_parse(v[0]), _bound_parse(v[1]))
                for k, v in data.get("ranges", {}).items()
            },
            budget=data.get("budget"),
            body=list(data.get("body", [])),
            is_method=bool(data.get("is_method", False)),
        )


def _bound_json(value: float):
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _bound_parse(value) -> float:
    if isinstance(value, str):
        return math.inf if value == "inf" else -math.inf
    return float(value)


@dataclass
class ModuleNumerics:
    """Everything one module contributes to the numeric analysis."""

    functions: List[NumericFunction] = field(default_factory=list)
    #: class name -> {field name -> (lo, hi)} from class-docstring tags
    class_ranges: Dict[str, Dict[str, Tuple[float, float]]] = field(
        default_factory=dict
    )
    #: module-level numeric constants (``BOLTZMANN = 1.38e-23``)
    consts: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "functions": [f.to_dict() for f in self.functions],
            "class_ranges": {
                cls: {k: [_bound_json(v[0]), _bound_json(v[1])] for k, v in fields.items()}
                for cls, fields in self.class_ranges.items()
            },
            "consts": {k: _bound_json(v) for k, v in self.consts.items()},
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "ModuleNumerics":
        if not data:
            return cls()
        return cls(
            functions=[
                NumericFunction.from_dict(f) for f in data.get("functions", [])
            ],
            class_ranges={
                name: {
                    k: (_bound_parse(v[0]), _bound_parse(v[1]))
                    for k, v in fields.items()
                }
                for name, fields in data.get("class_ranges", {}).items()
            },
            consts={
                k: _bound_parse(v) for k, v in data.get("consts", {}).items()
            },
        )


# ---------------------------------------------------------------------------
# expression encoding
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_UNKNOWN = {"k": "unknown"}


def _text_of(node: ast.expr) -> str:
    """Truncated source text carried for finding messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""
    if len(text) > 48:
        text = text[:45] + "..."
    return text


def _encode_expr(node: ast.expr) -> dict:
    """One expression -> IR dict; anything unmodeled becomes ``unknown``."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            return dict(_UNKNOWN)
        return {"k": "const", "v": float(node.value)}
    if isinstance(node, ast.Name):
        return {"k": "var", "n": node.id}
    if isinstance(node, ast.Attribute):
        return {
            "k": "attr",
            "n": node.attr,
            "base": _dotted(node.value) or "",
        }
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            return {"k": "un", "op": "neg", "a": _encode_expr(node.operand)}
        if isinstance(node.op, ast.UAdd):
            return _encode_expr(node.operand)
        return dict(_UNKNOWN)
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            return dict(_UNKNOWN)
        return {
            "k": "bin",
            "op": op,
            "a": _encode_expr(node.left),
            "b": _encode_expr(node.right),
            "t": _text_of(node),
            "l": node.lineno,
            "c": node.col_offset + 1,
        }
    if isinstance(node, ast.Call):
        fn = _dotted(node.func)
        if fn is None or any(isinstance(a, ast.Starred) for a in node.args):
            return dict(_UNKNOWN)
        return {
            "k": "call",
            "fn": fn,
            "a": [_encode_expr(a) for a in node.args],
            "kw": {
                kw.arg: _encode_expr(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            },
            "t": _text_of(node),
            "l": node.lineno,
            "c": node.col_offset + 1,
        }
    if isinstance(node, ast.Subscript):
        # elementwise abstraction: a slice/element shares the array's range
        return {"k": "sub", "a": _encode_expr(node.value)}
    if isinstance(node, ast.IfExp):
        return {
            "k": "ifexp",
            "test": _encode_test(node.test),
            "a": _encode_expr(node.body),
            "b": _encode_expr(node.orelse),
        }
    if isinstance(node, ast.Compare):
        test = _encode_test(node)
        return test if test is not None else dict(_UNKNOWN)
    return dict(_UNKNOWN)


def _encode_test(node: ast.expr) -> Optional[dict]:
    """A branch test -> IR, keeping only narrowing-relevant structure."""
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        op = _CMP_OPS.get(type(node.ops[0]))
        if op is None:
            return None
        return {
            "k": "cmp",
            "op": op,
            "lhs": _encode_expr(node.left),
            "rhs": _encode_expr(node.comparators[0]),
        }
    if isinstance(node, ast.BoolOp):
        parts = [_encode_test(v) for v in node.values]
        kind = "and" if isinstance(node.op, ast.And) else "or"
        return {"k": kind, "parts": [p for p in parts if p is not None]}
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = _encode_test(node.operand)
        if inner is not None:
            return {"k": "not", "a": inner}
        return None
    return None


# ---------------------------------------------------------------------------
# statement encoding
# ---------------------------------------------------------------------------


def _is_ignoring_errstate(call: ast.expr) -> bool:
    """``np.errstate(divide="ignore", ...)`` -- a sanctioned FP region."""
    if not isinstance(call, ast.Call):
        return False
    fn = _dotted(call.func)
    if fn is None or fn.split(".")[-1] != "errstate":
        return False
    for kw in call.keywords:
        if kw.arg in ("divide", "invalid", "over", "under", "all") and (
            isinstance(kw.value, ast.Constant) and kw.value.value == "ignore"
        ):
            return True
    return False


def _encode_block(stmts: List[ast.stmt]) -> List[dict]:
    out: List[dict] = []
    for stmt in stmts:
        out.extend(_encode_stmt(stmt))
    return out


def _encode_stmt(stmt: ast.stmt) -> List[dict]:
    if isinstance(stmt, ast.Assign):
        encoded = []
        value = _encode_expr(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                encoded.append(
                    {
                        "kind": "assign",
                        "target": target.id,
                        "expr": value,
                        "l": stmt.lineno,
                        "c": stmt.col_offset + 1,
                    }
                )
        return encoded or [{"kind": "expr", "expr": value}]
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            return [
                {
                    "kind": "assign",
                    "target": stmt.target.id,
                    "expr": _encode_expr(stmt.value),
                    "l": stmt.lineno,
                    "c": stmt.col_offset + 1,
                }
            ]
        return [{"kind": "expr", "expr": _encode_expr(stmt.value)}]
    if isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            op = _BIN_OPS.get(type(stmt.op))
            if op is None:
                expr: dict = dict(_UNKNOWN)
            else:
                expr = {
                    "k": "bin",
                    "op": op,
                    "a": {"k": "var", "n": stmt.target.id},
                    "b": _encode_expr(stmt.value),
                    "l": stmt.lineno,
                    "c": stmt.col_offset + 1,
                }
            return [
                {
                    "kind": "assign",
                    "target": stmt.target.id,
                    "expr": expr,
                    "l": stmt.lineno,
                    "c": stmt.col_offset + 1,
                }
            ]
        return [{"kind": "expr", "expr": _encode_expr(stmt.value)}]
    if isinstance(stmt, ast.Return):
        return [
            {
                "kind": "return",
                "expr": _encode_expr(stmt.value) if stmt.value else None,
                "l": stmt.lineno,
                "c": stmt.col_offset + 1,
            }
        ]
    if isinstance(stmt, ast.Raise):
        return [{"kind": "raise"}]
    if isinstance(stmt, ast.Assert):
        # `assert x > 0` narrows the fallthrough exactly like
        # `if not (x > 0): raise`
        return [
            {
                "kind": "branch",
                "test": _encode_test(stmt.test),
                "body": [],
                "orelse": [{"kind": "raise"}],
            }
        ]
    if isinstance(stmt, ast.If):
        return [
            {
                "kind": "branch",
                "test": _encode_test(stmt.test),
                "body": _encode_block(stmt.body),
                "orelse": _encode_block(stmt.orelse),
            }
        ]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        body = _encode_block(stmt.body)
        if isinstance(stmt.target, ast.Name):
            # the loop variable ranges over an unknown iterable
            body.insert(
                0,
                {
                    "kind": "assign",
                    "target": stmt.target.id,
                    "expr": dict(_UNKNOWN),
                    "l": stmt.lineno,
                    "c": stmt.col_offset + 1,
                },
            )
        return [
            {"kind": "loop", "body": body},
            *_encode_block(stmt.orelse),
        ]
    if isinstance(stmt, ast.While):
        return [
            {"kind": "loop", "body": _encode_block(stmt.body)},
            *_encode_block(stmt.orelse),
        ]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        body = _encode_block(stmt.body)
        if any(_is_ignoring_errstate(item.context_expr) for item in stmt.items):
            return [{"kind": "errstate", "body": body}]
        return body
    if isinstance(stmt, ast.Try):
        return [
            {
                "kind": "branch",
                "test": None,
                "body": _encode_block(stmt.body) + _encode_block(stmt.orelse),
                "orelse": [
                    s
                    for handler in stmt.handlers
                    for s in _encode_block(handler.body)
                ],
            },
            *_encode_block(stmt.finalbody),
        ]
    if isinstance(stmt, ast.Expr):
        return [{"kind": "expr", "expr": _encode_expr(stmt.value)}]
    # nested defs, classes, imports, pass, del, global...: invisible here
    return []


# ---------------------------------------------------------------------------
# module-level extraction
# ---------------------------------------------------------------------------


def _function_params(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


def _extract_function(
    func: ast.AST, qualname: str, is_method: bool
) -> NumericFunction:
    doc = ast.get_docstring(func, clean=False)
    return NumericFunction(
        qualname=qualname,
        name=func.name,
        line=func.lineno,
        col=func.col_offset + 1,
        params=_function_params(func),
        ranges=parse_range_tags(doc),
        budget=parse_budget_tag(doc),
        body=_encode_block(func.body),
        is_method=is_method,
    )


def _literal_number(node: ast.expr) -> Optional[float]:
    """The value of a (possibly negated) numeric literal, else None."""
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        sign, node = -1.0, node.operand
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return sign * float(node.value)
    return None


def extract_numerics(tree: ast.Module) -> ModuleNumerics:
    """Extract every top-level function's and method's numeric program."""
    numerics = ModuleNumerics()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = _literal_number(stmt.value) if stmt.value else None
            if value is not None:
                for target in targets:
                    if isinstance(target, ast.Name):
                        numerics.consts[target.id] = value
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            numerics.functions.append(
                _extract_function(stmt, stmt.name, is_method=False)
            )
        elif isinstance(stmt, ast.ClassDef):
            ranges = parse_range_tags(ast.get_docstring(stmt, clean=False))
            if ranges:
                numerics.class_ranges[stmt.name] = ranges
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    numerics.functions.append(
                        _extract_function(
                            item, f"{stmt.name}.{item.name}", is_method=True
                        )
                    )
    return numerics
