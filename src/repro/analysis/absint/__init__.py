"""Interval abstract interpretation for the signature chain's numerics.

Layers, bottom up:

* :mod:`~repro.analysis.absint.domain` -- the abstract value: a closed
  interval over the extended reals, a NaN-reachability bit, and an
  absolute float32 rounding-error bound, with sound transfer functions
  for the NumPy / ``repro.dsp.units`` vocabulary;
* :mod:`~repro.analysis.absint.extract` -- AST -> cacheable numeric IR
  (stored inside :class:`~repro.analysis.project.ModuleSummary`, so warm
  lint runs replay without re-parsing);
* :mod:`~repro.analysis.absint.interp` -- the interprocedural fixpoint
  (widening, guard narrowing, ``np.errstate`` sanctioning) plus the
  machine-readable certification report;
* :mod:`~repro.analysis.absint.rules` -- the four project rules:
  ``num-log-nonpositive``, ``num-div-zero``, ``num-cancellation``,
  ``num-float32-unsafe``.
"""

from repro.analysis.absint.domain import EPS32, EMPTY, TOP, Interval
from repro.analysis.absint.extract import (
    ModuleNumerics,
    NumericFunction,
    extract_numerics,
    parse_budget_tag,
    parse_range_tags,
)
from repro.analysis.absint.interp import (
    AbsintResult,
    analyze_index,
    certification_report,
)
from repro.analysis.absint.rules import (
    ABSINT_RULES,
    NumCancellationRule,
    NumDivZeroRule,
    NumFloat32UnsafeRule,
    NumLogNonpositiveRule,
)

__all__ = [
    "EPS32",
    "EMPTY",
    "TOP",
    "Interval",
    "ModuleNumerics",
    "NumericFunction",
    "extract_numerics",
    "parse_budget_tag",
    "parse_range_tags",
    "AbsintResult",
    "analyze_index",
    "certification_report",
    "ABSINT_RULES",
    "NumCancellationRule",
    "NumDivZeroRule",
    "NumFloat32UnsafeRule",
    "NumLogNonpositiveRule",
]
