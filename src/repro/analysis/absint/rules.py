"""The four numeric project rules riding on the shared fixpoint.

All four are thin :class:`~repro.analysis.project.ProjectRule` views over
one memoized :func:`~repro.analysis.absint.interp.analyze_index` run --
``--select num-div-zero`` does not re-run the interpreter three more
times, and the certification report reuses the same result.

Each rule catches a bug class PR 4's symbolic dataflow provably cannot:
dataflow tracks *units* (dB vs linear), these track *values* (an interval
that reaches 0 flowing into ``log10`` is a unit-correct crash).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.absint.interp import (
    RULE_CANCELLATION,
    RULE_DIV_ZERO,
    RULE_FLOAT32_UNSAFE,
    RULE_LOG_NONPOSITIVE,
    analyze_index,
)
from repro.analysis.engine import Finding
from repro.analysis.project import ProjectIndex, ProjectRule

__all__ = [
    "NumLogNonpositiveRule",
    "NumDivZeroRule",
    "NumCancellationRule",
    "NumFloat32UnsafeRule",
    "ABSINT_RULES",
]


class _AbsintRule(ProjectRule):
    """Replays the memoized whole-project analysis, filtered to one rule."""

    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for finding in analyze_index(index).findings:
            if finding.rule == self.name:
                yield finding


class NumLogNonpositiveRule(_AbsintRule):
    name = RULE_LOG_NONPOSITIVE
    description = (
        "a value whose proven interval includes <= 0 reaches "
        "log10/log/db/db20; guard it or add a positive floor"
    )


class NumDivZeroRule(_AbsintRule):
    name = RULE_DIV_ZERO
    description = (
        "a denominator's proven interval contains 0 outside an "
        "np.errstate-sanctioned region"
    )


class NumCancellationRule(_AbsintRule):
    name = RULE_CANCELLATION
    description = (
        "subtraction of same-sign intervals with provable catastrophic "
        "cancellation (relative-error amplification >= 1e4)"
    )


class NumFloat32UnsafeRule(_AbsintRule):
    name = RULE_FLOAT32_UNSAFE
    description = (
        "proven absolute float32 error bound exceeds the function's "
        "declared lint-float32-budget"
    )


ABSINT_RULES = (
    NumLogNonpositiveRule(),
    NumDivZeroRule(),
    NumCancellationRule(),
    NumFloat32UnsafeRule(),
)
