"""Interprocedural interval abstract interpretation over the ProjectIndex.

:func:`analyze_index` runs the numeric programs extracted by
:mod:`repro.analysis.absint.extract` to a fixpoint:

1. every function's parameters are seeded from its declared
   ``lint-ranges:`` tags (or left *unknown*);
2. each body is abstractly executed -- assignments bind intervals,
   branches narrow by their comparison tests and join, loops iterate
   with widening, ``raise`` kills a path, ``np.errstate(... "ignore")``
   marks a sanctioned floating-point region;
3. return intervals propagate to call sites across the whole project
   (widened after a few rounds, so the fixpoint provably terminates);
4. a final pass re-executes every body against the stable state and
   collects findings and the certification rows.

The analysis follows the package's *sound-ish* contract: a value is
either ``None`` (no information, never flagged) or an
:class:`~repro.analysis.absint.domain.Interval` that soundly
over-approximates everything the analysis could prove.  Checks fire only
on proven intervals:

* ``num-log-nonpositive`` -- an interval including values ``<= 0``
  reaches ``log10`` / ``log`` / ``db`` / ``db20``;
* ``num-div-zero`` -- a denominator interval containing zero;
* ``num-cancellation`` -- subtraction of overlapping same-sign intervals
  whose result is provably orders of magnitude smaller than its
  operands (relative-error amplification ``>= CANCELLATION_THRESHOLD``);
* ``num-float32-unsafe`` -- a function declaring
  ``lint-float32-budget:`` whose proven absolute float32 error bound
  exceeds (or cannot be proven within) the budget.

``watts_to_dbm`` is the designated ``-inf`` sentinel and is never
flagged, matching the runtime sanitizer's treatment of its scoped
``errstate``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import domain
from repro.analysis.absint.domain import EPS32, Interval
from repro.analysis.absint.extract import ModuleNumerics, NumericFunction
from repro.analysis.engine import Finding
from repro.analysis.project import CallSummary, ModuleSummary, ProjectIndex

__all__ = [
    "AbsintResult",
    "FunctionCertificate",
    "CANCELLATION_THRESHOLD",
    "RULE_LOG_NONPOSITIVE",
    "RULE_DIV_ZERO",
    "RULE_CANCELLATION",
    "RULE_FLOAT32_UNSAFE",
    "analyze_index",
    "certification_report",
]

RULE_LOG_NONPOSITIVE = "num-log-nonpositive"
RULE_DIV_ZERO = "num-div-zero"
RULE_CANCELLATION = "num-cancellation"
RULE_FLOAT32_UNSAFE = "num-float32-unsafe"

#: minimum provable relative-error amplification before ``a - b`` counts
#: as catastrophic cancellation (see ``cancellation_amplification``)
CANCELLATION_THRESHOLD = 1e4

#: fixpoint iteration cap (widening makes far fewer rounds suffice)
_MAX_ROUNDS = 20
#: joins tolerated per slot before widening to +/-inf
_WIDEN_AFTER = 3
#: abstract iterations of one loop body before trusting the widened env
_LOOP_PASSES = 4

_LN10 = math.log(10.0)
_LOG10E = math.log10(math.e)

#: attribute constants resolved without imports (``math.pi``, ``np.inf``)
_ATTR_CONSTS = {
    "pi": math.pi,
    "e": math.e,
    "inf": math.inf,
    "euler_gamma": 0.5772156649015329,
    "nan": math.nan,
}

#: leaves treated as log-family intrinsics: leaf -> (scale, check)
_LOG_LEAVES = {
    "log10": (1.0, True),
    "log": (_LN10, True),
    "log2": (1.0 / math.log10(2.0), True),
    "db": (10.0, True),
    "db20": (20.0, True),
}

#: leaves treated as pow10-family intrinsics: leaf -> scale
_POW10_LEAVES = {"undb": 10.0, "undb20": 20.0}

_IDENTITY_LEAVES = {
    "float",
    "float64",
    "asarray",
    "array",
    "ascontiguousarray",
    "atleast_1d",
    "atleast_2d",
    "ravel",
    "reshape",
    "copy",
    "squeeze",
    "real",
}

#: order-statistic reductions: interval-preserving, no added rounding
_SELECT_LEAVES = {"max", "amax", "min", "amin", "nanmax", "nanmin"}
#: convex reductions: interval-preserving, unbounded accumulation error
_CONVEX_LEAVES = {"mean", "median", "nanmean", "nanmedian"}

def _narrow_vs_interval(
    value: Optional[Interval], op: str, bound: Interval
) -> Optional[Interval]:
    """Narrow ``value`` under ``value <op> v`` for some ``v`` in ``bound``.

    A non-point bound still carries one-sided information: ``x > v`` with
    ``v >= bound.lo`` implies ``x > bound.lo``, and symmetrically for the
    upper side.  ``!=`` against a non-point bound excludes nothing.
    """
    if bound.is_empty:
        return value
    if bound.is_point:
        return domain.narrow(value, op, bound.lo)
    if op in (">", ">="):
        return domain.narrow(value, op, bound.lo)
    if op in ("<", "<="):
        return domain.narrow(value, op, bound.hi)
    if op == "==":
        value = domain.narrow(value, ">=", bound.lo)
        return domain.narrow(value, "<=", bound.hi)
    return value


@dataclass
class FunctionCertificate:
    """One row of the numerics certification report."""

    qualname: str
    path: str
    line: int
    ranges: Dict[str, Interval] = field(default_factory=dict)
    returns: Optional[Interval] = None
    budget: Optional[float] = None

    @property
    def budget_ok(self) -> Optional[bool]:
        if self.budget is None:
            return None
        if self.returns is None:
            return False
        return self.returns.err32 <= self.budget

    def to_dict(self) -> dict:
        return {
            "function": self.qualname,
            "path": self.path,
            "line": self.line,
            "param_ranges": {k: v.to_dict() for k, v in self.ranges.items()},
            "return_interval": (
                self.returns.to_dict() if self.returns is not None else None
            ),
            "float32_abs_error": (
                domain._json_float(self.returns.err32)
                if self.returns is not None
                else None
            ),
            "float32_budget": self.budget,
            "budget_ok": self.budget_ok,
        }


@dataclass
class AbsintResult:
    """Findings plus per-function certificates from one fixpoint run."""

    findings: List[Finding] = field(default_factory=list)
    certificates: List[FunctionCertificate] = field(default_factory=list)
    rounds: int = 0


Env = Dict[str, Optional[Interval]]


def _fmt(iv: Interval) -> str:
    return str(iv)


class _Interpreter:
    """Shared state of one whole-project analysis."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        #: qual -> (module summary, numeric function)
        self.functions: Dict[str, Tuple[ModuleSummary, NumericFunction]] = {}
        #: per-module parsed numerics (path -> ModuleNumerics)
        self.numerics: Dict[str, ModuleNumerics] = {}
        #: qual -> current return interval (EMPTY = not yet / no return)
        self.returns: Dict[str, Optional[Interval]] = {}
        self._join_counts: Dict[str, int] = {}
        #: field name -> joined declared interval across all classes
        self.field_ranges: Dict[str, Optional[Interval]] = {}
        #: fully qualified module const name -> interval
        self.global_consts: Dict[str, Interval] = {}

        for summary in index.summaries:
            nums = ModuleNumerics.from_dict(getattr(summary, "numerics", None))
            self.numerics[summary.path] = nums
            prefix = summary.module or summary.path
            for func in nums.functions:
                qual = f"{prefix}.{func.qualname}"
                self.functions[qual] = (summary, func)
                self.returns[qual] = domain.EMPTY
            for fields in nums.class_ranges.values():
                for name, (lo, hi) in fields.items():
                    iv = domain.rng(lo, hi)
                    if name in self.field_ranges:
                        self.field_ranges[name] = domain.join(
                            self.field_ranges[name], iv
                        )
                    else:
                        self.field_ranges[name] = iv
            for name, value in nums.consts.items():
                self.global_consts[f"{prefix}.{name}"] = domain.const(value)

        # findings are collected only on the final pass
        self.collect: bool = False
        self.findings: Dict[Tuple[str, int, int, str], Finding] = {}

    # -- seeding -----------------------------------------------------------

    def seed_env(self, summary: ModuleSummary, func: NumericFunction) -> Env:
        env: Env = {}
        own_fields: Dict[str, Tuple[float, float]] = {}
        if "." in func.qualname:
            cls_name = func.qualname.split(".")[0]
            own_fields = self.numerics[summary.path].class_ranges.get(
                cls_name, {}
            )
        for param in func.params:
            if param in ("self", "cls"):
                continue
            declared = func.ranges.get(param)
            if declared is None and func.qualname.endswith("__init__"):
                declared = own_fields.get(param)
            env[param] = (
                domain.rng(*declared) if declared is not None else None
            )
        return env

    # -- finding sink ------------------------------------------------------

    def report(
        self,
        summary: ModuleSummary,
        node: dict,
        rule: str,
        message: str,
    ) -> None:
        if not self.collect:
            return
        line = int(node.get("l", 0) or 0)
        col = int(node.get("c", 0) or 0)
        key = (summary.path, line, col, rule)
        if key not in self.findings:
            self.findings[key] = Finding(
                path=summary.path, line=line, col=col, rule=rule, message=message
            )

    # -- expression evaluation ---------------------------------------------

    def eval_expr(
        self,
        expr: Optional[dict],
        env: Env,
        summary: ModuleSummary,
        errstate: bool,
    ) -> Optional[Interval]:
        if expr is None:
            return None
        kind = expr.get("k")
        if kind == "const":
            return domain.const(float(expr["v"]))
        if kind == "var":
            return self._lookup_name(expr["n"], env, summary)
        if kind == "attr":
            return self._lookup_attr(expr, env, summary)
        if kind == "sub":
            return self.eval_expr(expr.get("a"), env, summary, errstate)
        if kind == "un":
            operand = self.eval_expr(expr.get("a"), env, summary, errstate)
            if operand is None:
                return None
            return domain.neg(operand)
        if kind == "bin":
            return self._eval_bin(expr, env, summary, errstate)
        if kind == "call":
            return self._eval_call(expr, env, summary, errstate)
        if kind == "ifexp":
            return self._eval_ifexp(expr, env, summary, errstate)
        if kind in ("cmp", "and", "or", "not"):
            return None  # booleans are outside the numeric domain
        return None

    def _lookup_name(
        self, name: str, env: Env, summary: ModuleSummary
    ) -> Optional[Interval]:
        if name in env:
            return env[name]
        nums = self.numerics.get(summary.path)
        if nums is not None and name in nums.consts:
            return domain.const(nums.consts[name])
        target = summary.imports.get(name)
        if target is not None and target in self.global_consts:
            return self.global_consts[target]
        return None

    def _lookup_attr(
        self, expr: dict, env: Env, summary: ModuleSummary
    ) -> Optional[Interval]:
        name = expr.get("n", "")
        base = expr.get("base", "")
        base_head = base.split(".")[0] if base else ""
        if base_head in ("math", "np", "numpy") and name in _ATTR_CONSTS:
            value = _ATTR_CONSTS[name]
            if math.isnan(value):
                return Interval(-math.inf, math.inf, may_nan=True, err32=math.inf)
            return domain.const(value)
        # imported module constant: noise.BOLTZMANN
        if base_head and base_head in summary.imports:
            qual = f"{summary.imports[base_head]}.{name}"
            if qual in self.global_consts:
                return self.global_consts[qual]
        # declared dataclass field range, unique-name convention
        return self.field_ranges.get(name)

    def _eval_bin(
        self, expr: dict, env: Env, summary: ModuleSummary, errstate: bool
    ) -> Optional[Interval]:
        op = expr["op"]
        a = self.eval_expr(expr.get("a"), env, summary, errstate)
        b = self.eval_expr(expr.get("b"), env, summary, errstate)
        if op in ("div", "mod", "floordiv"):
            if (
                b is not None
                and b.contains_zero()
                and not b.is_empty
                and not errstate
            ):
                self.report(
                    summary,
                    expr,
                    RULE_DIV_ZERO,
                    (
                        f"denominator of `{expr.get('t', '')}` has proven "
                        f"interval {_fmt(b)}, which contains 0"
                    ),
                )
            if op != "div" or a is None or b is None:
                return None
            return domain.div(a, b)
        if op == "sub":
            if (
                a is not None
                and b is not None
                and not a.is_empty
                and not b.is_empty
                and not (a.is_point and b.is_point)
                and a.same_sign()
                and b.same_sign()
                and (a.lo >= 0.0) == (b.lo >= 0.0)
            ):
                amplification = domain.cancellation_amplification(a, b)
                if amplification >= CANCELLATION_THRESHOLD:
                    amp_text = (
                        "inf"
                        if math.isinf(amplification)
                        else f"{amplification:.0e}"
                    )
                    self.report(
                        summary,
                        expr,
                        RULE_CANCELLATION,
                        (
                            f"`{expr.get('t', '')}` subtracts same-sign "
                            f"intervals {_fmt(a)} and {_fmt(b)}; catastrophic "
                            f"cancellation amplifies relative error by "
                            f">= {amp_text}x"
                        ),
                    )
            if a is None or b is None:
                return None
            return domain.sub(a, b)
        if a is None and b is None:
            return None
        if op == "add":
            if a is None or b is None:
                return None
            return domain.add(a, b)
        if op == "mul":
            if a is None or b is None:
                return None
            return domain.mul(a, b)
        if op == "pow":
            return self._eval_pow(a, b)
        return None

    def _eval_pow(
        self, base: Optional[Interval], exponent: Optional[Interval]
    ) -> Optional[Interval]:
        if base is None or exponent is None:
            return None
        if base.is_point and base.lo > 0.0:
            # c ** x == 10 ** (x * log10(c)): the pow10 transfer applies
            scaled = domain.mul(exponent, domain.const(math.log10(base.lo)))
            return domain.pow10(scaled, 1.0)
        if exponent.is_point:
            return domain.power(base, exponent)
        return None

    def _eval_ifexp(
        self, expr: dict, env: Env, summary: ModuleSummary, errstate: bool
    ) -> Optional[Interval]:
        test = expr.get("test")
        env_true = dict(env)
        env_false = dict(env)
        if test is not None:
            self.narrow_env(env_true, test, True, summary, errstate)
            self.narrow_env(env_false, test, False, summary, errstate)
        a = self.eval_expr(expr.get("a"), env_true, summary, errstate)
        b = self.eval_expr(expr.get("b"), env_false, summary, errstate)
        return domain.join(a, b)

    # -- calls -------------------------------------------------------------

    def _resolve_call(
        self, summary: ModuleSummary, expr: dict
    ) -> Optional[str]:
        fn = expr.get("fn", "")
        call = CallSummary(
            callee=fn,
            attr=fn.split(".")[-1],
            line=int(expr.get("l", 0) or 0),
            col=int(expr.get("c", 0) or 0),
        )
        return self.index.resolve_callee(summary, call)

    def _eval_call(
        self, expr: dict, env: Env, summary: ModuleSummary, errstate: bool
    ) -> Optional[Interval]:
        fn = expr.get("fn", "")
        leaf = fn.split(".")[-1]
        args = [
            self.eval_expr(a, env, summary, errstate)
            for a in expr.get("a", [])
        ]
        first = args[0] if args else None

        if leaf in _LOG_LEAVES:
            scale, check = _LOG_LEAVES[leaf]
            if (
                check
                and first is not None
                and first.reaches_nonpositive()
                and not errstate
            ):
                self.report(
                    summary,
                    expr,
                    RULE_LOG_NONPOSITIVE,
                    (
                        f"`{expr.get('t', '')}`: operand has proven interval "
                        f"{_fmt(first)}, which includes values <= 0 reaching "
                        f"{leaf}(); guard the operand or add a positive floor"
                    ),
                )
            if first is None:
                return None
            return domain.log10(first, scale)
        if leaf in _POW10_LEAVES:
            if first is None:
                return None
            return domain.pow10(first, _POW10_LEAVES[leaf])
        if leaf == "watts_to_dbm":
            # designated -inf sentinel: sanctioned, never flagged
            if first is None:
                return None
            return domain.add(domain.log10(first, 10.0), domain.const(30.0))
        if leaf == "dbm_to_watts":
            if first is None:
                return None
            return domain.pow10(
                domain.sub(first, domain.const(30.0)), 10.0
            )
        if leaf == "exp":
            if first is None:
                return None
            return domain.pow10(domain.mul(first, domain.const(_LOG10E)), 1.0)
        if leaf in ("sqrt",):
            if first is None:
                return None
            return domain.sqrt(first)
        if leaf in ("abs", "absolute", "fabs"):
            if first is None:
                return None
            return domain.absval(first)
        if leaf in ("maximum", "max") and len(args) >= 2:
            return self._fold(domain.maximum, args, lo_unknown=False)
        if leaf in ("minimum", "min") and len(args) >= 2:
            return self._fold(domain.minimum, args, lo_unknown=True)
        if leaf in _SELECT_LEAVES or (
            leaf in ("max", "min") and len(args) == 1
        ):
            return first
        if leaf in _CONVEX_LEAVES:
            if first is None:
                return None
            return Interval(
                first.lo, first.hi, may_nan=first.may_nan, err32=math.inf
            )
        if leaf in ("sum", "nansum", "cumsum"):
            # same-signed elements cannot cancel, so the sum keeps the
            # elementwise bound nearest zero (assumes a nonempty array,
            # as the mean/median transfer already does)
            if first is None or not first.same_sign():
                return None
            if first.lo >= 0.0:
                return Interval(
                    first.lo, math.inf, may_nan=first.may_nan, err32=math.inf
                )
            return Interval(
                -math.inf, first.hi, may_nan=first.may_nan, err32=math.inf
            )
        if leaf == "clip" and len(args) == 3:
            if any(a is None for a in args):
                lo, hi = args[1], args[2]
                lo_bound = lo.lo if lo is not None else -math.inf
                hi_bound = hi.hi if hi is not None else math.inf
                return Interval(lo_bound, hi_bound, may_nan=True, err32=math.inf)
            return domain.clip(args[0], args[1], args[2])
        if leaf in ("cos", "sin"):
            if first is None:
                return None
            return domain.bounded_unop(-1.0, 1.0)
        if leaf in ("square",):
            if first is None:
                return None
            return domain.mul(first, first)
        if leaf in ("ones", "ones_like"):
            return domain.const(1.0)
        if leaf in ("zeros", "zeros_like", "zeros_like"):
            return domain.const(0.0)
        if leaf == "full" and len(args) >= 2:
            return args[1]
        if leaf == "float32":
            if first is None:
                return None
            extra = first.mag_sup * EPS32
            return Interval(
                first.lo,
                first.hi,
                may_nan=first.may_nan,
                err32=first.err32 + extra if math.isfinite(extra) else math.inf,
            )
        if leaf in _IDENTITY_LEAVES:
            return first

        resolved = self._resolve_call(summary, expr)
        if resolved is not None and resolved in self.functions:
            ret = self.returns.get(resolved)
            if ret is not None and ret.is_empty:
                return None
            return ret
        return None

    @staticmethod
    def _fold(op, args: List[Optional[Interval]], lo_unknown: bool):
        """n-ary min/max; an unknown operand leaves one side unbounded."""
        known = [a for a in args if a is not None]
        if not known:
            return None
        result = known[0]
        for arg in known[1:]:
            result = op(result, arg)
        if len(known) != len(args):
            if lo_unknown:
                result = Interval(
                    -math.inf, result.hi, may_nan=True, err32=math.inf
                )
            else:
                result = Interval(
                    result.lo, math.inf, may_nan=True, err32=math.inf
                )
        return result

    # -- guard narrowing ---------------------------------------------------

    def narrow_env(
        self,
        env: Env,
        test: Optional[dict],
        truth: bool,
        summary: ModuleSummary,
        errstate: bool,
    ) -> None:
        """Refine ``env`` in place under ``test`` evaluating to ``truth``."""
        if test is None:
            return
        kind = test.get("k")
        if kind == "not":
            self.narrow_env(env, test.get("a"), not truth, summary, errstate)
            return
        if kind == "and":
            if truth:  # all conjuncts hold
                for part in test.get("parts", []):
                    self.narrow_env(env, part, True, summary, errstate)
            return
        if kind == "or":
            if not truth:  # all disjuncts fail
                for part in test.get("parts", []):
                    self.narrow_env(env, part, False, summary, errstate)
            return
        if kind != "cmp":
            return
        op = test.get("op", "")
        lhs, rhs = test.get("lhs"), test.get("rhs")
        # evaluate both sides so checks inside tests still fire
        lhs_iv = self.eval_expr(lhs, env, summary, errstate)
        rhs_iv = self.eval_expr(rhs, env, summary, errstate)
        effective = op if truth else domain.negate_op(op)
        if effective is None:
            return
        if (
            isinstance(lhs, dict)
            and lhs.get("k") == "var"
            and rhs_iv is not None
        ):
            name = lhs["n"]
            env[name] = _narrow_vs_interval(env.get(name), effective, rhs_iv)
        elif (
            isinstance(rhs, dict)
            and rhs.get("k") == "var"
            and lhs_iv is not None
        ):
            flipped = {
                ">": "<",
                "<": ">",
                ">=": "<=",
                "<=": ">=",
                "==": "==",
                "!=": "!=",
            }[effective]
            name = rhs["n"]
            env[name] = _narrow_vs_interval(env.get(name), flipped, lhs_iv)

    # -- statement execution -----------------------------------------------

    def exec_block(
        self,
        stmts: List[dict],
        env: Env,
        summary: ModuleSummary,
        returns: List[Optional[Interval]],
        errstate: bool,
    ) -> Tuple[Env, bool]:
        """Run one statement list; True means every path terminated."""
        for stmt in stmts:
            kind = stmt.get("kind")
            if kind == "assign":
                env[stmt["target"]] = self.eval_expr(
                    stmt.get("expr"), env, summary, errstate
                )
            elif kind == "expr":
                self.eval_expr(stmt.get("expr"), env, summary, errstate)
            elif kind == "return":
                expr = stmt.get("expr")
                if expr is None:
                    returns.append(None)
                else:
                    returns.append(
                        self.eval_expr(expr, env, summary, errstate)
                    )
                return env, True
            elif kind == "raise":
                return env, True
            elif kind == "branch":
                env, terminated = self._exec_branch(
                    stmt, env, summary, returns, errstate
                )
                if terminated:
                    return env, True
            elif kind == "loop":
                env = self._exec_loop(stmt, env, summary, returns, errstate)
            elif kind == "errstate":
                env, terminated = self.exec_block(
                    stmt.get("body", []), env, summary, returns, True
                )
                if terminated:
                    return env, True
        return env, False

    def _exec_branch(
        self,
        stmt: dict,
        env: Env,
        summary: ModuleSummary,
        returns: List[Optional[Interval]],
        errstate: bool,
    ) -> Tuple[Env, bool]:
        test = stmt.get("test")
        env_true = dict(env)
        env_false = dict(env)
        self.narrow_env(env_true, test, True, summary, errstate)
        self.narrow_env(env_false, test, False, summary, errstate)
        out_true, term_true = self.exec_block(
            stmt.get("body", []), env_true, summary, returns, errstate
        )
        out_false, term_false = self.exec_block(
            stmt.get("orelse", []), env_false, summary, returns, errstate
        )
        if term_true and term_false:
            return env, True
        if term_true:
            return out_false, False
        if term_false:
            return out_true, False
        return _join_env(out_true, out_false), False

    def _exec_loop(
        self,
        stmt: dict,
        env: Env,
        summary: ModuleSummary,
        returns: List[Optional[Interval]],
        errstate: bool,
    ) -> Env:
        body = stmt.get("body", [])
        entry = env
        for iteration in range(_LOOP_PASSES):
            out, _ = self.exec_block(
                body, dict(entry), summary, returns, errstate
            )
            merged = _join_env(entry, out)
            if _env_equal(merged, entry):
                return entry
            if iteration >= _LOOP_PASSES - 2:
                entry = _widen_env(entry, merged)
            else:
                entry = merged
        return entry

    # -- per-function ------------------------------------------------------

    def eval_function(
        self, qual: str
    ) -> Tuple[Optional[Interval], Env]:
        summary, func = self.functions[qual]
        env = self.seed_env(summary, func)
        seeded = dict(env)
        returns: List[Optional[Interval]] = []
        _, terminated = self.exec_block(
            func.body, env, summary, returns, errstate=False
        )
        if not returns:
            return (domain.EMPTY if terminated else None), seeded
        result: Optional[Interval] = domain.EMPTY
        for value in returns:
            result = domain.join(result, value)
            if result is None:
                break
        return result, seeded

    # -- driver ------------------------------------------------------------

    def run(self) -> AbsintResult:
        result = AbsintResult()
        order = sorted(self.functions)
        for round_number in range(_MAX_ROUNDS):
            changed = False
            for qual in order:
                new_ret, _ = self.eval_function(qual)
                old_ret = self.returns[qual]
                if _ret_equal(old_ret, new_ret):
                    continue
                count = self._join_counts.get(qual, 0) + 1
                self._join_counts[qual] = count
                if count > _WIDEN_AFTER and old_ret is not None:
                    new_ret = domain.widen(old_ret, new_ret)
                    if _ret_equal(old_ret, new_ret):
                        continue
                self.returns[qual] = new_ret
                changed = True
            result.rounds = round_number + 1
            if not changed:
                break

        # final pass: stable state, collect findings + certificates
        self.collect = True
        for qual in order:
            summary, func = self.functions[qual]
            returns, seeded = self.eval_function(qual)
            if returns is not None and returns.is_empty:
                returns = None
            if func.budget is not None:
                if returns is None:
                    message = (
                        f"`{func.qualname}` declares lint-float32-budget: "
                        f"{func.budget:g} but no output interval is provable; "
                        "declare lint-ranges for its inputs"
                    )
                    self._budget_finding(summary, func, message)
                elif returns.err32 > func.budget:
                    err_text = (
                        "inf"
                        if math.isinf(returns.err32)
                        else f"{returns.err32:.3g}"
                    )
                    message = (
                        f"`{func.qualname}` exceeds its float32 budget: "
                        f"proven absolute error bound {err_text} > declared "
                        f"{func.budget:g}"
                    )
                    self._budget_finding(summary, func, message)
            if (
                returns is not None
                or func.budget is not None
                or func.ranges
            ):
                result.certificates.append(
                    FunctionCertificate(
                        qualname=qual,
                        path=summary.path,
                        line=func.line,
                        ranges={
                            k: v for k, v in seeded.items() if v is not None
                        },
                        returns=returns,
                        budget=func.budget,
                    )
                )
        result.findings = sorted(self.findings.values())
        return result

    def _budget_finding(
        self, summary: ModuleSummary, func: NumericFunction, message: str
    ) -> None:
        self.report(
            summary,
            {"l": func.line, "c": func.col},
            RULE_FLOAT32_UNSAFE,
            message,
        )


def _join_env(a: Env, b: Env) -> Env:
    out: Env = {}
    for name in set(a) | set(b):
        if name not in a or name not in b:
            out[name] = None
        else:
            out[name] = domain.join(a[name], b[name])
    return out


def _widen_env(old: Env, new: Env) -> Env:
    out: Env = {}
    for name in set(old) | set(new):
        if name not in old or name not in new:
            out[name] = None
        else:
            out[name] = domain.widen(old[name], new[name])
    return out


def _iv_key(iv: Optional[Interval]):
    if iv is None:
        return None
    return domain.interval_tuple(iv)


def _env_equal(a: Env, b: Env) -> bool:
    if set(a) != set(b):
        return False
    return all(_iv_key(a[k]) == _iv_key(b[k]) for k in a)


def _ret_equal(a: Optional[Interval], b: Optional[Interval]) -> bool:
    return _iv_key(a) == _iv_key(b)


def analyze_index(index: ProjectIndex) -> AbsintResult:
    """Run (or replay) the whole-project numeric analysis for ``index``.

    The result is memoized on the index: the four absint rules and the
    certification report all share one fixpoint run.
    """
    cached = getattr(index, "_absint_result", None)
    if cached is not None:
        return cached
    result = _Interpreter(index).run()
    index._absint_result = result
    return result


def certification_report(index: ProjectIndex) -> dict:
    """Machine-readable proof artifact for the capture-chain numerics.

    Lists every function the analysis proved something about: its seeded
    parameter ranges, proven output interval, absolute float32 error
    bound, and declared budget status.  ROADMAP item 2's reduced-precision
    fast path is gated on the ``budget_ok`` entries of this report.
    """
    result = analyze_index(index)
    rows = sorted(result.certificates, key=lambda c: c.qualname)
    return {
        "version": 1,
        "rounds": result.rounds,
        "functions": [row.to_dict() for row in rows],
        "summary": {
            "certified": len(rows),
            "with_budget": sum(1 for r in rows if r.budget is not None),
            "budget_ok": sum(1 for r in rows if r.budget_ok),
            "findings": len(result.findings),
        },
    }
