"""AST -> concurrency IR: locks held, state touched, threads spawned.

The lockset/lock-order rules replay from the lint cache without
re-parsing unchanged files, so -- like the numeric IR next door in
``absint/extract.py`` -- everything they need is compressed into
JSON-serializable per-function facts at parse time:

* every ``with <lock>:`` region and bare ``.acquire()`` call, with the
  lock expression as written and the locks already held at that point
  (:class:`LockAcquire` -- the raw material for the held-while-acquiring
  order graph);
* every attribute read/write whose receiver the rules can name --
  ``self.attr``, ``self.obj.attr``, a local variable assigned from a
  constructor, or a module-level global -- with the locks held around
  the access (:class:`SharedAccess` -- the raw material for Eraser-style
  lockset intersection);
* every call site with its held-lock set and, when the receiver is a
  constructor-typed local, the constructor expression
  (:class:`HeldCall` -- call-graph edges that carry locks across
  functions, plus the ``Queue.put``-under-lock hazard sites);
* every ``threading.Thread(target=...)`` spawn and executor
  ``submit``/``map_tasks`` dispatch (:class:`ThreadSpawn` -- the thread
  roots the reachability pass starts from).

Lock expressions stay textual here ("self._lock", "_REGISTRY_LOCK");
:mod:`repro.analysis.concurrency.rules` canonicalizes them against the
project index (owning class, module) where cross-module identity is
known.  An expression counts as a lock when its final name component
contains a ``lock``/``rlock``/``mutex`` token -- the same
convention-over-inference bargain the unit-domain rules strike.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionConcurrency",
    "HeldCall",
    "LockAcquire",
    "ModuleConcurrency",
    "SharedAccess",
    "ThreadSpawn",
    "extract_concurrency",
    "looks_like_lock",
]

#: final-component name tokens that mark a lock object
_LOCK_TOKENS = frozenset({"lock", "rlock", "mutex"})

#: method names that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "insert",
        "discard",
    }
)

#: executor-style dispatch attributes whose first argument runs on
#: another thread (mirrors the parallel-safety rules)
_DISPATCH_ATTRS = frozenset({"submit", "map_tasks"})


def looks_like_lock(text: str) -> bool:
    """Does a dotted expression name a lock, by naming convention?"""
    leaf = text.split(".")[-1]
    tokens = set(t for t in leaf.lower().split("_") if t)
    return bool(tokens & _LOCK_TOKENS)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class LockAcquire:
    """One lock acquisition site with the locks already held there."""

    lock: str
    line: int
    col: int
    held: Tuple[str, ...] = ()
    #: True for ``with lock:`` regions, False for bare ``.acquire()``
    scoped: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "lock": self.lock,
            "line": self.line,
            "col": self.col,
            "held": list(self.held),
            "scoped": self.scoped,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LockAcquire":
        return cls(
            lock=data["lock"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            col=data["col"],  # type: ignore[arg-type]
            held=tuple(data.get("held", ())),  # type: ignore[arg-type]
            scoped=bool(data.get("scoped", True)),
        )


@dataclass
class SharedAccess:
    """One attribute/global access the lockset analysis can attribute."""

    #: receiver as written: "self", "self.obj", a local name, or a
    #: module-level global (with ``attr == ""`` for plain globals)
    recv: str
    attr: str
    line: int
    col: int
    #: "read" or "write"
    kind: str
    held: Tuple[str, ...] = ()
    #: constructor expression that typed a local receiver, when known
    recv_type: Optional[str] = None
    #: True when recv is a module-level name (global state)
    is_global: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "recv": self.recv,
            "attr": self.attr,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "held": list(self.held),
            "recv_type": self.recv_type,
            "is_global": self.is_global,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SharedAccess":
        return cls(
            recv=data["recv"],  # type: ignore[arg-type]
            attr=data["attr"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            col=data["col"],  # type: ignore[arg-type]
            kind=data["kind"],  # type: ignore[arg-type]
            held=tuple(data.get("held", ())),  # type: ignore[arg-type]
            recv_type=data.get("recv_type"),  # type: ignore[arg-type]
            is_global=bool(data.get("is_global", False)),
        )


@dataclass
class HeldCall:
    """One call site annotated with the locks held around it."""

    callee: str
    attr: str
    line: int
    col: int
    held: Tuple[str, ...] = ()
    recv_type: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "callee": self.callee,
            "attr": self.attr,
            "line": self.line,
            "col": self.col,
            "held": list(self.held),
            "recv_type": self.recv_type,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HeldCall":
        return cls(
            callee=data["callee"],  # type: ignore[arg-type]
            attr=data["attr"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            col=data["col"],  # type: ignore[arg-type]
            held=tuple(data.get("held", ())),  # type: ignore[arg-type]
            recv_type=data.get("recv_type"),  # type: ignore[arg-type]
        )


@dataclass
class ThreadSpawn:
    """One thread-root site: a Thread(target=...) or executor dispatch."""

    target: str
    line: int
    col: int
    #: "thread" for Thread(target=...), "dispatch" for submit/map_tasks
    kind: str = "thread"

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ThreadSpawn":
        return cls(
            target=data["target"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            col=data["col"],  # type: ignore[arg-type]
            kind=data.get("kind", "thread"),  # type: ignore[arg-type]
        )


@dataclass
class FunctionConcurrency:
    """Concurrency facts for one function (qualname matches the summary)."""

    qualname: str
    acquires: List[LockAcquire] = field(default_factory=list)
    accesses: List[SharedAccess] = field(default_factory=list)
    calls: List[HeldCall] = field(default_factory=list)
    spawns: List[ThreadSpawn] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "acquires": [a.to_dict() for a in self.acquires],
            "accesses": [a.to_dict() for a in self.accesses],
            "calls": [c.to_dict() for c in self.calls],
            "spawns": [s.to_dict() for s in self.spawns],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionConcurrency":
        return cls(
            qualname=data["qualname"],  # type: ignore[arg-type]
            acquires=[LockAcquire.from_dict(a) for a in data.get("acquires", [])],
            accesses=[SharedAccess.from_dict(a) for a in data.get("accesses", [])],
            calls=[HeldCall.from_dict(c) for c in data.get("calls", [])],
            spawns=[ThreadSpawn.from_dict(s) for s in data.get("spawns", [])],
        )


@dataclass
class ModuleConcurrency:
    """All concurrency facts of one module, keyed like its summary."""

    functions: List[FunctionConcurrency] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"functions": [f.to_dict() for f in self.functions]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleConcurrency":
        return cls(
            functions=[
                FunctionConcurrency.from_dict(f) for f in data.get("functions", [])
            ]
        )


class _LocalNames(ast.NodeVisitor):
    """Names a function binds locally (params added by the caller)."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.names.add(node.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.names.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.names.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _function_params(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


class _FunctionWalker:
    """One pass over a function body tracking the held-lock stack."""

    def __init__(self, qualname: str, module_level_names: Set[str]) -> None:
        self.out = FunctionConcurrency(qualname=qualname)
        self.module_level_names = module_level_names
        self.local_names: Set[str] = set()
        self.local_types: Dict[str, str] = {}
        self.global_decls: Set[str] = set()
        self.held: List[str] = []

    def run(self, func: ast.AST) -> FunctionConcurrency:
        collector = _LocalNames()
        for stmt in func.body:
            collector.visit(stmt)
        self.local_names = set(_function_params(func)) | collector.names
        for stmt in func.body:
            self._visit_stmt(stmt)
        return self.out

    # -- statements --------------------------------------------------------

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are walked as their own functions
        if isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
            return
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            for target in stmt.targets:
                self._visit_target(target)
            self._note_types(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                self._note_types([stmt.target], stmt.value)
            self._visit_target(stmt.target)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            self._visit_target(stmt.target, also_read=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            self._visit_target(stmt.target)
            for s in [*stmt.body, *stmt.orelse]:
                self._visit_stmt(s)
            return
        # generic compound/simple statement: child statements recurse with
        # the same held stack, child expressions get the expression scan
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._visit_stmt(child)
            elif isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._visit_stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._visit_expr(sub)

    def _visit_with(self, stmt: ast.stmt) -> None:
        pushed = 0
        for item in stmt.items:
            text = _dotted(item.context_expr)
            if text is not None and looks_like_lock(text):
                self.out.acquires.append(
                    LockAcquire(
                        lock=text,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset + 1,
                        held=tuple(self.held),
                        scoped=True,
                    )
                )
                self.held.append(text)
                pushed += 1
            else:
                self._visit_expr(item.context_expr)
            if item.optional_vars is not None:
                self._visit_target(item.optional_vars)
        for s in stmt.body:
            self._visit_stmt(s)
        for _ in range(pushed):
            self.held.pop()

    # -- assignment targets ------------------------------------------------

    def _visit_target(self, target: ast.expr, also_read: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element, also_read=also_read)
            return
        if isinstance(target, ast.Starred):
            self._visit_target(target.value, also_read=also_read)
            return
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self._record_global(target.id, target, "write")
            return
        if isinstance(target, ast.Subscript):
            self._visit_expr(target.slice)
            base = target.value
            text = _dotted(base)
            if text is not None:
                self._record_chain(text, target, "write")
                if also_read:
                    self._record_chain(text, target, "read")
            else:
                self._visit_expr(base)
            return
        if isinstance(target, ast.Attribute):
            text = _dotted(target)
            if text is not None:
                self._record_chain(text, target, "write")
                if also_read:
                    self._record_chain(text, target, "read")
            else:
                self._visit_expr(target.value)

    def _note_types(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        """Track ``name = Constructor(...)`` so receiver types resolve."""
        if not isinstance(value, ast.Call):
            return
        ctor = _dotted(value.func)
        if ctor is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.local_types[target.id] = ctor

    # -- expressions -------------------------------------------------------

    def _visit_expr(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body; executes under unknown locks
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        if isinstance(node, ast.Attribute):
            text = _dotted(node)
            if text is not None:
                self._record_chain(text, node, "read")
            else:
                self._visit_expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)

    def _visit_call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        if callee is not None:
            parts = callee.split(".")
            attr = parts[-1]
            recv_type = (
                self.local_types.get(parts[0]) if len(parts) > 1 else None
            )
            self.out.calls.append(
                HeldCall(
                    callee=callee,
                    attr=attr,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    held=tuple(self.held),
                    recv_type=recv_type,
                )
            )
            # bare .acquire() on a lock: an order edge without a scope
            if attr == "acquire" and len(parts) > 1:
                recv = ".".join(parts[:-1])
                if looks_like_lock(recv):
                    self.out.acquires.append(
                        LockAcquire(
                            lock=recv,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            held=tuple(self.held),
                            scoped=False,
                        )
                    )
            # mutator method: a write to the receiver
            if attr in _MUTATORS and len(parts) > 1:
                recv = ".".join(parts[:-1])
                self._record_chain(recv, node, "write", synthetic_leaf=True)
            # thread spawn: Thread(target=...)
            if attr == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = _dotted(kw.value)
                        if target is not None:
                            self.out.spawns.append(
                                ThreadSpawn(
                                    target=target,
                                    line=node.lineno,
                                    col=node.col_offset + 1,
                                    kind="thread",
                                )
                            )
            # executor dispatch: submit(fn, ...) / map_tasks(fn, ...)
            if attr in _DISPATCH_ATTRS and node.args:
                target = _dotted(node.args[0])
                if target is not None:
                    self.out.spawns.append(
                        ThreadSpawn(
                            target=target,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            kind="dispatch",
                        )
                    )
            # the receiver chain of a method call is itself a read
            if isinstance(node.func, ast.Attribute):
                recv_text = _dotted(node.func.value)
                if recv_text is not None:
                    self._record_chain(recv_text, node, "read", synthetic_leaf=True)
                else:
                    self._visit_expr(node.func.value)
        else:
            self._visit_expr(node.func)
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._visit_expr(arg.value)
            else:
                self._visit_expr(arg)
        for kw in node.keywords:
            self._visit_expr(kw.value)

    # -- access recording --------------------------------------------------

    def _record_chain(
        self,
        text: str,
        node: ast.AST,
        kind: str,
        synthetic_leaf: bool = False,
    ) -> None:
        """Record an access for a dotted chain when the receiver is namable.

        ``synthetic_leaf`` marks chains already stripped to their
        receiver (mutator calls, method-call receivers) where the final
        component *is* the attribute of interest.
        """
        del synthetic_leaf  # the chain shape alone decides the split
        parts = text.split(".")
        root = parts[0]
        if root == "self":
            if len(parts) == 2:
                self._append_access(parts[0], parts[1], node, kind)
            elif len(parts) == 3:
                self._append_access(f"{parts[0]}.{parts[1]}", parts[2], node, kind)
            return
        if root in self.local_names:
            if len(parts) == 2 and root in self.local_types:
                self._append_access(
                    root, parts[1], node, kind, recv_type=self.local_types[root]
                )
            return
        if root in self.module_level_names:
            if kind == "write" or len(parts) == 1:
                if kind == "write":
                    self._record_global(root, node, "write")
            return

    def _record_global(self, name: str, node: ast.AST, kind: str) -> None:
        if name in self.module_level_names or name in self.global_decls:
            self.out.accesses.append(
                SharedAccess(
                    recv=name,
                    attr="",
                    line=node.lineno,
                    col=node.col_offset + 1,
                    kind=kind,
                    held=tuple(self.held),
                    is_global=True,
                )
            )

    def _append_access(
        self,
        recv: str,
        attr: str,
        node: ast.AST,
        kind: str,
        recv_type: Optional[str] = None,
    ) -> None:
        if looks_like_lock(attr):
            return  # the lock object itself is not shared *state*
        self.out.accesses.append(
            SharedAccess(
                recv=recv,
                attr=attr,
                line=node.lineno,
                col=node.col_offset + 1,
                kind=kind,
                held=tuple(self.held),
                recv_type=recv_type,
            )
        )


def _walk_functions(
    body: Sequence[ast.stmt],
    prefix: str,
    module_level_names: Set[str],
    out: List[FunctionConcurrency],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{stmt.name}"
            walker = _FunctionWalker(qualname, module_level_names)
            out.append(walker.run(stmt))
            _walk_functions(
                stmt.body, f"{qualname}.<locals>.", module_level_names, out
            )
        elif isinstance(stmt, ast.ClassDef) and not prefix:
            _walk_functions(
                stmt.body, f"{stmt.name}.", module_level_names, out
            )


def extract_concurrency(tree: ast.Module) -> ModuleConcurrency:
    """Extract the module's concurrency facts (cache-serializable)."""
    module_level_names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module_level_names.add(target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module_level_names.add(stmt.name)

    functions: List[FunctionConcurrency] = []
    _walk_functions(tree.body, "", module_level_names, functions)
    return ModuleConcurrency(functions=functions)
